//! A counting global allocator for the bench driver.
//!
//! The allocation-discipline work in relim-core (inline `Config` storage,
//! reusable scratch arenas) needs a *pinned* win, not a claimed one: wall
//! clock on a 1-CPU container is noisy, but the **number of heap
//! allocations** a deterministic kernel performs is exactly reproducible
//! — the same code on the same input allocates the same number of times,
//! independent of scheduling. This module wraps [`System`] in a counter
//! pair (allocations, bytes requested) so `bench-driver` can record
//! `alloc_count` / `alloc_bytes` deltas into each kernel's deterministic
//! report section of `BENCH_relim.json`, where the `--diff` gate compares
//! them **exactly** (unlike `wall_ns`, which is tolerated).
//!
//! The allocator is installed only when the `count-alloc` feature is on
//! (default). The counters use relaxed atomics: the probes that read them
//! run single-threaded, and even under concurrency a relaxed count is
//! exact — only the attribution window would blur.
//!
//! This is the one deliberately `unsafe`-touching corner of the
//! workspace: a [`GlobalAlloc`] impl cannot be written without `unsafe`,
//! and it lives in the driver binary (not the `#![forbid(unsafe_code)]`
//! bench library) so the blast radius is two pass-through calls.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed since process start.
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
/// Bytes requested by those allocations (requested, not padded).
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`], with every allocation (and growing reallocation) counted.
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller's layout obligations hold.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A reallocation is one more trip to the allocator; count the
        // newly requested size so growth patterns show up in the bytes.
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller's layout obligations hold.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether the counting allocator is installed (the `count-alloc`
/// feature). When off, [`measure`] reports zeros and the driver omits the
/// alloc fields rather than committing meaningless values.
pub fn enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Runs `f` and returns `(result, allocations, bytes)` performed by it.
///
/// The deltas are exact for single-threaded `f` (the probe configuration:
/// sequential engines, no live worker traffic); concurrent allocations by
/// other threads would be attributed to the window, so probes must not
/// overlap thread activity.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let count0 = ALLOC_COUNT.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let out = f();
    let count = ALLOC_COUNT.load(Ordering::Relaxed) - count0;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;
    (out, count, bytes)
}
