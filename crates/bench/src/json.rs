//! A minimal JSON value and serializer — just enough for
//! `BENCH_relim.json`. Hand-rolled because the build environment has no
//! crates.io route (see `vendor/README.md` for the same story on
//! `rand`/`proptest`/`criterion`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without exponent).
    Int(i64),
    /// A float (non-finite values serialize as `null`).
    Float(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-42).render(), "-42\n");
        assert_eq!(Json::Float(1.5).render(), "1.5\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
    }

    #[test]
    fn escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn structure_round_trip_shape() {
        let v = Json::Obj(vec![
            ("id".into(), Json::str("x")),
            ("runs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = v.render();
        assert!(text.contains("\"id\": \"x\""));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }
}
