//! The `BENCH_relim.json` baseline: a machine-readable record of the
//! parallel round-elimination engine's wall-clock behaviour, emitted by
//! the `bench-driver` binary alongside the human tables.
//!
//! Schema (`bench-relim/4`): a header with the thread configuration plus
//! one entry per kernel, each carrying its parameter assignments, one
//! timed run per configuration (usually thread counts; the
//! `engine_session_reuse` kernel compares per-call vs shared engine
//! caches instead), the speedup of the last run over the first, whether
//! the compared outputs were byte-identical (always asserted before the
//! file is written), and an `engine_report` object: the
//! **deterministic** counters of an
//! [`EngineReport`](relim_core::EngineReport) probe run
//! (cache hits/misses, per-operator counts; never `wall_ns`), plus —
//! new in `bench-relim/4` — the probe's exact `alloc_count` /
//! `alloc_bytes` heap-allocation deltas measured by the driver's
//! counting allocator. Unlike the timing fields these are diffed
//! *exactly* by `bench-driver --diff`, so CI catches cache-hit-trend
//! **and allocation** regressions, not just schema drift (allocation
//! counts, like cache counters, are deterministic for a fixed workload —
//! `wall_ns` is not).
//! History: `bench-relim/2` added the `engine_session_reuse` kernel;
//! `bench-relim/3` added `engine_report` plus the `store_roundtrip` and
//! `service_cold_vs_warm` serving-layer kernels; `bench-relim/4` added
//! the allocation counters backing the `--alloc-gate` regression gate.

use crate::json::Json;

/// One timed run of a kernel at a fixed thread count.
#[derive(Debug, Clone)]
pub struct Run {
    /// Pool size used.
    pub threads: usize,
    /// Median wall-clock nanoseconds across `samples`.
    pub wall_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// One kernel's baseline entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Stable kernel id, e.g. `lemma8_sweep_d5`.
    pub id: String,
    /// Kernel parameters (name, value).
    pub params: Vec<(String, Json)>,
    /// Timed runs, one per thread count (sequential first).
    pub runs: Vec<Run>,
    /// `wall(threads=1) / wall(threads=N)` for the widest run, when the
    /// entry was measured at more than one thread count.
    pub speedup: Option<f64>,
    /// Whether the parallel result rendered byte-identically to the
    /// sequential result (`None` for single-configuration kernels).
    pub byte_identical: Option<bool>,
    /// Deterministic engine counters of one probe run of this kernel on
    /// a fresh sequential session (`EngineReport::snapshot_pairs`) —
    /// byte-stable across machines and thread counts, diffed exactly.
    /// `None` for kernels that never touch an engine.
    pub report: Option<Vec<(String, i64)>>,
}

/// The whole baseline file.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Parallel thread count the driver was asked to compare against.
    pub threads: usize,
    /// Per-kernel entries.
    pub entries: Vec<Entry>,
}

impl Entry {
    fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("threads".into(), Json::Int(r.threads as i64)),
                    ("wall_ns".into(), Json::Int(r.wall_ns as i64)),
                    ("min_ns".into(), Json::Int(r.min_ns as i64)),
                    ("max_ns".into(), Json::Int(r.max_ns as i64)),
                    ("samples".into(), Json::Int(r.samples as i64)),
                ])
            })
            .collect();
        let report = match &self.report {
            None => Json::Null,
            Some(pairs) => {
                Json::Obj(pairs.iter().map(|(k, v)| (k.clone(), Json::Int(*v))).collect())
            }
        };
        Json::Obj(vec![
            ("id".into(), Json::str(&self.id)),
            ("params".into(), Json::Obj(self.params.clone())),
            ("runs".into(), Json::Arr(runs)),
            ("speedup".into(), self.speedup.map_or(Json::Null, Json::Float)),
            ("byte_identical".into(), self.byte_identical.map_or(Json::Null, Json::Bool)),
            ("engine_report".into(), report),
        ])
    }
}

impl Baseline {
    /// The file as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("bench-relim/4")),
            ("generated_by".into(), Json::str("bench-driver")),
            ("quick".into(), Json::Bool(self.quick)),
            ("threads".into(), Json::Int(self.threads as i64)),
            (
                "available_parallelism".into(),
                Json::Int(crate::Engine::available_parallelism() as i64),
            ),
            ("entries".into(), Json::Arr(self.entries.iter().map(Entry::to_json).collect())),
        ])
    }

    /// Writes the baseline to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render())
    }

    /// The human-readable wall-clock table printed next to the file.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<28} {:>8} {:>14} {:>14} {:>9} {:>10}\n",
            "kernel", "threads", "median", "min", "speedup", "identical"
        );
        for e in &self.entries {
            for (i, r) in e.runs.iter().enumerate() {
                let last = i + 1 == e.runs.len();
                out.push_str(&format!(
                    "{:<28} {:>8} {:>14} {:>14} {:>9} {:>10}\n",
                    if i == 0 { e.id.as_str() } else { "" },
                    r.threads,
                    format_ns(r.wall_ns),
                    format_ns(r.min_ns),
                    match (last, e.speedup) {
                        (true, Some(s)) => format!("{s:.2}x"),
                        _ => "-".into(),
                    },
                    match (last, e.byte_identical) {
                        (true, Some(b)) => if b { "yes" } else { "NO" }.into(),
                        _ => "-".to_owned(),
                    },
                ));
            }
        }
        out
    }
}

/// Object keys whose values are timing- or hardware-dependent: a diff
/// only requires them to be *present with the right kind* (number or
/// null), never value-equal. `alloc_count`/`alloc_bytes` are deliberately
/// **not** here: allocation counts are deterministic for a fixed
/// workload, so they diff exactly like the cache counters.
const TIMING_KEYS: [&str; 6] =
    ["wall_ns", "min_ns", "max_ns", "speedup", "speedup_vs_reference", "available_parallelism"];

/// Kernels whose committed `engine_report.alloc_count` is the per-call
/// allocation budget enforced by `bench-driver --alloc-gate` (the ROADMAP
/// "allocation-free hot loop" acceptance kernels).
pub const ALLOC_GATE_KERNELS: [&str; 2] = ["rbar_step_pi_d5_a4_x1", "iterate_rr_mis_d3"];

/// Schema-checks a parsed `BENCH_relim.json`: schema tag, header keys,
/// per-entry/run key presence, and the byte-identity assertions
/// (`byte_identical` must never be `false`). Returns human-readable
/// problems; empty means the file is well-formed.
pub fn schema_problems(doc: &Json) -> Vec<String> {
    let mut out = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        Some("bench-relim/4") => {}
        Some(other) => out.push(format!("schema: expected `bench-relim/4`, got `{other}`")),
        None => out.push("schema: missing or not a string".into()),
    }
    for key in ["generated_by", "quick", "threads", "available_parallelism", "entries"] {
        if doc.get(key).is_none() {
            out.push(format!("header: missing key `{key}`"));
        }
    }
    let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
        out.push("entries: missing or not an array".into());
        return out;
    };
    if entries.is_empty() {
        out.push("entries: empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let id = entry.get("id").and_then(Json::as_str).unwrap_or("?");
        for key in ["id", "params", "runs", "speedup", "byte_identical", "engine_report"] {
            if entry.get(key).is_none() {
                out.push(format!("entries[{i}] ({id}): missing key `{key}`"));
            }
        }
        // The engine_report counters must be integers when present — they
        // are the exactly-diffed cache-hit trend record.
        if let Some(Json::Obj(fields)) = entry.get("engine_report") {
            for (key, value) in fields {
                if !matches!(value, Json::Int(_)) {
                    out.push(format!(
                        "entries[{i}] ({id}): engine_report.{key} must be an integer"
                    ));
                }
                if key == "wall_ns" {
                    out.push(format!(
                        "entries[{i}] ({id}): engine_report must not carry wall_ns \
                         (schedule-dependent)"
                    ));
                }
            }
            // The allocation counters travel as a pair.
            let has = |k: &str| fields.iter().any(|(key, _)| key == k);
            if has("alloc_count") != has("alloc_bytes") {
                out.push(format!(
                    "entries[{i}] ({id}): engine_report must carry alloc_count and \
                     alloc_bytes together"
                ));
            }
            // The alloc-gate kernels must commit a per-call allocation
            // budget: without it `bench-driver --alloc-gate` has nothing
            // to enforce.
            if ALLOC_GATE_KERNELS.contains(&id) && !has("alloc_count") {
                out.push(format!(
                    "entries[{i}] ({id}): alloc-gate kernel is missing \
                     engine_report.alloc_count"
                ));
            }
        }
        if entry.get("byte_identical") == Some(&Json::Bool(false)) {
            out.push(format!("entries[{i}] ({id}): byte_identical is false"));
        }
        let Some(runs) = entry.get("runs").and_then(Json::as_arr) else {
            out.push(format!("entries[{i}] ({id}): runs missing or not an array"));
            continue;
        };
        for (j, run) in runs.iter().enumerate() {
            for key in ["threads", "wall_ns", "min_ns", "max_ns", "samples"] {
                if !run.get(key).is_some_and(Json::is_number) {
                    out.push(format!("entries[{i}] ({id}) runs[{j}]: `{key}` missing/non-number"));
                }
            }
        }
    }
    out
}

/// Diffs a freshly generated baseline against the committed one:
/// everything must be structurally **equal** — same keys in the same
/// order, same entry ids, same params, same per-run `threads`/`samples` —
/// except the timing keys (`TIMING_KEYS`), whose values may drift run-to-run (only
/// their presence and kind are compared). Returns human-readable
/// mismatches; empty means no perf-schema regression.
pub fn diff_problems(committed: &Json, fresh: &Json) -> Vec<String> {
    let mut out = Vec::new();
    diff_value("$", committed, fresh, &mut out);
    out
}

fn diff_value(path: &str, committed: &Json, fresh: &Json, out: &mut Vec<String>) {
    match (committed, fresh) {
        (Json::Obj(a), Json::Obj(b)) => {
            let a_keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
            let b_keys: Vec<&str> = b.iter().map(|(k, _)| k.as_str()).collect();
            if a_keys != b_keys {
                out.push(format!("{path}: keys {a_keys:?} vs {b_keys:?}"));
                return;
            }
            for ((key, va), (_, vb)) in a.iter().zip(b.iter()) {
                let sub = format!("{path}.{key}");
                if TIMING_KEYS.contains(&key.as_str()) {
                    // Tolerate the value, require the kind: a number (or
                    // null, for absent speedups) on both sides.
                    let kind_ok = |v: &Json| v.is_number() || *v == Json::Null;
                    if !kind_ok(va) || !kind_ok(vb) || (va == &Json::Null) != (vb == &Json::Null) {
                        out.push(format!("{sub}: {} vs {}", va.kind(), vb.kind()));
                    }
                } else {
                    diff_value(&sub, va, vb, out);
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                out.push(format!("{path}: {} items vs {}", a.len(), b.len()));
                return;
            }
            for (i, (va, vb)) in a.iter().zip(b.iter()).enumerate() {
                diff_value(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ => {
            if committed != fresh {
                out.push(format!(
                    "{path}: committed {} != fresh {}",
                    short(committed),
                    short(fresh)
                ));
            }
        }
    }
}

fn short(v: &Json) -> String {
    let text = v.render();
    let text = text.trim();
    if text.len() > 40 {
        // Truncate on a char boundary: values may hold multi-byte UTF-8.
        let cut = (0..=40).rev().find(|&i| text.is_char_boundary(i)).unwrap_or(0);
        format!("{}…", &text[..cut])
    } else {
        text.to_owned()
    }
}

/// Renders nanoseconds with an adaptive unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            quick: true,
            threads: 4,
            entries: vec![Entry {
                id: "lemma8_sweep_d4".into(),
                params: vec![("delta".into(), Json::Int(4))],
                runs: vec![
                    Run {
                        threads: 1,
                        wall_ns: 2_000_000,
                        min_ns: 1_900_000,
                        max_ns: 2_100_000,
                        samples: 3,
                    },
                    Run {
                        threads: 4,
                        wall_ns: 1_000_000,
                        min_ns: 950_000,
                        max_ns: 1_200_000,
                        samples: 3,
                    },
                ],
                speedup: Some(2.0),
                byte_identical: Some(true),
                report: Some(vec![
                    ("cache_hits".into(), 3),
                    ("rbar_steps".into(), 6),
                    ("alloc_count".into(), 120),
                    ("alloc_bytes".into(), 4096),
                ]),
            }],
        }
    }

    #[test]
    fn json_shape() {
        let text = sample().to_json().render();
        assert!(text.contains("\"schema\": \"bench-relim/4\""));
        assert!(text.contains("\"id\": \"lemma8_sweep_d4\""));
        assert!(text.contains("\"speedup\": 2"));
        assert!(text.contains("\"byte_identical\": true"));
        assert!(text.contains("\"cache_hits\": 3"));
    }

    #[test]
    fn table_mentions_speedup_on_last_run_only() {
        let table = sample().render_table();
        assert!(table.contains("2.00x"));
        assert!(table.contains("yes"));
        assert_eq!(table.matches("2.00x").count(), 1);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.50us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_210_000_000), "3.210s");
    }

    #[test]
    fn schema_check_passes_on_emitted_shape() {
        let doc = Json::parse(&sample().to_json().render()).unwrap();
        assert_eq!(schema_problems(&doc), Vec::<String>::new());
    }

    #[test]
    fn schema_check_flags_missing_keys_and_false_identity() {
        let mut base = sample();
        base.entries[0].byte_identical = Some(false);
        let doc = Json::parse(&base.to_json().render()).unwrap();
        let problems = schema_problems(&doc);
        assert!(problems.iter().any(|p| p.contains("byte_identical is false")), "{problems:?}");

        let doc = Json::parse("{\"schema\": \"bench-relim/3\"}").unwrap();
        let problems = schema_problems(&doc);
        assert!(problems.iter().any(|p| p.contains("bench-relim/4")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("entries")), "{problems:?}");
    }

    #[test]
    fn schema_check_requires_alloc_fields_to_travel_as_a_pair() {
        let mut lonely = sample();
        lonely.entries[0].report =
            Some(vec![("cache_hits".into(), 3), ("alloc_count".into(), 120)]);
        let doc = Json::parse(&lonely.to_json().render()).unwrap();
        let problems = schema_problems(&doc);
        assert!(problems.iter().any(|p| p.contains("alloc_bytes together")), "{problems:?}");
    }

    #[test]
    fn schema_check_requires_budgets_on_alloc_gate_kernels() {
        let mut base = sample();
        base.entries[0].id = ALLOC_GATE_KERNELS[0].into();
        base.entries[0].report = Some(vec![("cache_hits".into(), 3)]);
        let doc = Json::parse(&base.to_json().render()).unwrap();
        let problems = schema_problems(&doc);
        assert!(
            problems.iter().any(|p| p.contains("missing") && p.contains("alloc_count")),
            "{problems:?}"
        );
        // With the budget present the same entry is clean.
        base.entries[0].report =
            Some(vec![("alloc_count".into(), 120), ("alloc_bytes".into(), 4096)]);
        let doc = Json::parse(&base.to_json().render()).unwrap();
        assert_eq!(schema_problems(&doc), Vec::<String>::new());
    }

    #[test]
    fn diff_compares_alloc_counters_exactly() {
        let committed = Json::parse(&sample().to_json().render()).unwrap();
        let mut drifted = sample();
        drifted.entries[0].report = Some(vec![
            ("cache_hits".into(), 3),
            ("rbar_steps".into(), 6),
            ("alloc_count".into(), 121),
            ("alloc_bytes".into(), 4096),
        ]);
        let drifted = Json::parse(&drifted.to_json().render()).unwrap();
        let problems = diff_problems(&committed, &drifted);
        assert!(
            problems.iter().any(|p| p.contains("engine_report.alloc_count")),
            "an allocation regression must fail the diff: {problems:?}"
        );
    }

    #[test]
    fn schema_check_rejects_wall_ns_inside_engine_report() {
        let mut bad = sample();
        bad.entries[0].report = Some(vec![("wall_ns".into(), 123)]);
        let doc = Json::parse(&bad.to_json().render()).unwrap();
        let problems = schema_problems(&doc);
        assert!(problems.iter().any(|p| p.contains("wall_ns")), "{problems:?}");
    }

    #[test]
    fn diff_compares_engine_report_counters_exactly() {
        let committed = Json::parse(&sample().to_json().render()).unwrap();
        let mut drifted = sample();
        drifted.entries[0].report = Some(vec![
            ("cache_hits".into(), 2),
            ("rbar_steps".into(), 6),
            ("alloc_count".into(), 120),
            ("alloc_bytes".into(), 4096),
        ]);
        let drifted = Json::parse(&drifted.to_json().render()).unwrap();
        let problems = diff_problems(&committed, &drifted);
        assert!(
            problems.iter().any(|p| p.contains("engine_report.cache_hits")),
            "a cache-hit regression must fail the diff: {problems:?}"
        );
    }

    #[test]
    fn diff_tolerates_timing_drift_only() {
        let committed = Json::parse(&sample().to_json().render()).unwrap();
        // Same schema, different timings: no problems.
        let mut drifted = sample();
        drifted.entries[0].runs[1].wall_ns = 999;
        drifted.entries[0].runs[1].min_ns = 1;
        drifted.entries[0].speedup = Some(0.01);
        let drifted = Json::parse(&drifted.to_json().render()).unwrap();
        assert_eq!(diff_problems(&committed, &drifted), Vec::<String>::new());

        // A renamed kernel id is a schema regression.
        let mut renamed = sample();
        renamed.entries[0].id = "lemma8_sweep_d5".into();
        let renamed = Json::parse(&renamed.to_json().render()).unwrap();
        let problems = diff_problems(&committed, &renamed);
        assert!(problems.iter().any(|p| p.contains(".id")), "{problems:?}");

        // A changed non-timing param value is a regression too.
        let mut reparam = sample();
        reparam.entries[0].params[0].1 = Json::Int(5);
        let reparam = Json::parse(&reparam.to_json().render()).unwrap();
        assert!(!diff_problems(&committed, &reparam).is_empty());

        // A dropped run (thread count no longer measured) is a regression.
        let mut fewer = sample();
        fewer.entries[0].runs.pop();
        let fewer = Json::parse(&fewer.to_json().render()).unwrap();
        let problems = diff_problems(&committed, &fewer);
        assert!(problems.iter().any(|p| p.contains("items")), "{problems:?}");
    }
}
