//! The `BENCH_relim.json` baseline: a machine-readable record of the
//! parallel round-elimination engine's wall-clock behaviour, emitted by
//! the `bench-driver` binary alongside the human tables.
//!
//! Schema (`bench-relim/1`): a header with the thread configuration plus
//! one entry per kernel, each carrying its parameter assignments, one
//! timed run per thread count, the parallel speedup
//! (`wall(1 thread) / wall(N threads)`), and whether the parallel output
//! was byte-identical to the sequential one (always asserted before the
//! file is written).

use crate::json::Json;

/// One timed run of a kernel at a fixed thread count.
#[derive(Debug, Clone)]
pub struct Run {
    /// Pool size used.
    pub threads: usize,
    /// Median wall-clock nanoseconds across `samples`.
    pub wall_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// One kernel's baseline entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Stable kernel id, e.g. `lemma8_sweep_d5`.
    pub id: String,
    /// Kernel parameters (name, value).
    pub params: Vec<(String, Json)>,
    /// Timed runs, one per thread count (sequential first).
    pub runs: Vec<Run>,
    /// `wall(threads=1) / wall(threads=N)` for the widest run, when the
    /// entry was measured at more than one thread count.
    pub speedup: Option<f64>,
    /// Whether the parallel result rendered byte-identically to the
    /// sequential result (`None` for single-configuration kernels).
    pub byte_identical: Option<bool>,
}

/// The whole baseline file.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Parallel thread count the driver was asked to compare against.
    pub threads: usize,
    /// Per-kernel entries.
    pub entries: Vec<Entry>,
}

impl Entry {
    fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("threads".into(), Json::Int(r.threads as i64)),
                    ("wall_ns".into(), Json::Int(r.wall_ns as i64)),
                    ("min_ns".into(), Json::Int(r.min_ns as i64)),
                    ("max_ns".into(), Json::Int(r.max_ns as i64)),
                    ("samples".into(), Json::Int(r.samples as i64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("id".into(), Json::str(&self.id)),
            ("params".into(), Json::Obj(self.params.clone())),
            ("runs".into(), Json::Arr(runs)),
            ("speedup".into(), self.speedup.map_or(Json::Null, Json::Float)),
            ("byte_identical".into(), self.byte_identical.map_or(Json::Null, Json::Bool)),
        ])
    }
}

impl Baseline {
    /// The file as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("bench-relim/1")),
            ("generated_by".into(), Json::str("bench-driver")),
            ("quick".into(), Json::Bool(self.quick)),
            ("threads".into(), Json::Int(self.threads as i64)),
            (
                "available_parallelism".into(),
                Json::Int(crate::Pool::available_parallelism() as i64),
            ),
            ("entries".into(), Json::Arr(self.entries.iter().map(Entry::to_json).collect())),
        ])
    }

    /// Writes the baseline to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render())
    }

    /// The human-readable wall-clock table printed next to the file.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<28} {:>8} {:>14} {:>14} {:>9} {:>10}\n",
            "kernel", "threads", "median", "min", "speedup", "identical"
        );
        for e in &self.entries {
            for (i, r) in e.runs.iter().enumerate() {
                let last = i + 1 == e.runs.len();
                out.push_str(&format!(
                    "{:<28} {:>8} {:>14} {:>14} {:>9} {:>10}\n",
                    if i == 0 { e.id.as_str() } else { "" },
                    r.threads,
                    format_ns(r.wall_ns),
                    format_ns(r.min_ns),
                    match (last, e.speedup) {
                        (true, Some(s)) => format!("{s:.2}x"),
                        _ => "-".into(),
                    },
                    match (last, e.byte_identical) {
                        (true, Some(b)) => if b { "yes" } else { "NO" }.into(),
                        _ => "-".to_owned(),
                    },
                ));
            }
        }
        out
    }
}

/// Renders nanoseconds with an adaptive unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            quick: true,
            threads: 4,
            entries: vec![Entry {
                id: "lemma8_sweep_d4".into(),
                params: vec![("delta".into(), Json::Int(4))],
                runs: vec![
                    Run {
                        threads: 1,
                        wall_ns: 2_000_000,
                        min_ns: 1_900_000,
                        max_ns: 2_100_000,
                        samples: 3,
                    },
                    Run {
                        threads: 4,
                        wall_ns: 1_000_000,
                        min_ns: 950_000,
                        max_ns: 1_200_000,
                        samples: 3,
                    },
                ],
                speedup: Some(2.0),
                byte_identical: Some(true),
            }],
        }
    }

    #[test]
    fn json_shape() {
        let text = sample().to_json().render();
        assert!(text.contains("\"schema\": \"bench-relim/1\""));
        assert!(text.contains("\"id\": \"lemma8_sweep_d4\""));
        assert!(text.contains("\"speedup\": 2"));
        assert!(text.contains("\"byte_identical\": true"));
    }

    #[test]
    fn table_mentions_speedup_on_last_run_only() {
        let table = sample().render_table();
        assert!(table.contains("2.00x"));
        assert!(table.contains("yes"));
        assert_eq!(table.matches("2.00x").count(), 1);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.50us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_210_000_000), "3.210s");
    }
}
