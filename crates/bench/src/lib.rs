//! Shared infrastructure for the bench crate: the round-elimination
//! [`Engine`] session the experiment drivers submit their parameter grids
//! to, a dependency-free JSON value writer, and the `BENCH_relim.json`
//! baseline format emitted by the `bench-driver` binary.
//!
//! Every driver computes its table rows through [`shared_engine`] (rows
//! are independent grid points sharded with [`Engine::map_owned`]; results
//! come back in grid order, so tables are byte-identical at any thread
//! count), cloning the session into the task closures when the rows
//! themselves run engine steps — one pool handle and one sub-multiset
//! index cache per driver process. The machine-readable counterpart of
//! the wall-clock tables is the [`baseline`] module.

#![forbid(unsafe_code)]

pub use relim_core::Engine;
/// The JSON value/parser this crate's baseline format is written in —
/// extracted to the `relim-json` crate (the service wire protocol shares
/// it) and re-exported here under its historical path.
pub use relim_json as json;

pub mod baseline;

/// The engine session the bench drivers submit their grids to:
/// `RELIM_THREADS` wide if set, otherwise available parallelism.
pub fn shared_engine() -> Engine {
    Engine::from_env()
}

/// Times `samples` runs of `f` and returns (last result, median wall ns,
/// min wall ns, max wall ns).
pub fn time_median<R>(samples: usize, mut f: impl FnMut() -> R) -> (R, u64, u64, u64) {
    assert!(samples > 0);
    let mut walls: Vec<u64> = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        last = Some(std::hint::black_box(f()));
        walls.push(start.elapsed().as_nanos() as u64);
    }
    walls.sort_unstable();
    (last.expect("samples > 0"), walls[walls.len() / 2], walls[0], walls[walls.len() - 1])
}
