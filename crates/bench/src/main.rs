fn main() {}
