//! `bench-driver` — the machine-readable baseline emitter for the
//! round-elimination `Engine` sessions.
//!
//! Runs the engine's hot kernels through a sequential session and through
//! a session at the requested pool width, asserts the parallel outputs
//! are **byte-identical** to the sequential ones, prints a wall-clock
//! table, and writes `BENCH_relim.json` (schema `bench-relim/3`, see
//! `bench::baseline`). The `engine_session_reuse` kernel additionally
//! compares a shared session cache against per-call fresh caches on the
//! `autolb` workload; `store_roundtrip` and `service_cold_vs_warm` cover
//! the `relim-service` serving layer (content-addressed store
//! persistence, cold-vs-warm daemon latency). Engine-touching kernels
//! also record an `engine_report` probe (deterministic cache/operator
//! counters on a fresh sequential session) that the `--diff` gate
//! compares **exactly**, so cache-hit-trend regressions fail CI.
//!
//! With the `count-alloc` feature (default) the driver installs a
//! counting global allocator (see [`alloc_count`]) and records exact
//! `alloc_count` / `alloc_bytes` deltas for each engine probe into the
//! `engine_report` section — deterministic where `wall_ns` is not, and
//! therefore diffed **exactly** like the other counters (schema
//! `bench-relim/4`).
//!
//! ```text
//! bench-driver [--quick] [--threads N] [--out PATH]
//! bench-driver --diff COMMITTED FRESH
//! bench-driver --alloc-gate COMMITTED
//! ```
//!
//! * `--quick`   — CI smoke sizes (Δ=4 sweep, small kernels)
//! * `--threads` — parallel session width (default: RELIM_THREADS or
//!   available parallelism)
//! * `--out`     — baseline path (default: `BENCH_relim.json`)
//! * `--diff`    — compare a fresh baseline against the committed one:
//!   schema + key presence + byte-identity assertions must hold and all
//!   non-timing fields must match exactly (timing fields may drift).
//!   Exits non-zero on any problem — the CI perf-schema regression gate.
//! * `--alloc-gate` — re-measure the pinned hot-loop kernels
//!   (`rbar_step_pi_d5_a4_x1`, `iterate_rr_mis_d3`) under the counting
//!   allocator and fail if any exceeds the per-call allocation budget
//!   committed in the baseline's `engine_report.alloc_count` — the CI
//!   allocation-regression gate.

mod alloc_count;

use bench::baseline::{diff_problems, schema_problems, Baseline, Entry, Run};
use bench::json::Json;
use bench::{time_median, Engine};
use lb_family::family::{self, PiParams};
use lb_family::{lemma8, zeroround_mc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relim_core::autolb::AutoLbOptions;
use relim_core::roundelim::{dominance_filter_reference, r_step};
use relim_core::{Label, LabelSet, SetConfig};
use relim_service::ops::OpRequest;
use relim_service::ring::Ring;
use relim_service::server::{Server, ServerConfig};
use relim_service::store::{digest_of, ResultStore};
use relim_service::Client;

struct Options {
    quick: bool,
    /// `--threads N` if given; resolved from `RELIM_THREADS` / available
    /// parallelism only when a baseline is actually generated (so
    /// `--diff` never touches, and never trips over, the environment).
    threads: Option<usize>,
    out: std::path::PathBuf,
    diff: Option<(std::path::PathBuf, std::path::PathBuf)>,
    alloc_gate: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        threads: None,
        out: std::path::PathBuf::from("BENCH_relim.json"),
        diff: None,
        alloc_gate: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                let v = iter.next().ok_or("--threads requires a value")?;
                opts.threads = Some(v.parse().map_err(|_| format!("bad --threads value `{v}`"))?);
            }
            "--out" => {
                opts.out = iter.next().ok_or("--out requires a value")?.into();
            }
            "--diff" => {
                let committed = iter.next().ok_or("--diff requires COMMITTED and FRESH paths")?;
                let fresh = iter.next().ok_or("--diff requires COMMITTED and FRESH paths")?;
                opts.diff = Some((committed.into(), fresh.into()));
            }
            "--alloc-gate" => {
                let committed = iter.next().ok_or("--alloc-gate requires a COMMITTED path")?;
                opts.alloc_gate = Some(committed.into());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The `--diff` mode: parse both baselines, schema-check the fresh one,
/// and require non-timing equality against the committed one.
fn run_diff(committed: &std::path::Path, fresh: &std::path::Path) -> Result<(), String> {
    let load = |path: &std::path::Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let committed_doc = load(committed)?;
    let fresh_doc = load(fresh)?;
    let mut problems = schema_problems(&fresh_doc);
    problems.extend(diff_problems(&committed_doc, &fresh_doc));
    if problems.is_empty() {
        println!(
            "baseline diff OK: {} matches {} (timing fields ignored)",
            fresh.display(),
            committed.display()
        );
        Ok(())
    } else {
        Err(format!(
            "baseline diff found {} problem(s):\n  {}",
            problems.len(),
            problems.join("\n  ")
        ))
    }
}

/// Times `f` through a sequential session and a `threads`-wide session,
/// asserting the rendered outputs match, and builds the baseline entry.
/// Each invocation receives a session of the right width; kernels that
/// must *not* reuse a cache across samples build a fresh child session
/// inside the closure (see the iterate kernels).
fn compare<R>(
    id: &str,
    params: Vec<(String, Json)>,
    threads: usize,
    samples: usize,
    f: impl Fn(&Engine) -> R,
    render: impl Fn(&R) -> String,
) -> Entry {
    let sequential = Engine::sequential();
    let parallel = Engine::builder().threads(threads).build();
    let (seq_out, seq_med, seq_min, seq_max) = time_median(samples, || f(&sequential));
    let (par_out, par_med, par_min, par_max) = time_median(samples, || f(&parallel));
    let identical = render(&par_out) == render(&seq_out);
    assert!(identical, "{id}: parallel output differs from sequential");
    Entry {
        id: id.to_owned(),
        params,
        runs: vec![
            Run { threads: 1, wall_ns: seq_med, min_ns: seq_min, max_ns: seq_max, samples },
            Run { threads, wall_ns: par_med, min_ns: par_min, max_ns: par_max, samples },
        ],
        speedup: Some(seq_med as f64 / par_med.max(1) as f64),
        byte_identical: Some(identical),
        report: None,
    }
}

/// A fresh child session of the same width as `engine` — used by kernels
/// whose measurement must not leak state (cache contents) across samples.
fn fresh(engine: &Engine, memoize: bool) -> Engine {
    Engine::builder().threads(engine.threads()).memoize(memoize).build()
}

/// One deterministic probe run of a kernel on `engine` (fresh, so the
/// counters describe exactly one execution): the `engine_report` record
/// the baseline diff compares exactly. Timing-free by construction
/// (`snapshot_pairs` excludes `wall_ns`). With the counting allocator
/// installed, the probe's exact `alloc_count`/`alloc_bytes` deltas are
/// appended — also deterministic (same code, same input, same
/// allocations; probes run single-threaded after the timed samples, so
/// lazily-initialized thread-locals are already warm).
fn probe_report(engine: Engine, run: impl FnOnce(&Engine)) -> Option<Vec<(String, i64)>> {
    let ((), allocs, bytes) = alloc_count::measure(|| run(&engine));
    let mut pairs: Vec<(String, i64)> = engine
        .report()
        .snapshot_pairs()
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v as i64))
        .collect();
    if alloc_count::enabled() {
        pairs.push(("alloc_count".to_owned(), allocs as i64));
        pairs.push(("alloc_bytes".to_owned(), bytes as i64));
    }
    Some(pairs)
}

/// A named, boxed hot-loop workload for the allocation gate. The engine
/// is passed in (fresh per call, built *outside* the measured region) so
/// the gate's measurement boundary is identical to [`probe_report`]'s.
type GateKernel = (&'static str, Box<dyn Fn(&Engine)>);

/// The allocation-budget gate: re-measures the pinned hot-loop kernels
/// under the counting allocator and fails if any performs more
/// allocations per call than the committed baseline budgets
/// (`engine_report.alloc_count`). Each workload is run once to warm
/// lazily-initialized state (matching the probe conditions of a full
/// baseline run, where the timed samples precede the probe) and then
/// measured on the second, steady-state call.
fn run_alloc_gate(committed: &std::path::Path) -> Result<(), String> {
    if !alloc_count::enabled() {
        return Err("--alloc-gate requires the `count-alloc` feature (default)".into());
    }
    let text = std::fs::read_to_string(committed)
        .map_err(|e| format!("cannot read {}: {e}", committed.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", committed.display()))?;
    let budget_of = |id: &str| -> Result<u64, String> {
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| "baseline has no entries array".to_owned())?;
        let entry = entries
            .iter()
            .find(|e| e.get("id").and_then(Json::as_str) == Some(id))
            .ok_or_else(|| format!("baseline has no `{id}` entry"))?;
        entry
            .get("engine_report")
            .and_then(|r| r.get("alloc_count"))
            .and_then(Json::as_i64)
            .map(|v| v as u64)
            .ok_or_else(|| format!("`{id}` entry carries no engine_report.alloc_count budget"))
    };

    let rbar_input = r_step(&family::pi(&PiParams { delta: 5, a: 4, x: 1 }).expect("valid"))
        .expect("r step")
        .problem;
    let mis = family::mis(3).expect("valid");
    let kernels: Vec<GateKernel> = vec![
        (
            "rbar_step_pi_d5_a4_x1",
            Box::new(move |e: &Engine| {
                let _ = e.rbar_step(&rbar_input).expect("rbar");
            }),
        ),
        (
            "iterate_rr_mis_d3",
            Box::new(move |e: &Engine| {
                let _ = e.iterate_with_limits(&mis, 10, 20);
            }),
        ),
    ];

    let mut failures = Vec::new();
    println!("{:<28} {:>14} {:>14} {:>8}", "kernel", "alloc_count", "budget", "status");
    for (id, run) in &kernels {
        let budget = budget_of(id)?;
        run(&Engine::sequential()); // warm-up: thread-locals, lazy statics
        let engine = Engine::sequential();
        let ((), allocs, bytes) = alloc_count::measure(|| run(&engine));
        let ok = allocs <= budget;
        println!(
            "{id:<28} {allocs:>14} {budget:>14} {:>8}   ({bytes} bytes)",
            if ok { "OK" } else { "OVER" }
        );
        if !ok {
            failures.push(format!(
                "{id}: {allocs} allocations per call exceeds the committed budget of {budget}"
            ));
        }
    }
    if failures.is_empty() {
        println!("allocation gate OK: every kernel within its committed budget");
        Ok(())
    } else {
        Err(format!("allocation regression:\n  {}", failures.join("\n  ")))
    }
}

/// The `engine_session_reuse` kernel: `repeats` identical `autolb` merge
/// searches on MIS (Δ=3), once with a **fresh session per call** (run 1:
/// every call rebuilds its sub-multiset indices) and once through **one
/// shared session** (run 2: calls after the first are served from the
/// session's `SubIndexCache`). Outcomes must be byte-identical; the
/// cache-hit count of the shared session is recorded in params.
fn engine_session_reuse_entry(repeats: usize) -> Entry {
    let mis = family::mis(3).expect("valid");
    let opts = AutoLbOptions { max_steps: 3, label_budget: 6, ..Default::default() };
    let render = |o: &relim_core::autolb::AutoLbOutcome| {
        let chain: Vec<String> = o.chain().map(|p| p.render()).collect();
        format!("{:?} {} {}", o.stopped, o.certified_rounds, chain.join("|"))
    };

    let (per_call_out, per_call_med, per_call_min, per_call_max) = time_median(3, || {
        let mut last = String::new();
        for _ in 0..repeats {
            let engine = Engine::sequential();
            last = render(&engine.auto_lower_bound(&mis, &opts));
        }
        last
    });

    let shared = Engine::sequential();
    let shared2 = shared.clone();
    let (shared_out, shared_med, shared_min, shared_max) = time_median(3, move || {
        let mut last = String::new();
        for _ in 0..repeats {
            last = render(&shared2.auto_lower_bound(&mis, &opts));
        }
        last
    });
    let identical = per_call_out == shared_out;
    assert!(identical, "engine_session_reuse: shared-cache outcome differs from per-call");
    let report = shared.report();
    assert!(report.cache_hits > 0, "shared session must score cache hits across repeats");
    let report_pairs: Vec<(String, i64)> =
        report.snapshot_pairs().into_iter().map(|(k, v)| (k.to_owned(), v as i64)).collect();

    Entry {
        id: "engine_session_reuse".into(),
        params: vec![
            ("repeats".into(), Json::Int(repeats as i64)),
            ("mode_run0".into(), Json::str("per_call_cache")),
            ("mode_run1".into(), Json::str("shared_cache")),
            ("shared_cache_hits".into(), Json::Int(report.cache_hits as i64)),
        ],
        runs: vec![
            Run {
                threads: 1,
                wall_ns: per_call_med,
                min_ns: per_call_min,
                max_ns: per_call_max,
                samples: 3,
            },
            Run {
                threads: 1,
                wall_ns: shared_med,
                min_ns: shared_min,
                max_ns: shared_max,
                samples: 3,
            },
        ],
        speedup: Some(per_call_med as f64 / shared_med.max(1) as f64),
        byte_identical: Some(identical),
        report: Some(report_pairs),
    }
}

/// The `iterate_lineage_overhead` kernel: the `iterate_rr_mis_d3`
/// workload once on a plain session (run 1) and once on a
/// `record_lineage(true)` session (run 2), both sequential. The
/// outcomes must be byte-identical — lineage recording is observation,
/// never steering — and the probe runs **with recording on**, so the
/// baseline pins the recording path's exact allocation cost and the
/// derivation DAG's size (nodes/edges in params, diffed exactly). The
/// off-path's allocations stay pinned by `iterate_rr_mis_d3`'s own
/// probe and the `--alloc-gate` budget: together the two entries commit
/// "recording off costs nothing, recording on costs exactly this".
fn iterate_lineage_overhead_entry(quick: bool) -> Entry {
    let mis = family::mis(3).expect("valid");
    let samples = if quick { 3 } else { 5 };
    let render =
        |o: &relim_core::iterate::IterationOutcome| format!("{:?}\n{:?}", o.stats, o.stopped);
    let (off_out, off_med, off_min, off_max) = time_median(samples, || {
        Engine::builder().threads(1).build().iterate_with_limits(&mis, 10, 20)
    });
    let (on_out, on_med, on_min, on_max) = time_median(samples, || {
        Engine::builder().threads(1).record_lineage(true).build().iterate_with_limits(&mis, 10, 20)
    });
    let identical = render(&on_out) == render(&off_out);
    assert!(identical, "iterate_lineage_overhead: recording changed the outcome");

    let recorder = Engine::builder().threads(1).record_lineage(true).build();
    let report = probe_report(recorder.clone(), |e| {
        let _ = e.iterate_with_limits(&mis, 10, 20);
    });
    let graph = recorder.lineage().expect("recording session has a graph");

    Entry {
        id: "iterate_lineage_overhead".into(),
        params: vec![
            ("max_steps".into(), Json::Int(10)),
            ("label_limit".into(), Json::Int(20)),
            ("mode_run0".into(), Json::str("lineage_off")),
            ("mode_run1".into(), Json::str("lineage_on")),
            ("lineage_nodes".into(), Json::Int(graph.node_count() as i64)),
            ("lineage_edges".into(), Json::Int(graph.edge_count() as i64)),
        ],
        runs: vec![
            Run { threads: 1, wall_ns: off_med, min_ns: off_min, max_ns: off_max, samples },
            Run { threads: 1, wall_ns: on_med, min_ns: on_min, max_ns: on_max, samples },
        ],
        speedup: Some(off_med as f64 / on_med.max(1) as f64),
        byte_identical: Some(identical),
        report,
    }
}

/// The `store_roundtrip` kernel: serialize a batch of canonical results
/// into a fresh persistent [`ResultStore`], reopen the directory, and
/// read every entry back — asserting byte identity (the satellite
/// contract of the content-addressed store) while timing the full
/// serialize → disk → deserialize loop.
fn store_roundtrip_entry(quick: bool) -> Entry {
    let n: usize = if quick { 32 } else { 128 };
    let samples = if quick { 3 } else { 5 };
    let items: Vec<(String, String, String)> = (0..n)
        .map(|i| {
            let key = format!("relim-store/1\nengine=v1\nop=bench\nitem={i}\n");
            let result = format!("certificate {i}\nmulti-line ü payload\n\"quoted\"\n");
            (digest_of(&key), key, result)
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("relim-bench-store-{}", std::process::id()));
    let (all_identical, med, min, max) = time_median(samples, || {
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::persistent(&dir, n).expect("store dir");
        for (digest, key, result) in &items {
            store.put(digest, key, result).expect("store write");
        }
        let reopened = ResultStore::persistent(&dir, n).expect("store reopen");
        items.iter().all(|(d, k, r)| reopened.get(d, k).as_deref() == Some(r.as_str()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    assert!(all_identical, "store round-trip must reproduce every byte");
    Entry {
        id: "store_roundtrip".into(),
        params: vec![("entries".into(), Json::Int(n as i64))],
        runs: vec![Run { threads: 1, wall_ns: med, min_ns: min, max_ns: max, samples }],
        speedup: None,
        byte_identical: Some(true),
        report: None,
    }
}

/// The `service_cold_vs_warm` kernel: one in-process daemon with a
/// persistent store; run 1 is the cold `autolb` submission (computed on
/// the shared engine, then stored), run 2 the warm submission (served
/// from the store). Byte identity is asserted against both the cold
/// response and an in-process engine run — the serving determinism
/// contract, measured.
fn service_cold_vs_warm_entry(threads: usize, quick: bool) -> Entry {
    let dir = std::env::temp_dir().join(format!("relim-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig { threads, store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).expect("spawn daemon");
    let client = Client::new(handle.local_addr().to_string());
    let op = OpRequest::auto_lb("M M M;P O O", "M [P O];O O").expect("valid op");

    let cold_start = std::time::Instant::now();
    let cold = client.submit(&op, None).expect("cold submission");
    let cold_ns = cold_start.elapsed().as_nanos() as u64;
    assert!(!cold.cached, "first submission cannot be cached");

    let warm_samples = if quick { 5 } else { 9 };
    let (warm, warm_med, warm_min, warm_max) =
        time_median(warm_samples, || client.submit(&op, None).expect("warm submission"));
    assert!(warm.cached, "repeat submission must be a store hit");
    assert_eq!(warm.result, cold.result, "served bytes must never change");
    let in_process =
        op.execute(&Engine::builder().threads(threads).build()).expect("in-process reference");
    assert_eq!(cold.result, in_process, "served must equal in-process bytes");

    client.shutdown().expect("graceful shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    Entry {
        id: "service_cold_vs_warm".into(),
        params: vec![
            ("op".into(), Json::str("autolb")),
            ("store".into(), Json::str("persistent")),
            ("mode_run0".into(), Json::str("cold_store")),
            ("mode_run1".into(), Json::str("warm_store")),
            ("warm_cached".into(), Json::Bool(true)),
        ],
        runs: vec![
            Run { threads, wall_ns: cold_ns, min_ns: cold_ns, max_ns: cold_ns, samples: 1 },
            Run {
                threads,
                wall_ns: warm_med,
                min_ns: warm_min,
                max_ns: warm_max,
                samples: warm_samples,
            },
        ],
        speedup: Some(cold_ns as f64 / warm_med.max(1) as f64),
        byte_identical: Some(true),
        report: None,
    }
}

/// The `service_concurrent_throughput` kernel: four client threads fire
/// one 16-job batch (four distinct `iterate` queries, each submitted by
/// every thread, so 12 of the 16 submits are duplicates that store-hit
/// or coalesce) against a fresh in-memory daemon — once at executor-pool
/// width 1 (run 1) and once at width 4 (run 2). The sorted response
/// transcript must be byte-identical across the two widths and contain
/// the in-process reference bytes of every distinct op: the serving
/// determinism contract under concurrency, measured as batch wall time.
/// On a single-core runner the two widths time alike — the byte-identity
/// assertions are the pinned contract, the speedup is informative only.
fn service_concurrent_throughput_entry(quick: bool) -> Entry {
    let ops: Vec<OpRequest> = (1..=4)
        .map(|steps| OpRequest::Iterate {
            node: "M M M\nP O O".into(),
            edge: "M [P O]\nO O".into(),
            max_steps: steps,
            label_limit: 20,
        })
        .collect();
    let references: Vec<String> = ops
        .iter()
        .map(|op| op.execute(&Engine::sequential()).expect("in-process reference"))
        .collect();
    let clients = 4usize;
    let samples = if quick { 3 } else { 5 };

    let run_batch = |executors: usize| -> String {
        let config = ServerConfig { threads: 1, executors, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).expect("spawn daemon");
        let addr = handle.local_addr().to_string();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients));
        let workers: Vec<_> = (0..clients)
            .map(|t| {
                let addr = addr.clone();
                let ops = ops.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (0..ops.len())
                        .map(|i| {
                            let idx = (i + t) % ops.len();
                            let reply =
                                Client::new(addr.clone()).submit(&ops[idx], None).expect("submit");
                            (idx, reply.result)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut rendered = Vec::new();
        for worker in workers {
            for (idx, result) in worker.join().expect("client thread panicked") {
                rendered.push(format!("#{idx}\n{result}"));
            }
        }
        Client::new(addr).shutdown().expect("graceful shutdown");
        handle.join();
        rendered.sort();
        rendered.join("\n===\n")
    };

    let (out1, med1, min1, max1) = time_median(samples, || run_batch(1));
    let (out4, med4, min4, max4) = time_median(samples, || run_batch(4));
    assert_eq!(out1, out4, "served bytes must not depend on the executor count");
    for (idx, reference) in references.iter().enumerate() {
        assert!(out4.contains(reference), "response #{idx} drifted from the in-process bytes");
    }
    Entry {
        id: "service_concurrent_throughput".into(),
        params: vec![
            ("jobs".into(), Json::Int((clients * ops.len()) as i64)),
            ("clients".into(), Json::Int(clients as i64)),
            ("distinct_ops".into(), Json::Int(ops.len() as i64)),
            ("mode_run0".into(), Json::str("executors_1")),
            ("mode_run1".into(), Json::str("executors_4")),
        ],
        runs: vec![
            Run { threads: 1, wall_ns: med1, min_ns: min1, max_ns: max1, samples },
            Run { threads: 4, wall_ns: med4, min_ns: min4, max_ns: max4, samples },
        ],
        speedup: Some(med1 as f64 / med4.max(1) as f64),
        byte_identical: Some(true),
        report: None,
    }
}

/// The `trace_overhead` kernel: the same warm `zero-round` submission
/// batch against a fresh in-memory daemon with tracing off (run 1,
/// the default configuration) and on (run 2). The served bytes must be
/// identical in every sample of both runs — tracing is observability,
/// never behavior — and the traced daemon must actually hold spans for
/// the measured trace id, so the "on" timing is honest. The off run is
/// the shipping default: its entire cost is one `None` branch per
/// recording site, and this entry pins that claim with a number.
fn trace_overhead_entry(quick: bool) -> Entry {
    let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").expect("valid op");
    let reference = op.execute(&Engine::sequential()).expect("in-process reference");
    let samples = if quick { 5 } else { 9 };
    let batch: usize = if quick { 16 } else { 64 };
    let trace_id: u64 = 0xbe7c;

    let run_daemon = |trace: bool| -> (u64, u64, u64) {
        let config = ServerConfig { threads: 1, executors: 1, trace, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).expect("spawn daemon");
        let client = Client::new(handle.local_addr().to_string());
        let cold = client.submit(&op, None).expect("cold submission");
        assert!(!cold.cached, "first submission cannot be cached");
        assert_eq!(cold.result, reference, "served must equal in-process bytes");
        let ctx = trace.then_some(relim_service::trace::TraceContext { trace_id, parent: None });
        let (all_identical, med, min, max) = time_median(samples, || {
            (0..batch).all(|_| {
                let reply = client.submit_traced(&op, None, ctx.as_ref()).expect("warm submission");
                reply.cached && reply.result == reference
            })
        });
        assert!(all_identical, "served bytes must not depend on tracing");
        if trace {
            let dump = client.trace_dump(Some(trace_id)).expect("trace dump");
            assert!(!dump.spans.is_empty(), "the traced daemon must hold spans");
        }
        client.shutdown().expect("graceful shutdown");
        handle.join();
        (med, min, max)
    };

    let (off_med, off_min, off_max) = run_daemon(false);
    let (on_med, on_min, on_max) = run_daemon(true);
    Entry {
        id: "trace_overhead".into(),
        params: vec![
            ("op".into(), Json::str("zero-round")),
            ("batch".into(), Json::Int(batch as i64)),
            ("mode_run0".into(), Json::str("trace_off")),
            ("mode_run1".into(), Json::str("trace_on")),
        ],
        runs: vec![
            Run { threads: 1, wall_ns: off_med, min_ns: off_min, max_ns: off_max, samples },
            Run { threads: 1, wall_ns: on_med, min_ns: on_min, max_ns: on_max, samples },
        ],
        speedup: Some(on_med as f64 / off_med.max(1) as f64),
        byte_identical: Some(true),
        report: None,
    }
}

/// The `fleet_ring_assignment` kernel: owner assignment of a synthetic
/// digest population over an 8-member consistent-hash ring, plus the
/// re-assignment churn of adding a ninth member. Pure and fully
/// deterministic (fixed member names, splitmix-generated digests), so
/// the recorded balance and churn numbers are exact-diffed by the
/// baseline gate: a change to the ring's hash or vnode layout shows up
/// as a param mismatch, not a silent re-partition of every fleet.
fn fleet_ring_assignment_entry(quick: bool) -> Entry {
    let n_digests: usize = if quick { 20_000 } else { 100_000 };
    let members: Vec<String> = (0..8).map(|i| format!("peer-{i}:74{i:02}")).collect();
    let digests: Vec<String> = (0..n_digests as u64)
        .map(|i| {
            // splitmix64 over the index: stable synthetic addresses.
            let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            format!("{:016x}{:016x}", z, z ^ (z >> 31))
        })
        .collect();

    let assign = |ring: &Ring| -> Vec<usize> {
        digests
            .iter()
            .map(|d| {
                let owner = ring.owner_of(d).expect("non-empty ring");
                ring.members().iter().position(|m| m == owner).expect("owner is a member")
            })
            .collect()
    };
    let samples = if quick { 3 } else { 5 };
    let ring = Ring::new(members.clone());
    let (owners, med, min, max) = time_median(samples, || assign(&ring));

    let mut shares = vec![0i64; members.len()];
    for owner in &owners {
        shares[*owner] += 1;
    }
    let mut grown = members.clone();
    grown.push("peer-8:7408".to_owned());
    let grown_ring = Ring::new(grown);
    let grown_owners = assign(&grown_ring);
    let moved = owners
        .iter()
        .zip(&grown_owners)
        .filter(|(before, after)| ring.members()[**before] != grown_ring.members()[**after])
        .count();
    // Every moved address must land on the newcomer (the stability
    // contract the ring proptests pin; asserted here on the bench
    // population too, so the baseline never records a broken ring).
    assert!(
        owners.iter().zip(&grown_owners).all(|(before, after)| {
            ring.members()[*before] == grown_ring.members()[*after]
                || grown_ring.members()[*after] == "peer-8:7408"
        }),
        "an address moved between pre-existing members"
    );

    Entry {
        id: "fleet_ring_assignment".into(),
        params: vec![
            ("members".into(), Json::Int(members.len() as i64)),
            ("vnodes".into(), Json::Int(i64::from(relim_service::ring::VNODES))),
            ("digests".into(), Json::Int(n_digests as i64)),
            ("min_share".into(), Json::Int(*shares.iter().min().expect("non-empty"))),
            ("max_share".into(), Json::Int(*shares.iter().max().expect("non-empty"))),
            ("moved_to_ninth".into(), Json::Int(moved as i64)),
        ],
        runs: vec![Run { threads: 1, wall_ns: med, min_ns: min, max_ns: max, samples }],
        speedup: None,
        byte_identical: Some(true),
        report: None,
    }
}

/// Deterministic synthetic dominance-filter workload: `n` random
/// degree-`degree` set-configurations over `labels` labels.
fn synthetic_configs(n: usize, degree: usize, labels: u8, seed: u64) -> Vec<SetConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            SetConfig::new(
                (0..degree)
                    .map(|_| {
                        let mut set = LabelSet::EMPTY;
                        while set.is_empty() {
                            for l in 0..labels {
                                if rng.gen_range(0..3) == 0 {
                                    set = set.with(Label::new(l));
                                }
                            }
                        }
                        set
                    })
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench-driver [--quick] [--threads N] [--out PATH]\n       \
                 bench-driver --diff COMMITTED FRESH\n       \
                 bench-driver --alloc-gate COMMITTED"
            );
            std::process::exit(2);
        }
    };
    if let Some((committed, fresh)) = &opts.diff {
        if let Err(e) = run_diff(committed, fresh) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(committed) = &opts.alloc_gate {
        if let Err(e) = run_alloc_gate(committed) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let threads = match opts.threads {
        Some(0) => Engine::available_parallelism(),
        Some(n) => n,
        None => match Engine::try_from_env() {
            Ok(engine) => engine.threads(),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
    };
    let mut entries = Vec::new();

    // 1. The headline kernel: the Lemma 8 verification sweep (tier-2 at
    // Δ=5) — the acceptance workload for the parallel engine. A fresh
    // child session per sample keeps the per-point index builds inside
    // the measurement (cross-call reuse is `engine_session_reuse`'s job).
    let sweep_delta = if opts.quick { 4 } else { 5 };
    let sweep_samples = if opts.quick { 3 } else { 1 };
    let mut sweep_entry = compare(
        &format!("lemma8_sweep_d{sweep_delta}"),
        vec![
            ("delta".into(), Json::Int(i64::from(sweep_delta))),
            ("points".into(), Json::Int(family::sweep_points(sweep_delta).len() as i64)),
        ],
        threads,
        sweep_samples,
        |engine| lemma8::verify_sweep(sweep_delta, &fresh(engine, true)).expect("sweep"),
        |reports| format!("{reports:?}"),
    );
    sweep_entry.report = probe_report(Engine::sequential(), |e| {
        let _ = lemma8::verify_sweep(sweep_delta, e).expect("sweep probe");
    });
    entries.push(sweep_entry);

    // 2. One R̄ application on the family at the largest unit-suite point:
    // the raw universal-side enumeration plus dominance filter. A fresh
    // child session per sample keeps the index build inside the
    // measurement (the session cache would otherwise absorb it).
    let pi = family::pi(&PiParams { delta: 5, a: 4, x: 1 }).expect("valid");
    let r = r_step(&pi).expect("r step");
    let mut rbar_entry = compare(
        "rbar_step_pi_d5_a4_x1",
        vec![("labels".into(), Json::Int(r.problem.alphabet().len() as i64))],
        threads,
        if opts.quick { 3 } else { 5 },
        |engine| fresh(engine, true).rbar_step(&r.problem).expect("rbar"),
        |step| format!("{}\n{:?}", step.problem.render(), step.provenance),
    );
    rbar_entry.report = probe_report(Engine::sequential(), |e| {
        let _ = e.rbar_step(&r.problem).expect("rbar probe");
    });
    entries.push(rbar_entry);

    // 3. Iterated round elimination on MIS until the label limit — the
    // memoized default, plus the memoization-off reference so the
    // before/after of the sub-index cache is recorded side by side. Each
    // sample gets a fresh child session: the kernel measures *within-run*
    // memoization, not cross-sample reuse (that is `engine_session_reuse`).
    let mis = family::mis(3).expect("valid");
    let mut iterate_entry = compare(
        "iterate_rr_mis_d3",
        vec![
            ("max_steps".into(), Json::Int(10)),
            ("label_limit".into(), Json::Int(20)),
            ("memoized".into(), Json::Bool(true)),
        ],
        threads,
        if opts.quick { 3 } else { 5 },
        |engine| fresh(engine, true).iterate_with_limits(&mis, 10, 20),
        |outcome| format!("{:?}\n{:?}", outcome.stats, outcome.stopped),
    );
    iterate_entry.report = probe_report(Engine::sequential(), |e| {
        let _ = e.iterate_with_limits(&mis, 10, 20);
    });
    entries.push(iterate_entry);
    let mut iterate_off_entry = compare(
        "iterate_rr_mis_d3_memo_off",
        vec![
            ("max_steps".into(), Json::Int(10)),
            ("label_limit".into(), Json::Int(20)),
            ("memoized".into(), Json::Bool(false)),
        ],
        threads,
        if opts.quick { 3 } else { 5 },
        |engine| fresh(engine, false).iterate_with_limits(&mis, 10, 20),
        |outcome| format!("{:?}\n{:?}", outcome.stats, outcome.stopped),
    );
    iterate_off_entry.report =
        probe_report(Engine::builder().threads(1).memoize(false).build(), |e| {
            let _ = e.iterate_with_limits(&mis, 10, 20);
        });
    entries.push(iterate_off_entry);
    // The two paths must also agree with *each other*, not just across
    // thread counts.
    {
        let engine = Engine::builder().threads(threads).build();
        let memo = engine.iterate_with_limits(&mis, 10, 20);
        let plain = Engine::builder()
            .threads(threads)
            .memoize(false)
            .build()
            .iterate_with_limits(&mis, 10, 20);
        assert_eq!(
            format!("{:?}\n{:?}", memo.stats, memo.stopped),
            format!("{:?}\n{:?}", plain.stats, plain.stopped),
            "memoized iterate must match the memoization-off reference"
        );
    }

    // 3a. Lineage-recording overhead on the same iterate workload:
    // byte-identical outcomes, DAG size and recording-path allocations
    // pinned in the baseline.
    entries.push(iterate_lineage_overhead_entry(opts.quick));

    // 3b. Pool submission overhead: many micro-tasks whose per-item work
    // is trivial, so the measured cost is dominated by what the
    // persistent pool amortizes (no per-call thread spawns).
    let micro_items: Vec<u64> = (0..4096).collect();
    let mut micro_entry = compare(
        "pool_map_owned_micro",
        vec![("items".into(), Json::Int(micro_items.len() as i64))],
        threads,
        if opts.quick { 5 } else { 9 },
        |engine| {
            engine.map_owned(micro_items.clone(), |&x| {
                x.wrapping_mul(6364136223846793005).rotate_left(17)
            })
        },
        |out| format!("{out:?}"),
    );
    micro_entry.report = probe_report(Engine::sequential(), |e| {
        let _ = e.map_owned(micro_items.clone(), |&x: &u64| x.wrapping_add(1));
    });
    entries.push(micro_entry);

    // 3c. Session reuse: the same autolb merge search driven repeatedly
    // through ONE long-lived session (shared SubIndexCache — run 2) vs a
    // fresh session per call (cold cache every time — run 1). Outcomes
    // must be byte-identical; the cache-hit delta is recorded in params.
    entries.push(engine_session_reuse_entry(if opts.quick { 6 } else { 12 }));

    // 4. The chunk-sharded Monte-Carlo gadget simulation.
    let mc_trials: u64 = if opts.quick { 65_536 } else { 1 << 20 };
    let mc_problem = family::pi(&PiParams { delta: 6, a: 4, x: 1 }).expect("valid");
    let mut mc_entry = compare(
        "zeroround_mc_uniform",
        vec![
            ("trials".into(), Json::Int(mc_trials as i64)),
            ("chunk".into(), Json::Int(zeroround_mc::CHUNK_TRIALS as i64)),
        ],
        threads,
        if opts.quick { 3 } else { 5 },
        |engine| zeroround_mc::simulate_uniform(&mc_problem, mc_trials, 7, engine),
        |out| format!("{}/{}", out.failures, out.trials),
    );
    mc_entry.report = probe_report(Engine::sequential(), |e| {
        let _ = zeroround_mc::simulate_uniform(&mc_problem, mc_trials, 7, e);
    });
    entries.push(mc_entry);

    // 5. The dominance-filter rewrite: seed's quadratic reference vs the
    // bucketed pass, sequential and sharded.
    let n_configs = if opts.quick { 400 } else { 1_500 };
    let configs = synthetic_configs(n_configs, 4, 6, 2021);
    let reference = dominance_filter_reference(configs.clone());
    let (ref_out, ref_med, ref_min, ref_max) =
        time_median(3, || dominance_filter_reference(configs.clone()));
    assert_eq!(ref_out, reference);
    entries.push(Entry {
        id: "dominance_filter_reference".into(),
        params: vec![
            ("configs".into(), Json::Int(n_configs as i64)),
            ("survivors".into(), Json::Int(reference.len() as i64)),
        ],
        runs: vec![Run {
            threads: 1,
            wall_ns: ref_med,
            min_ns: ref_min,
            max_ns: ref_max,
            samples: 3,
        }],
        speedup: None,
        byte_identical: None,
        report: None,
    });
    let mut bucketed = compare(
        "dominance_filter_bucketed",
        vec![("configs".into(), Json::Int(n_configs as i64))],
        threads,
        3,
        |engine| engine.dominance_filter(configs.clone()),
        |survivors| format!("{survivors:?}"),
    );
    assert_eq!(bucketed.runs.len(), 2, "bucketed entry carries sequential + parallel runs");
    let rewrite_speedup = ref_med as f64 / bucketed.runs[0].wall_ns.max(1) as f64;
    bucketed.params.push(("speedup_vs_reference".into(), Json::Float(rewrite_speedup)));
    let bucketed_out = Engine::sequential().dominance_filter(configs.clone());
    assert_eq!(bucketed_out, reference, "bucketed filter must match the seed reference");
    bucketed.report = probe_report(Engine::sequential(), |e| {
        let _ = e.dominance_filter(configs.clone());
    });
    entries.push(bucketed);

    // 6. The serving layer: the content-addressed store's round-trip
    // cost, the daemon's cold-vs-warm latency on an autolb query (byte
    // identity against the in-process engine asserted inside), and the
    // executor pool's batch throughput at widths 1 vs 4.
    entries.push(store_roundtrip_entry(opts.quick));
    entries.push(service_cold_vs_warm_entry(threads, opts.quick));
    entries.push(service_concurrent_throughput_entry(opts.quick));
    entries.push(trace_overhead_entry(opts.quick));

    // 7. The fleet tier's routing table: assignment cost, balance, and
    // the churn of growing the ring by one member — all exact-diffed.
    entries.push(fleet_ring_assignment_entry(opts.quick));

    let baseline = Baseline { quick: opts.quick, threads, entries };
    println!("\n[BENCH_relim] parallel engine baseline (1 vs {} threads):", threads);
    print!("{}", baseline.render_table());
    println!("dominance rewrite vs seed reference: {rewrite_speedup:.2}x (sequential)");
    match baseline.write(&opts.out) {
        Ok(()) => println!("wrote {}", opts.out.display()),
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", opts.out.display());
            std::process::exit(1);
        }
    }
}
