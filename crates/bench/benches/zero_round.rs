//! E8: 0-round solvability on the identified-ports gadget (Lemmas 12, 15):
//! analytic reports plus Monte-Carlo failure rates for uniform strategies.

use bench::shared_engine;
use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::{self, PiParams};
use lb_family::zeroround_mc;
use relim_core::zeroround;

fn print_tables() {
    println!("\n[E8/Lemmas 12+15] 0-round analysis on the gadget:");
    println!(
        "{:>4} {:>3} {:>3} {:>9} {:>14} {:>12} {:>12}",
        "D", "a", "x", "det-solv", "analytic LB", "MC rate", "MC any-port"
    );
    let engine = shared_engine();
    let session = engine.clone();
    let grid = vec![(3u32, 2u32, 0u32), (4, 3, 1), (6, 4, 1), (8, 5, 2)];
    for row in engine.map_owned(grid, move |&(delta, a, x)| {
        let p = family::pi(&PiParams { delta, a, x }).expect("valid");
        let report = zeroround::analyze(&p);
        let mc = zeroround_mc::simulate_uniform(&p, 50_000, 7, &session);
        let mc_any = zeroround_mc::simulate_uniform_any_port(&p, 50_000, 7, &session);
        assert!(!report.deterministically_solvable);
        assert!(mc.rate >= report.randomized_failure_lower_bound);
        format!(
            "{:>4} {:>3} {:>3} {:>9} {:>14.2e} {:>12.4} {:>12.4}",
            delta,
            a,
            x,
            report.deterministically_solvable,
            report.randomized_failure_lower_bound,
            mc.rate,
            mc_any.rate
        )
    }) {
        println!("{row}");
    }
    // MIS rows for comparison.
    let mis_deltas = vec![3u32, 5];
    let session = engine.clone();
    for row in engine.map_owned(mis_deltas, move |&delta| {
        let p = family::mis(delta).expect("valid");
        let report = zeroround::analyze(&p);
        let mc = zeroround_mc::simulate_uniform(&p, 50_000, 7, &session);
        format!(
            "{:>4} {:>3} {:>3} {:>9} {:>14.2e} {:>12.4} {:>12}",
            delta,
            "-",
            "-",
            report.deterministically_solvable,
            report.randomized_failure_lower_bound,
            mc.rate,
            "(MIS)"
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let p = family::pi(&PiParams { delta: 8, a: 5, x: 2 }).expect("valid");
    c.bench_function("zeroround_analyze_d8", |b| b.iter(|| zeroround::analyze(&p)));
    let engine = shared_engine();
    c.bench_function("zeroround_mc_10k_d8", |b| {
        b.iter(|| zeroround_mc::simulate_uniform(&p, 10_000, 3, &engine))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
