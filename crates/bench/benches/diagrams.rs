//! E1 + E3: regenerate Figures 1 and 4 (label diagrams) and time the
//! diagram computation.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::{self, PiParams};
use lb_family::lemma6;
use relim_core::diagram::StrengthOrder;

/// The three figure sections, as one grid submitted to the shared engine session.
enum Figure {
    MisEdge,
    PiEdge,
    RPiNode,
}

fn print_tables() {
    let figures = vec![Figure::MisEdge, Figure::PiEdge, Figure::RPiNode];
    for section in bench::shared_engine().map_owned(figures, |figure| {
        let (header, problem, constraint_is_node, n) = match figure {
            Figure::MisEdge => {
                ("\n[E1/Figure 1] MIS edge diagram Hasse edges:", family::mis(3), false, 3)
            }
            Figure::PiEdge => (
                "[E3/Figure 4] Pi edge diagram Hasse edges:",
                family::pi(&PiParams { delta: 8, a: 5, x: 1 }),
                false,
                5,
            ),
            Figure::RPiNode => (
                "[Figure 5] R(Pi) node diagram Hasse edges:",
                lemma6::claimed_r_of_pi(&PiParams { delta: 8, a: 5, x: 1 }),
                true,
                8,
            ),
        };
        let p = problem.expect("valid");
        let order =
            StrengthOrder::of_constraint(if constraint_is_node { p.node() } else { p.edge() }, n);
        let mut out = format!("{header}\n");
        for (a, b) in order.hasse_edges() {
            out.push_str(&format!("  {} -> {}\n", p.alphabet().name(a), p.alphabet().name(b)));
        }
        out
    }) {
        print!("{section}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let pi = family::pi(&PiParams { delta: 16, a: 9, x: 2 }).expect("valid");
    c.bench_function("edge_diagram_pi_delta16", |b| {
        b.iter(|| StrengthOrder::of_constraint(pi.edge(), 5))
    });
    let claimed = lemma6::claimed_r_of_pi(&PiParams { delta: 16, a: 9, x: 2 }).expect("valid");
    c.bench_function("node_diagram_rpi_delta16", |b| {
        b.iter(|| StrengthOrder::of_constraint(claimed.node(), 8))
    });

    // E2 (Figures 2/3): solving Π_4(2,2) on a Δ-regular tree with the
    // exact LCL solver — the witness generator behind the illustrations.
    let fig2 = family::pi(&PiParams { delta: 4, a: 2, x: 2 }).expect("valid");
    let inst = lb_family::convert::to_lcl(&fig2, local_sim::lcl_solver::LeafPolicy::SubMultiset)
        .expect("convert");
    let tree = local_sim::trees::complete_regular_tree(4, 3).expect("tree");
    c.bench_function("figure2_solve_pi_4_2_2", |b| {
        b.iter(|| inst.solve(&tree, 2021).expect("tree ok").expect("solvable"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
