//! Experiment E18 — Δ-independent tree MIS vs the Δ-dependent pipelines
//! (§1.3: on trees, algorithms with no Δ dependence exist; as a function
//! of Δ nothing better than general graphs is known).
//!
//! Tables printed: measured rounds of (H-partition tree MIS, Luby,
//! deterministic Linial+sweep) across trees of fixed n and growing Δ —
//! tree MIS and Luby stay flat while the sweep grows with Δ-driven color
//! counts — and across growing n at fixed Δ, where tree MIS tracks the
//! `O(log n)` peeling layers. Criterion then times the pipelines on a
//! common tree.

use criterion::{criterion_group, criterion_main, Criterion};
use local_algos::{domset, luby, tree_mis};
use local_sim::checkers::check_mis;
use local_sim::trees;

fn print_delta_sweep() {
    // Caterpillars give exact Δ control at (nearly) fixed n: `spine`
    // spine nodes with `legs = Δ − 2` leaves each.
    println!("\n[E18a] rounds at n ≈ 250 vs Δ (caterpillars):");
    println!("{:>4} {:>6} {:>14} {:>10} {:>16}", "Δ", "n", "tree-MIS (H)", "Luby", "Linial+sweep");
    let deltas = vec![4usize, 8, 16, 32, 64];
    for row in bench::shared_engine().map_owned(deltas, |&delta| {
        let legs = delta - 2;
        let spine = (250 / (legs + 1)).max(2);
        let g = trees::caterpillar(spine, legs).expect("tree");
        let t = tree_mis::tree_mis(&g, 1).expect("tree MIS");
        check_mis(&g, &t.in_set).expect("valid");
        let l = luby::luby_mis(&g, 1).expect("luby");
        check_mis(&g, &l.in_set).expect("valid");
        let d = domset::mis_deterministic(&g, 1).expect("sweep");
        check_mis(&g, &d.in_set).expect("valid");
        format!(
            "{:>4} {:>6} {:>14} {:>10} {:>16}",
            g.max_degree(),
            g.n(),
            t.rounds.total(),
            l.rounds,
            d.rounds.total()
        )
    }) {
        println!("{row}");
    }
}

fn print_n_sweep() {
    println!("\n[E18b] rounds at Δ ≤ 8 vs n (random trees, seed 2):");
    println!("{:>6} {:>8} {:>14} {:>10}", "n", "layers", "tree-MIS (H)", "Luby");
    let sizes = vec![50usize, 100, 200, 400, 800];
    for row in bench::shared_engine().map_owned(sizes, |&n| {
        let g = trees::random_tree(n, 8, 2).expect("tree");
        let t = tree_mis::tree_mis(&g, 2).expect("tree MIS");
        check_mis(&g, &t.in_set).expect("valid");
        let l = luby::luby_mis(&g, 2).expect("luby");
        format!("{:>6} {:>8} {:>14} {:>10}", n, t.num_layers, t.rounds.total(), l.rounds)
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_delta_sweep();
    print_n_sweep();

    let g = trees::random_tree(200, 8, 3).expect("tree");
    c.bench_function("tree_mis_n200", |b| b.iter(|| tree_mis::tree_mis(&g, 3).expect("runs")));
    c.bench_function("luby_mis_n200", |b| b.iter(|| luby::luby_mis(&g, 3).expect("runs")));
    c.bench_function("linial_sweep_mis_n200", |b| {
        b.iter(|| domset::mis_deterministic(&g, 3).expect("runs"))
    });

    use local_algos::cole_vishkin;
    let cycle = local_sim::Graph::cycle(200).expect("cycle");
    c.bench_function("cv_mis_cycle200", |b| {
        b.iter(|| cole_vishkin::cv_mis(&cycle, 3).expect("runs"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
