//! Experiment E19 — §1's matching problems in the formalism, and the
//! biregular engine at full generality.
//!
//! Tables printed: the 0-round triviality landscape of maximal
//! b-matchings (gadget-trivial for b < Δ on regular trees — the color
//! classes are perfect matchings — but never bare-trivial), automatic
//! chains for maximal matching without the coloring input, and the
//! hypergraph sinkless orientation fixed point at several ranks.
//! Criterion then times the generic biregular full step against the
//! specialized (Δ, 2) `rr_step` — the cost of generality (the generic
//! node-and-edge enumeration vs the degree-2 Galois shortcut).

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::matchings;
use relim_core::autolb::{self, AutoLbOptions, Triviality};
use relim_core::biregular::{self, BiregularProblem};
use relim_core::roundelim::rr_step;
use relim_core::zeroround;

fn print_matching_landscape() {
    println!("\n[E19a] b-matching triviality landscape (0-round solvability):");
    println!("{:>4} {:>3} {:>10} {:>22}", "Δ", "b", "bare PN", "given Δ-edge coloring");
    let grid: Vec<(u32, u32)> =
        [3u32, 4, 5].into_iter().flat_map(|delta| (1..=delta).map(move |b| (delta, b))).collect();
    for row in bench::shared_engine().map_owned(grid, |&(delta, b)| {
        let p = matchings::maximal_b_matching_problem(delta, b).expect("valid");
        format!(
            "{:>4} {:>3} {:>10} {:>22}",
            delta,
            b,
            if zeroround::solvable_pn_universal(&p) { "yes" } else { "no" },
            if zeroround::solvable_deterministically(&p) { "yes" } else { "no" }
        )
    }) {
        println!("{row}");
    }
}

fn print_matching_chains() {
    println!("\n[E19b] automatic chains for maximal matching (universal criterion):");
    println!("{:>4} {:>7} {:>10} {:>8}", "Δ", "budget", "certified", "replay");
    let deltas = vec![3u32, 4];
    let engine = bench::shared_engine();
    let session = engine.clone();
    for row in engine.map_owned(deltas, move |&delta| {
        let mm = matchings::maximal_matching_problem(delta).expect("valid");
        let opts =
            AutoLbOptions { max_steps: 2, label_budget: 6, triviality: Triviality::Universal };
        let outcome = session.auto_lower_bound(&mm, &opts);
        let replay = autolb::verify_chain(&outcome).is_ok();
        format!(
            "{:>4} {:>7} {:>10} {:>8}",
            delta,
            opts.label_budget,
            outcome.certified_rounds,
            if replay { "ok" } else { "FAIL" }
        )
    }) {
        println!("{row}");
    }
}

fn print_hso_fixed_points() {
    println!("\n[E19c] hypergraph sinkless orientation under one full biregular step:");
    println!("{:>10} {:>8} {:>8} {:>8} {:>8}", "(δ_B,δ_W)", "|Σ|→", "|B|→", "|W|→", "trivial");
    let grid = vec![(3u32, 2u32), (3, 3), (4, 3), (3, 4)];
    for row in bench::shared_engine().map_owned(grid, |&(db, dw)| {
        let black = format!("O{}", " I".repeat(db as usize - 1));
        let white = format!("[O I]{}", " I".repeat(dw as usize - 1));
        let hso = BiregularProblem::from_text(&black, &white).expect("valid");
        let (_, step) = biregular::full_step(&hso).expect("steps");
        let q = &step.problem;
        format!(
            "{:>10} {:>8} {:>8} {:>8} {:>8}",
            format!("({db},{dw})"),
            format!("{}→{}", hso.alphabet().len(), q.alphabet().len()),
            format!("{}→{}", hso.black().len(), q.black().len()),
            format!("{}→{}", hso.white().len(), q.white().len()),
            if biregular::trivial_black(q).is_some() { "yes" } else { "no" }
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_matching_landscape();
    print_matching_chains();
    print_hso_fixed_points();

    // The cost of generality: specialized rr_step vs biregular full_step
    // on the same (Δ, 2) input.
    let mm = matchings::maximal_matching_problem(3).expect("valid");
    c.bench_function("rr_step_specialized_mm3", |b| b.iter(|| rr_step(&mm).expect("ok")));
    let bi = BiregularProblem::from_problem(&mm);
    c.bench_function("biregular_full_step_mm3", |b| {
        b.iter(|| biregular::full_step(&bi).expect("ok"))
    });

    let hso = BiregularProblem::from_text("O I I", "[O I] I I").expect("valid");
    c.bench_function("biregular_full_step_hso33", |b| {
        b.iter(|| biregular::full_step(&hso).expect("ok"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
