//! E9: the Lemma 13 chain-length table — `t(Δ, k) = Θ(log Δ)`, the paper's
//! central quantitative claim.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::sequence;

fn print_tables() {
    println!("\n[E9/Lemma 13] chain length vs Delta (k = x0 = 0):");
    println!(
        "{:>12} {:>8} {:>8} {:>10} {:>10} {:>7}",
        "Delta", "t_paper", "t_exact", "paper/log2", "exact/log2", "sound"
    );
    let engine = bench::shared_engine();
    let deltas: Vec<u32> = (3..=30).map(|e| 1u32 << e).collect();
    let table = sequence::chain_length_table(&deltas, 0);
    for row in engine.map_owned(table, |row| {
        let chain = sequence::paper_chain(row.delta, 0);
        format!(
            "{:>12} {:>8} {:>8} {:>10.3} {:>10.3} {:>7}",
            row.delta,
            row.paper_t,
            row.exact_t,
            row.paper_slope,
            row.exact_slope,
            sequence::chain_transitions_sound(&chain)
        )
    }) {
        println!("{row}");
    }

    println!("\n[E9b] chain length vs k at Delta = 2^20:");
    println!("{:>6} {:>8} {:>8}", "k", "t_paper", "t_exact");
    let ks = vec![0u32, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    for row in engine.map_owned(ks, |&k| {
        format!(
            "{:>6} {:>8} {:>8}",
            k,
            sequence::paper_chain(1 << 20, k).length(),
            sequence::exact_chain(1 << 20, k).length()
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    c.bench_function("paper_chain_delta_2e30", |b| {
        b.iter(|| sequence::paper_chain(1 << 30, 0).length())
    });
    c.bench_function("exact_chain_delta_2e30", |b| {
        b.iter(|| sequence::exact_chain(1 << 30, 0).length())
    });
    c.bench_function("chain_table_28_deltas", |b| {
        let deltas: Vec<u32> = (3..=30).map(|e| 1u32 << e).collect();
        b.iter(|| sequence::chain_length_table(&deltas, 0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
