//! E6: the Lemma 9 edge-coloring transform — 0-round conversion of `Π⁺`
//! solutions into the next family member, validated and timed.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::convert::{self, BoundaryPolicy};
use lb_family::family::{self, PiParams};
use lb_family::transforms;
use local_sim::lcl_solver::LeafPolicy;
use local_sim::{edge_coloring, trees};

fn print_tables() {
    println!("\n[E6/Lemma 9] transform validity across parameters:");
    println!("{:>4} {:>3} {:>3} {:>8} {:>10} {:>8}", "D", "a", "x", "n", "next(a,x)", "valid");
    let grid: Vec<PiParams> =
        [(4u32, 3u32, 0u32), (4, 3, 1), (5, 4, 0), (5, 5, 1), (6, 5, 2), (6, 6, 1)]
            .into_iter()
            .map(|(delta, a, x)| PiParams { delta, a, x })
            .filter(|p| 2 * p.x < p.a && p.a > p.x)
            .collect();
    for row in bench::shared_engine().map_owned(grid, |params| {
        let plus = family::pi_plus(params).expect("valid");
        let inst = convert::to_lcl(&plus, LeafPolicy::SubMultiset).expect("convert");
        let tree = trees::complete_regular_tree(params.delta as usize, 3).expect("tree");
        let coloring = edge_coloring::tree_edge_coloring(&tree).expect("coloring");
        let sol = inst.solve(&tree, 5).expect("tree").expect("solvable");
        let (out, next) =
            transforms::lemma9_transform(params, &tree, &coloring, &sol).expect("transform");
        let target = family::pi(&next).expect("valid");
        let valid =
            convert::check_labeling(&target, &tree, &out, BoundaryPolicy::InteriorOnly).is_ok();
        assert!(valid);
        format!(
            "{:>4} {:>3} {:>3} {:>8} {:>10} {:>8}",
            params.delta,
            params.a,
            params.x,
            tree.n(),
            format!("({},{})", next.a, next.x),
            valid
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let params = PiParams { delta: 6, a: 5, x: 1 };
    let plus = family::pi_plus(&params).expect("valid");
    let inst = convert::to_lcl(&plus, LeafPolicy::SubMultiset).expect("convert");
    let tree = trees::complete_regular_tree(6, 3).expect("tree");
    let coloring = edge_coloring::tree_edge_coloring(&tree).expect("coloring");
    let sol = inst.solve(&tree, 5).expect("tree").expect("solvable");
    c.bench_function("lemma9_transform_d6_n547", |b| {
        b.iter(|| transforms::lemma9_transform(&params, &tree, &coloring, &sol).expect("transform"))
    });
    c.bench_function("lemma9_solve_pi_plus_d6_n547", |b| {
        b.iter(|| inst.solve(&tree, 5).expect("tree").expect("solvable"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
