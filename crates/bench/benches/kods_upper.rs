//! E11: the k-outdegree dominating set pipeline — measured rounds vs Δ/k
//! (the upper-bound shape of §1.1 facing the paper's lower bound).

use criterion::{criterion_group, criterion_main, Criterion};
use local_algos::{k_degree_domset, k_outdegree_domset};
use local_sim::{checkers, trees};

fn print_tables() {
    println!("\n[E11] k-ODS pipeline rounds on complete Delta-regular trees:");
    println!(
        "{:>4} {:>4} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "D", "k", "n", "buckets", "coloring", "bucket", "sweep", "|S|"
    );
    let engine = bench::shared_engine();
    let grid: Vec<(usize, usize)> = [4usize, 6, 8, 10]
        .into_iter()
        .flat_map(|delta| [0usize, 1, 2, delta / 2, delta].map(|k| (delta, k)))
        .collect();
    for row in engine.map_owned(grid, |&(delta, k)| {
        let depth = if delta >= 8 { 2 } else { 3 };
        let tree = trees::complete_regular_tree(delta, depth).expect("tree");
        let rep = k_outdegree_domset(&tree, k, 5).expect("pipeline");
        checkers::check_k_outdegree_domset(&tree, &rep.in_set, &rep.orientation, k).expect("valid");
        format!(
            "{:>4} {:>4} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
            delta,
            k,
            tree.n(),
            rep.buckets,
            rep.rounds.coloring,
            rep.rounds.bucketing,
            rep.rounds.sweep,
            rep.in_set.iter().filter(|&&b| b).count()
        )
    }) {
        println!("{row}");
    }
    println!("(sweep <= buckets + 2 = Delta/(k+1) + O(1); trees resolve early, so the");
    println!(" worst-case Delta/k shape lives in the buckets column)");

    // The k-degree variant (defective coloring substrate): the paper's
    // O(min{Δ, (Δ/k)²} + log* n) pipeline.
    println!("\n[E11c] k-degree dominating set pipeline (defective coloring):");
    println!(
        "{:>4} {:>4} {:>7} {:>12} {:>9} {:>9} {:>9}",
        "D", "k", "n", "def-colors", "coloring", "bucket", "sweep"
    );
    let degree_grid: Vec<(usize, usize)> = [4usize, 6, 8]
        .into_iter()
        .flat_map(|delta| [1usize, 2, delta / 2].map(|k| (delta, k)))
        .collect();
    for row in engine.map_owned(degree_grid, |&(delta, k)| {
        let depth = if delta >= 8 { 2 } else { 3 };
        let tree = trees::complete_regular_tree(delta, depth).expect("tree");
        let rep = k_degree_domset(&tree, k, 5).expect("pipeline");
        checkers::check_k_degree_domset(&tree, &rep.in_set, k).expect("valid");
        format!(
            "{:>4} {:>4} {:>7} {:>12} {:>9} {:>9} {:>9}",
            delta,
            k,
            tree.n(),
            rep.defective_colors,
            rep.rounds.coloring,
            rep.rounds.bucketing,
            rep.rounds.sweep,
        )
    }) {
        println!("{row}");
    }
    println!("(def-colors shrinks as k grows: the (Δ/k)² palette shape)");

    // Worst-case sweep demonstration: if every node sits in the *last*
    // class, the sweep must idle through all earlier classes — measured
    // rounds then equal the class count, which is the Δ/(k+1)+1 shape.
    println!("\n[E11b] adversarial class assignment: measured sweep rounds = class count:");
    println!("{:>9} {:>9}", "classes", "rounds");
    let tree = trees::complete_regular_tree(4, 3).expect("tree");
    let class_counts = vec![2usize, 4, 8, 16, 32];
    for row in engine.map_owned(class_counts, move |&classes| {
        let assignment = vec![classes - 1; tree.n()];
        let (in_set, rounds) =
            local_algos::sweep::class_sweep(&tree, &assignment, classes, 0).expect("sweep");
        assert!(in_set.iter().all(|&b| b), "everyone joins in the last class");
        format!("{:>9} {:>9}", classes, rounds)
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let tree = trees::complete_regular_tree(6, 3).expect("tree");
    for k in [0usize, 2, 5] {
        c.bench_function(&format!("kods_pipeline_d6_k{k}"), |b| {
            b.iter(|| k_outdegree_domset(&tree, k, 5).expect("pipeline"))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
