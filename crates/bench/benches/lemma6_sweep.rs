//! E4: Lemma 6 verification sweep — the engine's `R(Π_Δ(a,x))` equals the
//! paper's 8-label problem at every valid parameter point.

use bench::shared_engine;
use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::PiParams;
use lb_family::lemma6;

fn print_tables() {
    println!("\n[E4/Lemma 6] verification sweep:");
    println!("{:>4} {:>8} {:>8} {:>14}", "D", "points", "passed", "max |N(R(Pi))|");
    let engine = shared_engine();
    let session = engine.clone();
    let deltas: Vec<u32> = (3..=9).collect();
    for row in engine.map_owned(deltas, move |&delta| {
        let reports = lemma6::verify_sweep(delta, &session).expect("sweep");
        let passed = reports.iter().filter(|r| r.matches_paper()).count();
        let max_n = reports.iter().map(|r| r.node_config_count).max().unwrap_or(0);
        assert_eq!(passed, reports.len(), "Lemma 6 must verify everywhere");
        format!("{:>4} {:>8} {:>8} {:>14}", delta, reports.len(), passed, max_n)
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    for (delta, a, x) in [(6u32, 4u32, 1u32), (10, 6, 2), (14, 8, 3)] {
        let params = PiParams { delta, a, x };
        c.bench_function(&format!("lemma6_verify_d{delta}_a{a}_x{x}"), |b| {
            b.iter(|| {
                let report = lemma6::verify(&params).expect("valid params");
                assert!(report.matches_paper());
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
