//! E13: the label-growth phenomenon (§1.2) — naive iterated `R̄(R(·))` on
//! MIS grows the alphabet, while the paper's family holds at 8 labels.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::{self, PiParams};
use relim_core::roundelim::{r_step, rr_step};

fn print_tables() {
    println!("\n[E13] alphabet growth under naive round elimination (MIS, D=3):");
    let mis = family::mis(3).expect("valid");
    let mut current = mis.clone();
    println!("{:>6} {:>8} {:>10} {:>10}", "step", "labels", "|N|", "|E|");
    println!(
        "{:>6} {:>8} {:>10} {:>10}",
        0,
        current.alphabet().len(),
        current.node().len(),
        current.edge().len()
    );
    // The growth chain is inherently sequential; each step still shards
    // its universal sides over the shared engine session.
    let engine = bench::shared_engine();
    for step_idx in 1..=2 {
        match engine.rr_step(&current) {
            Ok((_, rr)) => {
                let (reduced, _) = rr.problem.drop_unused_labels();
                println!(
                    "{:>6} {:>8} {:>10} {:>10}",
                    step_idx,
                    reduced.alphabet().len(),
                    reduced.node().len(),
                    reduced.edge().len()
                );
                if reduced.alphabet().len() > 20 {
                    println!("  (stopping: next step exceeds the enumeration limit)");
                    break;
                }
                current = reduced;
            }
            Err(e) => {
                println!("  step {step_idx}: {e}");
                break;
            }
        }
    }

    println!("\n[E13b] the family's alphabet stays constant under R(.):");
    println!("{:>4} {:>3} {:>3} {:>14}", "D", "a", "x", "labels of R(Pi)");
    let grid = vec![(4u32, 3u32, 0u32), (6, 4, 1), (8, 6, 2), (10, 8, 3)];
    for row in bench::shared_engine().map_owned(grid, |&(delta, a, x)| {
        let pi = family::pi(&PiParams { delta, a, x }).expect("valid");
        let step = r_step(&pi).expect("non-degenerate");
        assert_eq!(step.problem.alphabet().len(), 8);
        format!("{:>4} {:>3} {:>3} {:>14}", delta, a, x, step.problem.alphabet().len())
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mis = family::mis(3).expect("valid");
    c.bench_function("rr_step_mis_d3", |b| b.iter(|| rr_step(&mis).expect("non-degenerate")));
    let pi = family::pi(&PiParams { delta: 8, a: 6, x: 2 }).expect("valid");
    c.bench_function("r_step_family_d8", |b| b.iter(|| r_step(&pi).expect("non-degenerate")));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
