//! Experiment E17 — the automatic bound search (autolb / autoub).
//!
//! Tables printed: certified automatic lower bounds per (problem, label
//! budget) with certificate replay status, and automatic upper bounds for
//! MIS on cycles under coloring promises. Criterion then times one
//! `auto_lower_bound` invocation (the cost of a budgeted search step,
//! dominated by `R̄(R(·))` plus candidate merges).

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::{self, PiParams};
use relim_core::autolb::{self, AutoLbOptions};
use relim_core::autoub::{self, AutoUbOptions};
use relim_core::{zeroround, Problem};

fn print_autolb_table() {
    println!("\n[E17a] automatic lower bounds (criterion: gadget / Δ-edge coloring):");
    println!(
        "{:<26} {:>7} {:>6} {:>10} {:>8}",
        "problem", "budget", "steps", "certified", "replay"
    );
    let cases: Vec<(String, Problem)> = vec![
        ("sinkless orientation Δ=3".into(), Problem::from_text("O I I", "[O I] I").unwrap()),
        ("MIS Δ=3".into(), family::mis(3).unwrap()),
        ("Π_3(3,0)".into(), family::pi(&PiParams { delta: 3, a: 3, x: 0 }).unwrap()),
        ("Π_4(4,0)".into(), family::pi(&PiParams { delta: 4, a: 4, x: 0 }).unwrap()),
    ];
    // (problem × budget) grid, submitted to the shared engine session's persistent
    // workers (the tasks own their problem clones).
    let grid: Vec<(String, Problem, usize)> = cases
        .iter()
        .flat_map(|(name, p)| [5usize, 6].map(|budget| (name.clone(), p.clone(), budget)))
        .collect();
    let engine = bench::shared_engine();
    let session = engine.clone();
    for row in engine.map_owned(grid, move |(name, p, budget)| {
        let opts = AutoLbOptions { max_steps: 3, label_budget: *budget, ..Default::default() };
        let outcome = session.auto_lower_bound(p, &opts);
        let replay = autolb::verify_chain(&outcome).is_ok();
        format!(
            "{:<26} {:>7} {:>6} {:>10} {:>8}",
            name,
            budget,
            outcome.steps.len(),
            format!("{}{}", outcome.certified_rounds, if outcome.unbounded() { "+∞" } else { "" }),
            if replay { "ok" } else { "FAIL" }
        )
    }) {
        println!("{row}");
    }
}

fn print_autoub_table(engine: &bench::Engine) {
    println!("\n[E17b] automatic upper bounds for MIS on cycles (Δ = 2):");
    println!("{:<34} {:>10}", "promise", "rounds");
    let mis2 = family::mis(2).unwrap();
    println!(
        "{:<34} {:>10}",
        "0-round, given 2-coloring",
        if zeroround::coloring_witness(&mis2, 2).is_some() { "0" } else { "-" }
    );
    for colors in [3usize, 4] {
        let opts = AutoUbOptions { max_steps: 6, label_budget: 14, coloring: Some(colors) };
        let outcome = engine.auto_upper_bound(&mis2, &opts);
        let cell = outcome.bound.as_ref().map_or("not found".to_owned(), |b| b.rounds.to_string());
        assert!(autoub::verify_ub(&outcome).is_ok());
        println!("{:<34} {:>10}", format!("given a proper {colors}-coloring"), cell);
    }
}

fn bench(c: &mut Criterion) {
    let engine = bench::shared_engine();
    print_autolb_table();
    print_autoub_table(&engine);

    let mis = family::mis(3).unwrap();
    let opts = AutoLbOptions { max_steps: 2, label_budget: 6, ..Default::default() };
    c.bench_function("autolb_mis3_two_steps", |b| b.iter(|| engine.auto_lower_bound(&mis, &opts)));

    let so = Problem::from_text("O I I", "[O I] I").unwrap();
    c.bench_function("autolb_sinkless_fixed_point", |b| {
        b.iter(|| engine.auto_lower_bound(&so, &AutoLbOptions::default()))
    });

    let mis2 = family::mis(2).unwrap();
    let ub_opts = AutoUbOptions { max_steps: 6, label_budget: 14, coloring: Some(3) };
    c.bench_function("autoub_mis2_coloring3", |b| {
        b.iter(|| engine.auto_upper_bound(&mis2, &ub_opts))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
