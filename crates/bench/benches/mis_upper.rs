//! E12: MIS upper bounds — deterministic sweep vs Luby's randomized
//! algorithm; the Δ-vs-log n regime split of the paper's §1.1/§1.3.

use criterion::{criterion_group, criterion_main, Criterion};
use local_algos::{domset, luby, mis_deterministic};
use local_sim::{checkers, trees};

fn print_tables() {
    println!("\n[E12] MIS rounds: deterministic vs Luby:");
    println!(
        "{:>4} {:>7} {:>10} {:>10} {:>10} {:>12}",
        "D", "n", "det total", "det sweep", "d+1 sweep", "Luby (avg5)"
    );
    let engine = bench::shared_engine();
    let deltas = vec![3usize, 4, 5, 6, 8];
    for row in engine.map_owned(deltas, |&delta| {
        let depth = if delta >= 6 { 2 } else { 3 };
        let tree = trees::complete_regular_tree(delta, depth).expect("tree");
        let det = mis_deterministic(&tree, 3).expect("det");
        checkers::check_mis(&tree, &det.in_set).expect("valid");
        let plus1 = domset::mis_via_delta_plus_one(&tree, 3).expect("plus1");
        checkers::check_mis(&tree, &plus1.in_set).expect("valid");
        let mut total = 0usize;
        for seed in 0..5 {
            let r = luby::luby_mis(&tree, seed).expect("luby");
            checkers::check_mis(&tree, &r.in_set).expect("valid");
            total += r.rounds;
        }
        format!(
            "{:>4} {:>7} {:>10} {:>10} {:>10} {:>12.1}",
            delta,
            tree.n(),
            det.rounds.total(),
            det.rounds.sweep,
            plus1.rounds.sweep,
            total as f64 / 5.0
        )
    }) {
        println!("{row}");
    }
    println!("(the Δ+1-sweep column grows with Δ; Luby's column tracks log n)");

    println!("\n[E12b] Luby rounds vs n on max-degree-4 random trees:");
    println!("{:>8} {:>12}", "n", "Luby (avg5)");
    let sizes = vec![50usize, 200, 800, 3200];
    for row in engine.map_owned(sizes, |&n| {
        let tree = trees::random_tree(n, 4, 1).expect("tree");
        let mut total = 0usize;
        for seed in 0..5 {
            total += luby::luby_mis(&tree, seed).expect("luby").rounds;
        }
        format!("{:>8} {:>12.1}", n, total as f64 / 5.0)
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let tree = trees::complete_regular_tree(4, 4).expect("tree");
    c.bench_function("mis_deterministic_d4_n161", |b| {
        b.iter(|| mis_deterministic(&tree, 3).expect("det"))
    });
    c.bench_function("luby_mis_d4_n161", |b| b.iter(|| luby::luby_mis(&tree, 3).expect("luby")));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
