//! E10: Theorem 1 and Corollary 2 bound tables.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::bounds;

fn print_tables() {
    let engine = bench::shared_engine();
    let ns = vec![1e6, 1e9, 1e15];
    for section in engine.map_owned(ns, |&n| {
        let mut out = format!(
            "\n[E10/Theorem 1] bounds at n = {n:.0e}:\n{:>10} {:>5} {:>10} {:>10} {:>12} {:>12}\n",
            "Delta", "t", "logD(n)", "det LB", "logD(logn)", "rand LB"
        );
        for row in
            bounds::theorem1_table(n, &[4, 16, 64, 256, 1024, 4096, 1 << 14, 1 << 18, 1 << 22], 0)
        {
            out.push_str(&format!(
                "{:>10} {:>5} {:>10.2} {:>10.2} {:>12.3} {:>12.3}\n",
                row.delta, row.t, row.det_cap, row.det_bound, row.rand_cap, row.rand_bound
            ));
        }
        out
    }) {
        print!("{section}");
    }

    println!("\n[E10b/Corollary 2] balanced-degree bounds:");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "n", "D*_det", "det", "sqrt(logn)", "D*_rand", "rand"
    );
    let exps = vec![6, 9, 12, 18, 24, 30, 40, 60];
    for row in engine.map_owned(exps, |&exp| {
        let n = 10f64.powi(exp);
        let (dd, bd) = bounds::corollary2_det(n);
        let (dr, br) = bounds::corollary2_rand(n);
        format!(
            "{:>10.0e} {:>10} {:>10.2} {:>10.2} {:>12} {:>12.3}",
            n,
            dd,
            bd,
            n.log2().sqrt(),
            dr,
            br
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    c.bench_function("theorem1_table_9_deltas", |b| {
        b.iter(|| {
            bounds::theorem1_table(1e9, &[4, 16, 64, 256, 1024, 4096, 1 << 14, 1 << 18, 1 << 22], 0)
        })
    });
    c.bench_function("corollary2_det_n1e30", |b| b.iter(|| bounds::corollary2_det(1e30)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
