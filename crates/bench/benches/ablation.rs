//! Ablation: the engine's two exact accelerations
//! (DESIGN.md "relim-core key representations"):
//!
//! 1. the Galois fixed-point computation of the universal *edge* side vs.
//!    enumerating all `2^|Σ| × 2^|Σ|` pairs;
//! 2. the right-closedness (Observation 4) pruning of the universal *node*
//!    side vs. enumerating multisets over all non-empty label subsets.
//!
//! Both variants are exact (differentially tested in
//! `tests/engine_exhaustive.rs`); the ablation quantifies the speedup that
//! makes the Lemma 6/8 sweeps feasible.

use bench::shared_engine;
use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::{self, PiParams};
use relim_core::roundelim::{r_step, r_step_edge_bruteforce, rbar_step, rbar_step_node_bruteforce};

fn print_tables() {
    println!("\n[Ablation] candidate-space sizes for the universal steps:");
    println!(
        "{:>4} {:>3} {:>3} {:>12} {:>14} {:>12} {:>14}",
        "D", "a", "x", "rc-sets", "all-subsets", "rc-pairs", "all-pairs"
    );
    let grid = vec![(4u32, 3u32, 0u32), (6, 4, 1), (8, 5, 2)];
    for row in shared_engine().map_owned(grid, |&(delta, a, x)| {
        let p = family::pi(&PiParams { delta, a, x }).expect("valid");
        let order = relim_core::diagram::StrengthOrder::of_constraint(p.edge(), p.alphabet().len());
        let rc = relim_core::rightclosed::right_closed_sets(&order).len();
        let all = (1usize << p.alphabet().len()) - 1;
        format!(
            "{:>4} {:>3} {:>3} {:>12} {:>14} {:>12} {:>14}",
            delta,
            a,
            x,
            rc,
            all,
            rc * rc,
            all * all
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let p = family::pi(&PiParams { delta: 4, a: 3, x: 0 }).expect("valid");

    c.bench_function("edge_side_galois", |b| b.iter(|| r_step(&p).expect("ok")));
    c.bench_function("edge_side_bruteforce", |b| {
        b.iter(|| r_step_edge_bruteforce(&p).expect("ok"))
    });

    // The node-side brute force enumerates multisets over *all* non-empty
    // label subsets — at Δ = 4 and 8 labels that is ~180M candidates
    // (minutes per iteration), so the head-to-head uses Δ = 3 where the
    // brute force is merely ~450× slower instead of unmeasurable.
    let p3 = family::pi(&PiParams { delta: 3, a: 2, x: 0 }).expect("valid");
    let r3 = r_step(&p3).expect("ok");
    c.bench_function("node_side_rightclosed", |b| b.iter(|| rbar_step(&r3.problem).expect("ok")));
    c.bench_function("node_side_bruteforce", |b| {
        b.iter(|| rbar_step_node_bruteforce(&r3.problem).expect("ok"))
    });

    // Right-closedness pruning at the paper's working size (Δ = 4), no
    // brute-force counterpart.
    let r4 = r_step(&p).expect("ok");
    c.bench_function("node_side_rightclosed_delta4", |b| {
        b.iter(|| rbar_step(&r4.problem).expect("ok"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
