//! E5: the full `R̄(R(Π_Δ(a,x)))` computation and its Lemma 8 relaxation —
//! the step the paper reasons about without computing, done exactly.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::PiParams;
use lb_family::lemma8::Lemma8Machinery;

fn print_tables() {
    println!("\n[E5/Lemma 8] full RR computation + relaxation check:");
    println!(
        "{:>4} {:>3} {:>3} {:>9} {:>8} {:>9} {:>9}",
        "D", "a", "x", "|Sigma''|", "|N''|", "relaxes", "rel=plus"
    );
    for (delta, a, x) in [
        (3u32, 2u32, 0u32),
        (4, 2, 0),
        (4, 3, 0),
        (4, 3, 1),
        (4, 4, 0),
        (4, 4, 1),
        (4, 4, 2),
        (5, 3, 0),
        (5, 4, 1),
        (5, 5, 2),
    ] {
        let params = PiParams { delta, a, x };
        if !params.lemma6_applicable() {
            continue;
        }
        let mach = Lemma8Machinery::compute(&params).expect("compute");
        let report = mach.verify();
        println!(
            "{:>4} {:>3} {:>3} {:>9} {:>8} {:>9} {:>9}",
            delta,
            a,
            x,
            report.rr_label_count,
            report.rr_node_config_count,
            report.all_node_configs_relax,
            report.pi_rel_equals_pi_plus
        );
        assert!(report.matches_paper(), "Lemma 8 must verify at {params:?}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    for (delta, a, x) in [(3u32, 2u32, 0u32), (4, 3, 0), (5, 4, 1)] {
        let params = PiParams { delta, a, x };
        c.bench_function(&format!("lemma8_full_rr_d{delta}_a{a}_x{x}"), |b| {
            b.iter(|| {
                let mach = Lemma8Machinery::compute(&params).expect("compute");
                assert!(mach.verify().matches_paper());
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
