//! E5: the full `R̄(R(Π_Δ(a,x)))` computation and its Lemma 8 relaxation —
//! the step the paper reasons about without computing, done exactly.

use bench::shared_engine;
use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::family::PiParams;
use lb_family::lemma8::Lemma8Machinery;

fn print_tables() {
    println!("\n[E5/Lemma 8] full RR computation + relaxation check:");
    println!(
        "{:>4} {:>3} {:>3} {:>9} {:>8} {:>9} {:>9}",
        "D", "a", "x", "|Sigma''|", "|N''|", "relaxes", "rel=plus"
    );
    let engine = shared_engine();
    let grid: Vec<PiParams> = [
        (3u32, 2u32, 0u32),
        (4, 2, 0),
        (4, 3, 0),
        (4, 3, 1),
        (4, 4, 0),
        (4, 4, 1),
        (4, 4, 2),
        (5, 3, 0),
        (5, 4, 1),
        (5, 5, 2),
    ]
    .into_iter()
    .map(|(delta, a, x)| PiParams { delta, a, x })
    .filter(PiParams::lemma6_applicable)
    .collect();
    // The grid is submitted to the session's persistent workers; rows
    // print in grid order, and every point shares the session cache.
    let session = engine.clone();
    for row in engine.map_owned(grid, move |params| {
        let mach = Lemma8Machinery::compute(params, &session).expect("compute");
        let report = mach.verify();
        assert!(report.matches_paper(), "Lemma 8 must verify at {params:?}");
        format!(
            "{:>4} {:>3} {:>3} {:>9} {:>8} {:>9} {:>9}",
            params.delta,
            params.a,
            params.x,
            report.rr_label_count,
            report.rr_node_config_count,
            report.all_node_configs_relax,
            report.pi_rel_equals_pi_plus
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    for (delta, a, x) in [(3u32, 2u32, 0u32), (4, 3, 0), (5, 4, 1)] {
        let params = PiParams { delta, a, x };
        c.bench_function(&format!("lemma8_full_rr_d{delta}_a{a}_x{x}"), |b| {
            let engine = shared_engine();
            b.iter(|| {
                let mach = Lemma8Machinery::compute(&params, &engine).expect("compute");
                assert!(mach.verify().matches_paper());
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
