//! E7: the Lemma 5 reduction — k-outdegree dominating set solutions become
//! `Π_Δ(a,k)` solutions in one round.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_family::convert::{self, BoundaryPolicy};
use lb_family::family::{self, PiParams};
use lb_family::transforms;
use local_algos::k_outdegree_domset;
use local_sim::trees;

fn print_tables() {
    println!("\n[E7/Lemma 5] pipeline k-ODS -> Pi_D(a,k) labeling:");
    println!("{:>4} {:>3} {:>7} {:>7} {:>8}", "D", "k", "n", "|S|", "valid");
    let grid = vec![(4usize, 0usize), (4, 1), (5, 1), (5, 2), (6, 2)];
    for row in bench::shared_engine().map_owned(grid, |&(delta, k)| {
        let tree = trees::complete_regular_tree(delta, 3).expect("tree");
        let rep = k_outdegree_domset(&tree, k, 3).expect("pipeline");
        let labeling = transforms::lemma5_transform(&tree, &rep.in_set, &rep.orientation, k as u32)
            .expect("transform");
        let pi = family::pi(&PiParams {
            delta: delta as u32,
            a: (k as u32 + 2).min(delta as u32),
            x: k as u32,
        })
        .expect("valid");
        let valid =
            convert::check_labeling(&pi, &tree, &labeling, BoundaryPolicy::InteriorOnly).is_ok();
        assert!(valid);
        format!(
            "{:>4} {:>3} {:>7} {:>7} {:>8}",
            delta,
            k,
            tree.n(),
            rep.in_set.iter().filter(|&&b| b).count(),
            valid
        )
    }) {
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let tree = trees::complete_regular_tree(5, 3).expect("tree");
    let rep = k_outdegree_domset(&tree, 1, 3).expect("pipeline");
    c.bench_function("lemma5_transform_d5_n427", |b| {
        b.iter(|| {
            transforms::lemma5_transform(&tree, &rep.in_set, &rep.orientation, 1)
                .expect("transform")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
