//! The daemon under concurrent load: 8 client threads against a
//! 4-executor pool must serve bytes identical to local in-process runs,
//! a burst of identical cold queries must coalesce onto one
//! computation, graceful shutdown must drain every accepted job, and an
//! adversarial interactive-vs-bulk mix must starve nothing.

use relim_core::Engine;
use relim_json::Json;
use relim_service::client::Client;
use relim_service::ops::OpRequest;
use relim_service::queue::Class;
use relim_service::server::{Server, ServerConfig};
use std::sync::{Arc, Barrier};

const NODE: &str = "M M M\nP O O";
const EDGE: &str = "M [P O]\nO O";

fn mis_iterate(max_steps: usize) -> OpRequest {
    OpRequest::Iterate { node: NODE.into(), edge: EDGE.into(), max_steps, label_limit: 20 }
}

fn mis_autolb() -> OpRequest {
    OpRequest::AutoLb {
        node: NODE.into(),
        edge: EDGE.into(),
        max_steps: 3,
        labels: 6,
        criterion: relim_service::ops::Criterion::Gadget,
    }
}

/// The in-process reference bytes for `op` — what the daemon must serve
/// identically at any executor count.
fn local(op: &OpRequest) -> String {
    op.execute(&Engine::sequential()).expect("reference op executes")
}

fn int_at(counters: &Json, obj: &str, key: &str) -> i64 {
    counters
        .get(obj)
        .and_then(|o| o.get(key))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("counters missing {obj}.{key}: {counters:?}"))
}

/// Eight clients fire the *same* cold query simultaneously, then walk a
/// rotated list of distinct queries. Every response must be
/// byte-identical to a local sequential run, the duplicate burst must
/// coalesce (waiters ≥ 1 instead of eight computations), and the final
/// report must account for every submitted job.
#[test]
fn eight_clients_against_four_executors_coalesce_and_match_local_bytes() {
    let threads = 8usize;
    let hammer = mis_autolb();
    let hammer_reference = local(&hammer);
    let distinct: Vec<OpRequest> = vec![
        mis_iterate(1),
        mis_iterate(2),
        OpRequest::zero_round(NODE, EDGE).unwrap(),
        OpRequest::zero_round("A A", "A A").unwrap(),
    ];
    let references: Vec<String> = distinct.iter().map(local).collect();

    let config = ServerConfig { executors: 4, ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr().to_string();

    // Phase 1 — the duplicate burst: everyone asks for the same cold
    // certificate at once. The first request owns the computation; the
    // rest must attach as coalesced waiters (the compute window of an
    // autolb search is far wider than the claim race).
    let barrier = Arc::new(Barrier::new(threads));
    let burst: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.clone();
            let op = hammer.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                Client::new(addr).submit(&op, None).expect("burst submit").result
            })
        })
        .collect();
    for handle in burst {
        assert_eq!(handle.join().expect("burst client panicked"), hammer_reference);
    }
    let status = Client::new(addr.clone()).status().unwrap();
    assert!(
        int_at(&status, "store", "coalesced") >= 1,
        "an 8-way identical cold burst must coalesce: {status:?}"
    );

    // Phase 2 — the interleaved mix: each thread walks the distinct
    // queries from its own offset, so first-asks, store hits and
    // coalesced waiters all occur across threads.
    let barrier = Arc::new(Barrier::new(threads));
    let mixed: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.clone();
            let ops = distinct.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..ops.len())
                    .map(|i| {
                        let idx = (i + t) % ops.len();
                        (idx, Client::new(addr.clone()).submit(&ops[idx], None).unwrap().result)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in mixed {
        for (idx, got) in handle.join().expect("mixed client panicked") {
            assert_eq!(got, references[idx], "distinct op #{idx} drifted under concurrency");
        }
    }

    Client::new(addr).shutdown().unwrap();
    let report = handle.join_and_report();
    assert_eq!(int_at(&report, "ops", "autolb"), threads as i64);
    assert_eq!(int_at(&report, "ops", "iterate"), 2 * threads as i64);
    assert_eq!(int_at(&report, "ops", "zero_round"), 2 * threads as i64);
    assert_eq!(report.get("errors").and_then(Json::as_i64), Some(0), "{report:?}");
    assert_eq!(report.get("executors").and_then(Json::as_i64), Some(4), "{report:?}");
    // Every job did exactly one store lookup — a hit or a miss — so the
    // counters must account for all 5·threads submits; the coalesced
    // waiters (a subset of the misses) avoided recomputation.
    let looked_up = int_at(&report, "store", "misses")
        + int_at(&report, "store", "mem_hits")
        + int_at(&report, "store", "disk_hits");
    assert_eq!(looked_up, 5 * threads as i64, "{report:?}");
    assert!(int_at(&report, "store", "coalesced") >= 1, "{report:?}");
}

/// Jobs accepted before a shutdown request must all be served — the
/// pool drains the queue, and no accepted job is refused or dropped.
#[test]
fn graceful_shutdown_drains_every_accepted_job() {
    let jobs: Vec<OpRequest> = vec![
        OpRequest::sweep(3, 8).unwrap(),
        mis_iterate(3),
        mis_iterate(4),
        OpRequest::auto_ub("M M M;P O O", "M [P O];O O").unwrap(),
        OpRequest::zero_round("O I I", "[O I] I").unwrap(),
        OpRequest::iterate("O I I", "[O I] I").unwrap(),
    ];
    let references: Vec<String> = jobs.iter().map(local).collect();

    let config = ServerConfig { executors: 4, ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr().to_string();

    let barrier = Arc::new(Barrier::new(jobs.len() + 1));
    let clients: Vec<_> = jobs
        .iter()
        .cloned()
        .map(|op| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                Client::new(addr).submit(&op, None).expect("accepted job lost").result
            })
        })
        .collect();

    // Release the clients, give their submits a moment to land in the
    // queue (more jobs than executors, so a backlog exists), then pull
    // the plug mid-flight.
    barrier.wait();
    std::thread::sleep(std::time::Duration::from_millis(200));
    Client::new(addr).shutdown().unwrap();

    for (client, reference) in clients.into_iter().zip(&references) {
        let got = client.join().expect("client thread panicked");
        assert_eq!(&got, reference, "a drained job must still serve local bytes");
    }
    let report = handle.join_and_report();
    assert_eq!(report.get("errors").and_then(Json::as_i64), Some(0), "{report:?}");
    assert_eq!(int_at(&report, "store", "stores"), jobs.len() as i64, "{report:?}");
}

/// A `/metrics` scraper racing live traffic: every scrape must be
/// well-formed Prometheus text exposition (no torn lines, no duplicate
/// series, TYPE before sample), and `relim_requests_total` must be
/// monotone across scrapes — the exposition is a consistent read of
/// live counters, not a locked snapshot, but counters only go up.
#[test]
fn metrics_scrapes_stay_valid_and_monotone_under_live_traffic() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let config = ServerConfig { executors: 4, ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr().to_string();

    let done = Arc::new(AtomicUsize::new(0));
    let traffic: Vec<_> = (0..4usize)
        .map(|t| {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for i in 0..6 {
                    let op = mis_iterate((i + t) % 3 + 1);
                    Client::new(addr.clone()).submit(&op, None).expect("traffic submit");
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();

    let requests_total = |text: &str| -> i64 {
        text.lines()
            .find_map(|l| l.strip_prefix("relim_requests_total "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("scrape missing relim_requests_total:\n{text}"))
    };
    let scraper = Client::new(addr.clone());
    let mut last = -1i64;
    let mut scrapes = 0usize;
    while done.load(Ordering::SeqCst) < 4 || scrapes == 0 {
        let text = scraper.metrics().expect("scrape during traffic");
        let problems = relim_service::metrics::exposition_problems(&text);
        assert!(problems.is_empty(), "mid-traffic scrape is malformed: {problems:?}\n{text}");
        let now = requests_total(&text);
        assert!(now >= last, "relim_requests_total went backwards: {last} -> {now}");
        last = now;
        scrapes += 1;
    }
    for t in traffic {
        t.join().expect("traffic thread panicked");
    }
    // The settled scrape accounts for all 24 submits (plus the scrapes
    // themselves, which are requests too).
    let text = scraper.metrics().unwrap();
    assert!(relim_service::metrics::exposition_problems(&text).is_empty(), "{text}");
    assert!(requests_total(&text) >= 24 + scrapes as i64, "{text}");
    // The latency histograms the traffic filled derive a well-formed
    // Prometheus family (the validator above already checked cumulative
    // `le` order, `+Inf` and `_count` agreement on every live scrape).
    assert!(text.contains("# TYPE relim_request_latency_ns histogram"), "{text}");
    assert!(text.contains("relim_request_latency_ns_bucket{op=\"iterate\","), "{text}");
    assert!(
        text.contains("relim_request_latency_ns_count{op=\"iterate\",outcome=\"computed\"}"),
        "{text}"
    );
    // The timeline's window accounting is scrapeable alongside it.
    assert!(text.contains("relim_timeline_dropped "), "{text}");
    assert!(text.contains("relim_timeline_window "), "{text}");

    Client::new(addr).shutdown().unwrap();
    handle.join();
}

/// An aged-promoted bulk job must log its full lifecycle to the
/// timeline in order: enqueue, promote, start, finish. The promotion
/// window is made by parking a slow job on a width-1 pool and stacking
/// the queue behind it; scheduling noise can close that window, so the
/// scenario retries on a fresh daemon until a promotion is observed.
#[test]
fn a_promoted_bulk_job_logs_ordered_timeline_events() {
    let bulk_op = OpRequest::zero_round(NODE, EDGE).unwrap();
    let bulk_digest = bulk_op.digest().unwrap();
    let deadline = std::time::Duration::from_secs(30);

    for _attempt in 0..5 {
        let config = ServerConfig { executors: 1, aging_limit: 1, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let addr = handle.local_addr().to_string();
        let client = Client::new(addr.clone());

        let submit_thread = |op: OpRequest, class: Class| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                Client::new(addr).submit(&op, Some(class)).expect("scenario submit");
            })
        };
        let wait_until = |cond: &dyn Fn() -> bool| {
            let start = std::time::Instant::now();
            while !cond() && start.elapsed() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        };

        // Park a sweep on the only executor, and wait until it has
        // actually been popped (its `start` event is on the timeline).
        let holder = submit_thread(OpRequest::sweep(3, 8).unwrap(), Class::Interactive);
        wait_until(&|| {
            let (timeline, _) = client.timeline().expect("timeline poll");
            timeline.get("events").and_then(Json::as_arr).is_some_and(|events| {
                events.iter().any(|e| e.get("event").and_then(Json::as_str) == Some("start"))
            })
        });

        // Stack the queue behind it: the bulk job first, then two
        // interactives that would each bypass it. With aging_limit 1
        // the first bypass promotes the bulk job past the second.
        let pending = |n: i64| {
            let client = client.clone();
            move || {
                let status = client.status().expect("status poll");
                int_at(&status, "queue", "pending") >= n
            }
        };
        let bulk = submit_thread(bulk_op.clone(), Class::Bulk);
        wait_until(&pending(1));
        let i1 = submit_thread(mis_iterate(1), Class::Interactive);
        wait_until(&pending(2));
        let i2 = submit_thread(mis_iterate(2), Class::Interactive);

        for t in [holder, bulk, i1, i2] {
            t.join().expect("scenario thread panicked");
        }
        let status = client.status().unwrap();
        let promoted = int_at(&status, "queue", "aged_promotions") > 0;
        let (timeline, gantt) = client.timeline().unwrap();
        client.shutdown().unwrap();
        handle.join();
        if !promoted {
            continue; // the sweep finished before the stack built up
        }

        let events = timeline.get("events").and_then(Json::as_arr).expect("events array");
        let kinds: Vec<&str> = events
            .iter()
            .filter(|e| e.get("digest").and_then(Json::as_str) == Some(bulk_digest.as_str()))
            .filter_map(|e| e.get("event").and_then(Json::as_str))
            .collect();
        assert_eq!(
            kinds,
            ["enqueue", "promote", "start", "finish"],
            "bulk lifecycle out of order; gantt:\n{gantt}"
        );
        return;
    }
    panic!("no promotion observed in 5 attempts — the promotion window never opened");
}

/// The queue-aging adversary at pool width 4: bulk sweeps submitted
/// under interactive flood pressure (the wire analogue of the
/// `starvation_freedom_under_adversarial_interactive_pressure` property
/// on `JobQueue`). Everything completes with local bytes — the policy
/// plus the pool starve neither class.
#[test]
fn bulk_jobs_survive_adversarial_interactive_pressure() {
    let bulk_ops: Vec<OpRequest> =
        vec![OpRequest::sweep(3, 8).unwrap(), OpRequest::sweep(3, 6).unwrap()];
    let interactive_ops: Vec<OpRequest> = (1..=6)
        .map(|steps| OpRequest::Iterate {
            node: "O I I".into(),
            edge: "[O I] I".into(),
            max_steps: steps,
            label_limit: 20,
        })
        .collect();
    let bulk_refs: Vec<String> = bulk_ops.iter().map(local).collect();
    let interactive_refs: Vec<String> = interactive_ops.iter().map(local).collect();

    let config = ServerConfig { executors: 4, aging_limit: 2, ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr().to_string();

    let barrier = Arc::new(Barrier::new(8));
    let bulk_clients: Vec<_> = bulk_ops
        .iter()
        .cloned()
        .map(|op| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                Client::new(addr).submit(&op, Some(Class::Bulk)).expect("bulk starved").result
            })
        })
        .collect();
    // Six interactive adversaries, each hammering the full distinct
    // list twice — a steady stream of higher-priority arrivals while
    // the bulk jobs wait.
    let interactive_clients: Vec<_> = (0..6usize)
        .map(|t| {
            let addr = addr.clone();
            let ops = interactive_ops.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..2 * ops.len())
                    .map(|i| {
                        let idx = (i + t) % ops.len();
                        let got = Client::new(addr.clone())
                            .submit(&ops[idx], Some(Class::Interactive))
                            .expect("interactive submit")
                            .result;
                        (idx, got)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for (client, reference) in bulk_clients.into_iter().zip(&bulk_refs) {
        assert_eq!(&client.join().expect("bulk client panicked"), reference);
    }
    for client in interactive_clients {
        for (idx, got) in client.join().expect("interactive client panicked") {
            assert_eq!(got, interactive_refs[idx], "interactive op #{idx} drifted");
        }
    }

    Client::new(addr).shutdown().unwrap();
    let report = handle.join_and_report();
    assert_eq!(report.get("errors").and_then(Json::as_i64), Some(0), "{report:?}");
    assert_eq!(int_at(&report, "ops", "sweep"), 2);
    assert_eq!(int_at(&report, "ops", "iterate"), 6 * 12);
}
