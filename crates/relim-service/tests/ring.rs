//! Property tests for the fleet's consistent-hash ring — the three
//! guarantees the zero-coordination routing table rests on:
//!
//! * **order independence**: every permutation of one peer set builds
//!   the same ring and assigns every address the same owner;
//! * **stability under growth**: adding one member moves addresses
//!   only *to* the new member, and only a bounded fraction of them;
//! * **totality**: an empty ring owns nothing, a singleton owns
//!   everything, and no input panics.
//!
//! The vendored proptest subset has no collection/shuffle strategies,
//! so peer sets and permutations are derived from generated integers
//! via an in-test splitmix PRNG — deterministic per seed, exhaustive in
//! spirit.

use proptest::prelude::*;
use relim_service::ring::Ring;

/// A tiny deterministic PRNG (splitmix64) for deriving shuffles from a
/// proptest-generated seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `n` distinct peer addresses in the shape the fleet uses.
fn peers(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{}:{}", i + 1, 7400 + i)).collect()
}

/// A seeded Fisher–Yates permutation of `items`.
fn shuffled(items: &[String], seed: u64) -> Vec<String> {
    let mut out = items.to_vec();
    let mut rng = Rng(seed);
    for i in (1..out.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Content addresses shaped like the store's (32 hex chars).
fn digests(count: usize, seed: u64) -> Vec<String> {
    let mut rng = Rng(seed ^ 0x00d1_ce57_u64);
    (0..count).map(|_| format!("{:016x}{:016x}", rng.next(), rng.next())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any permutation (and duplication) of the same peer set assigns
    /// every address the same owner — the property that lets each
    /// daemon build its ring from its own `--peers` ordering without a
    /// membership protocol.
    #[test]
    fn assignment_is_independent_of_peer_list_order(
        n in 1usize..=9,
        shuffle_seed in 0u64..u64::MAX,
        digest_seed in 0u64..u64::MAX,
    ) {
        let members = peers(n);
        let reference = Ring::new(members.clone());
        let permuted = shuffled(&members, shuffle_seed);
        // Duplicating an entry must not change the ring either.
        let mut with_dup = permuted.clone();
        with_dup.push(permuted[0].clone());
        let ring_a = Ring::new(permuted);
        let ring_b = Ring::new(with_dup);
        prop_assert_eq!(reference.members(), ring_a.members());
        for digest in digests(64, digest_seed) {
            let owner = reference.owner_of(&digest);
            prop_assert_eq!(owner, ring_a.owner_of(&digest));
            prop_assert_eq!(owner, ring_b.owner_of(&digest));
        }
    }

    /// Adding one member is *minimally disruptive*: every address
    /// keeps its owner or moves to the newcomer (never between old
    /// members), and the moved fraction stays loosely near `1/(n+1)`.
    #[test]
    fn adding_one_peer_moves_only_a_fraction_and_only_to_it(
        n in 1usize..=8,
        digest_seed in 0u64..u64::MAX,
    ) {
        let before = Ring::new(peers(n));
        let mut grown = peers(n);
        let newcomer = "10.0.1.1:7999".to_owned();
        grown.push(newcomer.clone());
        let after = Ring::new(grown);
        let sample = digests(256, digest_seed);
        let mut moved = 0usize;
        for digest in &sample {
            let old = before.owner_of(digest).expect("non-empty ring");
            let new = after.owner_of(digest).expect("non-empty ring");
            if old != new {
                prop_assert_eq!(new, newcomer.as_str(),
                    "an address moved between pre-existing members");
                moved += 1;
            }
        }
        // Expected share is sample/(n+1); allow a generous 3x band
        // plus slack so tiny samples and small n never flake. The
        // point is "about 1/N", not a chi-squared test.
        let expected = sample.len() / (n + 1);
        prop_assert!(moved <= expected * 3 + 16,
            "moved {}/{} with {} members (expected ≈{})", moved, sample.len(), n + 1, expected);
    }

    /// Totality: no digest panics an empty or singleton ring — the
    /// empty ring owns nothing, the singleton owns everything.
    #[test]
    fn empty_and_singleton_rings_are_total(digest_seed in 0u64..u64::MAX) {
        let empty = Ring::new(Vec::<String>::new());
        let single = Ring::new(["lone:1"]);
        for digest in digests(32, digest_seed) {
            prop_assert_eq!(empty.owner_of(&digest), None);
            prop_assert_eq!(single.owner_of(&digest), Some("lone:1"));
        }
        // Degenerate inputs, same totality.
        for weird in ["", "\u{0}", "not hex at all", "🦀"] {
            prop_assert_eq!(empty.owner_of(weird), None);
            prop_assert_eq!(single.owner_of(weird), Some("lone:1"));
        }
    }
}
