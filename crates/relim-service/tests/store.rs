//! Integration tests for the content-addressed result store:
//!
//! * a property test that round-trips entries (serialize → disk →
//!   deserialize → **byte-identical** result) under concurrent writers
//!   racing on overlapping addresses;
//! * crash-shaped corruption recovery (truncated files, garbage bytes,
//!   digest/key mismatches) — corrupt entries read as misses, are
//!   counted, and are healed by the next store of that address.

use proptest::prelude::*;
use relim_service::store::{digest_of, ResultStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per test case (cleaned by the caller).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "relim-store-it-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic nasty payloads: newlines, quotes, backslashes, control
/// bytes, unicode — everything the JSON escaping must round-trip.
fn payload(seed: u64, i: u64) -> (String, String) {
    let key = format!("relim-store/1\nengine=v1\nop=test\nseed={seed}\nitem={i}\n");
    let result = format!(
        "result {i} of seed {seed}\nline \"two\" with \\backslash\\\n\ttab and ü≥Ω\n\u{1}control\nN (degree 3):\nM M M\n"
    );
    (key, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Several writer threads race on an overlapping set of addresses
    /// (same key ⇒ same bytes, the store contract); every entry must
    /// read back byte-identically both from the live store and from a
    /// fresh store reopened over the same directory.
    #[test]
    fn concurrent_writers_round_trip_byte_identically(
        seed in 0u64..u64::MAX,
        writers in 2usize..=5,
    ) {
        let dir = scratch("writers");
        let store = Arc::new(ResultStore::persistent(&dir, 6).unwrap());
        let items: Vec<(String, String, String)> = (0..10u64)
            .map(|i| {
                let (key, result) = payload(seed, i);
                (digest_of(&key), key, result)
            })
            .collect();

        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let store = Arc::clone(&store);
                let mut mine = items.clone();
                let len = mine.len();
                mine.rotate_left(w % len); // different write orders
                std::thread::spawn(move || {
                    for (digest, key, result) in &mine {
                        store.put(digest, key, result).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer panicked");
        }

        // Live store: byte-identical reads for every entry (capacity 6 <
        // 10 entries, so some go through the disk fallback).
        for (digest, key, result) in &items {
            let got = store.get(digest, key);
            prop_assert_eq!(got.as_deref(), Some(result.as_str()));
        }
        let stats = store.stats();
        prop_assert!(stats.disk_hits > 0, "eviction must have forced disk reads: {:?}", stats);
        prop_assert_eq!(stats.corrupt_skipped, 0);

        // Serialize → disk → deserialize: a fresh store over the same
        // directory serves the same bytes.
        let reopened = ResultStore::persistent(&dir, 64).unwrap();
        for (digest, key, result) in &items {
            let got = reopened.get(digest, key);
            prop_assert_eq!(got.as_deref(), Some(result.as_str()));
        }
        prop_assert_eq!(reopened.stats().corrupt_skipped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The same writer race on a store whose disk layer is squeezed by a
    /// byte budget, with a reader thread probing throughout: GC must
    /// actually evict, a concurrent read must only ever see the full
    /// correct bytes or a clean miss (never a torn or foreign result),
    /// re-putting a collected address must re-persist it, and the
    /// directory must stay parseable.
    #[test]
    fn concurrent_writers_with_gc_pressure_never_corrupt(
        seed in 0u64..u64::MAX,
        writers in 2usize..=4,
    ) {
        let dir = scratch("gc-writers");
        // ~10 entries of a few hundred bytes each against a 1200-byte
        // budget: holds a handful of entries, so puts keep collecting.
        let store = Arc::new(ResultStore::persistent_with_budget(&dir, 6, Some(1200)).unwrap());
        let items: Vec<(String, String, String)> = (0..10u64)
            .map(|i| {
                let (key, result) = payload(seed, i);
                (digest_of(&key), key, result)
            })
            .collect();

        let stop = Arc::new(AtomicU64::new(0));
        let reader = {
            let store = Arc::clone(&store);
            let items = items.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    for (digest, key, result) in &items {
                        if let Some(got) = store.get(digest, key) {
                            assert_eq!(&got, result, "a read raced GC into wrong bytes");
                        }
                    }
                }
            })
        };
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let store = Arc::clone(&store);
                let mut mine = items.clone();
                let len = mine.len();
                mine.rotate_left(w % len);
                std::thread::spawn(move || {
                    for (digest, key, result) in &mine {
                        store.put(digest, key, result).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer panicked");
        }
        stop.store(1, Ordering::Relaxed);
        reader.join().expect("reader observed corruption");

        let stats = store.stats();
        prop_assert!(stats.gc_evictions > 0, "over-budget puts must collect: {:?}", stats);
        prop_assert_eq!(stats.corrupt_skipped, 0);
        prop_assert!(stats.disk_bytes <= 1200, "budget violated at rest: {:?}", stats);

        // A collected address is a miss, never garbage — and a re-put
        // re-persists it (the protected-digest rule keeps the entry just
        // written alive through its own GC pass).
        for (digest, key, result) in &items {
            store.put(digest, key, result).unwrap();
            let got = store.get(digest, key);
            prop_assert_eq!(got.as_deref(), Some(result.as_str()));
        }

        // Whatever survived on disk parses cleanly in a fresh store.
        let reopened = ResultStore::persistent(&dir, 64).unwrap();
        prop_assert_eq!(reopened.stats().corrupt_skipped, 0);
        for (digest, key, result) in &items {
            if let Some(got) = reopened.get(digest, key) {
                prop_assert_eq!(&got, result);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn corrupted_files_are_recovered_not_fatal() {
    let dir = scratch("corrupt");
    let items: Vec<(String, String, String)> = (0..4u64)
        .map(|i| {
            let (key, result) = payload(7, i);
            (digest_of(&key), key, result)
        })
        .collect();
    {
        let store = ResultStore::persistent(&dir, 8).unwrap();
        for (digest, key, result) in &items {
            store.put(digest, key, result).unwrap();
        }
    }

    // Crash-shaped damage: truncate one entry mid-file, overwrite another
    // with garbage, leave a stray temp-looking file behind.
    let victim = dir.join(format!("{}.json", items[0].0));
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &text[..text.len() / 2]).unwrap();
    std::fs::write(dir.join(format!("{}.json", items[1].0)), b"\x00\xffgarbage").unwrap();
    std::fs::write(dir.join(".tmp-999-0-deadbeef"), "half a write").unwrap();

    let store = ResultStore::persistent(&dir, 8).unwrap();
    assert_eq!(store.stats().corrupt_skipped, 2, "{:?}", store.stats());
    // Undamaged entries read back byte-identically.
    for (digest, key, result) in &items[2..] {
        assert_eq!(store.get(digest, key).as_deref(), Some(result.as_str()));
    }
    // Damaged entries are misses...
    assert_eq!(store.get(&items[0].0, &items[0].1), None);
    assert_eq!(store.get(&items[1].0, &items[1].1), None);
    // ...healed by the next store of the same address.
    store.put(&items[0].0, &items[0].1, &items[0].2).unwrap();
    store.put(&items[1].0, &items[1].1, &items[1].2).unwrap();
    let healed = ResultStore::persistent(&dir, 8).unwrap();
    for (digest, key, result) in &items {
        assert_eq!(healed.get(digest, key).as_deref(), Some(result.as_str()));
    }
    assert_eq!(healed.stats().corrupt_skipped, 0, "the heal rewrote valid files");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_is_bounded_by_capacity_but_loses_nothing() {
    let dir = scratch("bounded");
    let items: Vec<(String, String, String)> = (0..9u64)
        .map(|i| {
            let (key, result) = payload(11, i);
            (digest_of(&key), key, result)
        })
        .collect();
    {
        let store = ResultStore::persistent(&dir, 16).unwrap();
        for (digest, key, result) in &items {
            store.put(digest, key, result).unwrap();
        }
    }
    // Reopen with a tiny memory bound: only `capacity` entries are
    // preloaded, but every entry stays servable through the disk layer.
    let store = ResultStore::persistent(&dir, 3).unwrap();
    assert_eq!(store.stats().mem_entries, 3);
    for (digest, key, result) in &items {
        assert_eq!(store.get(digest, key).as_deref(), Some(result.as_str()));
    }
    let stats = store.stats();
    assert_eq!(stats.mem_hits + stats.disk_hits, 9, "{stats:?}");
    assert!(stats.disk_hits >= 6, "{stats:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
