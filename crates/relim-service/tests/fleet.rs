//! Fleet integration tests: three real daemons wired as peers of each
//! other, exercising the full read-through path over TCP — remote hit,
//! owner death with breaker degradation, the `fetch`/`ping` wire ops,
//! torn-line hardening, and the peer counters' scrape surface.
//!
//! The determinism contract under test everywhere: a byte served via a
//! peer is identical to the byte a local in-process run produces, and a
//! fleet with a dead owner serves the same bytes as a fleet with none.

use relim_core::Engine;
use relim_json::Json;
use relim_service::client::Client;
use relim_service::ops::OpRequest;
use relim_service::ring::Ring;
use relim_service::server::{Server, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Reserves `n` distinct loopback addresses by binding them all at
/// once, then releasing them. Fleet members must know each other's
/// addresses *before* binding, so ephemeral `:0` ports cannot be used
/// directly; the bind-all-then-drop window is negligible in practice.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback")).collect();
    listeners.iter().map(|l| l.local_addr().expect("bound").to_string()).collect()
}

/// A small fleet daemon on a fixed address: single-threaded engine and
/// executor (bytes never depend on either), fast peer timeouts so the
/// dead-owner path stays quick.
fn spawn_member(addr: &str, peers: Vec<String>) -> ServerHandle {
    let config = ServerConfig {
        threads: 1,
        executors: 1,
        peers,
        peer_timeout_ms: 500,
        ..ServerConfig::default()
    };
    Server::spawn(addr, config).expect("spawn fleet member")
}

/// The integer at `path` (dot-separated) inside a counters object.
fn counter(counters: &Json, path: &str) -> i64 {
    let mut node = counters;
    for part in path.split('.') {
        node = node.get(part).unwrap_or_else(|| panic!("counters missing `{path}`"));
    }
    node.as_i64().unwrap_or_else(|| panic!("`{path}` is not an integer"))
}

#[test]
fn fleet_read_through_and_dead_owner_degradation_serve_identical_bytes() {
    let addrs = reserve_addrs(3);
    let peers_of =
        |me: &str| -> Vec<String> { addrs.iter().filter(|a| *a != me).cloned().collect() };
    let handles: Vec<ServerHandle> =
        addrs.iter().map(|addr| spawn_member(addr, peers_of(addr))).collect();
    let clients: Vec<Client> = addrs.iter().map(Client::new).collect();

    // The reference bytes: the same op run in-process, no daemon at all.
    let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
    let digest = op.digest().unwrap();
    let expected = op.execute(&Engine::builder().threads(1).build()).unwrap();

    // Every member builds this same ring; use it to cast the roles.
    let ring = Ring::new(addrs.clone());
    let owner = ring.owner_of(&digest).unwrap().to_owned();
    let owner_at = addrs.iter().position(|a| *a == owner).unwrap();
    let (first_nonowner, second_nonowner) = {
        let mut others = (0..3).filter(|i| *i != owner_at);
        (others.next().unwrap(), others.next().unwrap())
    };

    // Compute on the owner, then submit to a non-owner: the non-owner
    // reads the bytes through the owner and serves them as cached.
    let computed = clients[owner_at].submit(&op, None).unwrap();
    assert!(!computed.cached);
    assert_eq!(computed.result, expected, "owner serves the in-process bytes");
    let relayed = clients[first_nonowner].submit(&op, None).unwrap();
    assert!(relayed.cached, "a verified remote fetch is served as a cache hit");
    assert_eq!(relayed.result, expected, "peer-served bytes equal the in-process bytes");
    let status = clients[first_nonowner].status().unwrap();
    assert_eq!(counter(&status, "peer.fetch_ok"), 1);
    assert_eq!(counter(&status, "peer.remote_hits"), 1);
    assert_eq!(counter(&status, "peer.breaker_open"), 0);

    // Satellite: the per-peer counters surface through the mechanical
    // Prometheus derivation, aggregate and per-address.
    let text = clients[first_nonowner].metrics().unwrap();
    assert_eq!(relim_service::metrics::exposition_problems(&text), Vec::<String>::new(), "{text}");
    for name in ["relim_peer_fetch_ok 1", "relim_peer_fetch_err", "relim_peer_fetch_timeout"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    let owner_metric = format!("relim_peers_{}_fetch_ok 1", owner.replace(['.', ':'], "_"));
    assert!(text.contains(&owner_metric), "missing {owner_metric} in:\n{text}");

    // Kill the owner. The second non-owner never saw the op, so its
    // cold lookup routes to the corpse: every attempt fails, the
    // breaker trips, and the job is computed locally — same bytes.
    clients[owner_at].shutdown().unwrap();
    let mut handles: Vec<Option<ServerHandle>> = handles.into_iter().map(Some).collect();
    handles[owner_at].take().unwrap().join();
    let degraded = clients[second_nonowner].submit(&op, None).unwrap();
    assert!(!degraded.cached, "a dead owner degrades to a local compute");
    assert_eq!(degraded.result, expected, "degraded bytes equal the in-process bytes");
    let status = clients[second_nonowner].status().unwrap();
    assert_eq!(counter(&status, "peer.degraded_local"), 1);
    assert!(counter(&status, "peer.breaker_open") >= 1, "the breaker must have tripped");
    assert!(
        counter(&status, "peer.fetch_err") + counter(&status, "peer.fetch_timeout") >= 1,
        "the failed attempts must be counted"
    );
    let text = clients[second_nonowner].metrics().unwrap();
    assert!(text.contains("relim_peer_breaker_open 1"), "{text}");

    for (i, handle) in handles.into_iter().enumerate() {
        if let Some(handle) = handle {
            clients[i].shutdown().unwrap();
            handle.join();
        }
    }
}

#[test]
fn torn_peer_writes_are_counted_and_never_parsed() {
    let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr().to_string();

    // A peer dies mid-write: a JSON prefix with no line terminator. The
    // fragment spells the start of a shutdown request on purpose — a
    // parsed torn line would be maximally destructive here.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"{\"op\": \"shutd").unwrap();
    stream.flush().unwrap();
    drop(stream);

    // The disconnect is asynchronous; poll the counter in.
    let mut torn = 0;
    for _ in 0..200 {
        torn = counter(&handle.counters(), "torn_lines");
        if torn == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(torn, 1, "a torn line is counted exactly once");
    let counters = handle.counters();
    assert_eq!(counter(&counters, "errors"), 0, "a torn line is not a request error");
    assert_eq!(counter(&counters, "requests_total"), 0, "a torn line is not a request");

    // The daemon survived and still serves — and in particular did NOT
    // act on the torn shutdown prefix.
    let client = Client::new(addr);
    let (uptime_ms, _) = client.ping().unwrap();
    let _ = uptime_ms;
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn ping_and_fetch_round_trips() {
    let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(handle.local_addr().to_string());

    let (_uptime, entries) = client.ping().unwrap();
    assert_eq!(entries, 0, "fresh daemon, empty store");

    let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
    let reply = client.submit(&op, None).unwrap();
    let (_uptime, entries) = client.ping().unwrap();
    assert_eq!(entries, 1, "the computed entry is visible to ping");

    // A fetch returns the stored key + bytes; an unknown digest is a
    // clean miss (`found: false`), not an error.
    let (key, result) = client.fetch(&reply.digest).unwrap().expect("stored entry");
    assert_eq!(result, reply.result);
    assert_eq!(relim_service::store::digest_of(&key), reply.digest);
    assert_eq!(client.fetch("00000000000000000000000000000000").unwrap(), None);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn fleetless_daemon_exposes_the_same_peer_scrape_surface() {
    // No `--peers`: the aggregate peer counters still scrape (as
    // zeros), so dashboards need no reconfiguration when a daemon
    // joins a fleet.
    let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(handle.local_addr().to_string());
    let text = client.metrics().unwrap();
    for name in [
        "relim_peer_fetch_ok 0",
        "relim_peer_fetch_err 0",
        "relim_peer_fetch_timeout 0",
        "relim_peer_breaker_open 0",
        "relim_peer_probe_ok 0",
        "relim_peer_probe_err 0",
        "relim_peer_remote_hits 0",
        "relim_peer_degraded_local 0",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    client.shutdown().unwrap();
    handle.join();
}
