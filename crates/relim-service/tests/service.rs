//! End-to-end daemon tests: the determinism contract (served bytes ==
//! in-process bytes at engine widths 1/2/8), cold/warm store behaviour,
//! and warm restarts from the persistent store.

use relim_core::Engine;
use relim_json::Json;
use relim_service::client::Client;
use relim_service::ops::OpRequest;
use relim_service::queue::Class;
use relim_service::server::{Server, ServerConfig};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("relim-service-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mis_autolb() -> OpRequest {
    OpRequest::AutoLb {
        node: "M M M\nP O O".into(),
        edge: "M [P O]\nO O".into(),
        max_steps: 3,
        labels: 6,
        criterion: relim_service::ops::Criterion::Gadget,
    }
}

/// The acceptance contract: a served result is byte-identical to the
/// same query run in-process, at engine widths 1, 2 and 8.
#[test]
fn served_bytes_equal_in_process_bytes_at_widths_1_2_8() {
    let op = mis_autolb();
    let reference = op.execute(&Engine::sequential()).unwrap();
    for threads in [1usize, 2, 8] {
        let config = ServerConfig { threads, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let client = Client::new(handle.local_addr().to_string());

        let served = client.submit(&op, None).unwrap();
        let in_process = op.execute(&Engine::builder().threads(threads).build()).unwrap();
        assert_eq!(served.result, in_process, "threads = {threads}");
        assert_eq!(served.result, reference, "threads = {threads} vs sequential");
        assert!(!served.cached);

        // Warm ask: a store hit with the exact same bytes.
        let warm = client.submit(&op, None).unwrap();
        assert!(warm.cached, "threads = {threads}");
        assert_eq!(warm.result, reference, "threads = {threads} warm");

        client.shutdown().unwrap();
        handle.join();
    }
}

/// A restarted daemon over the same store directory serves the cached
/// certificate instantly — the persistence acceptance criterion.
#[test]
fn restart_serves_from_the_persistent_store() {
    let dir = scratch("restart");
    let op = mis_autolb();
    let cold = {
        let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let cold = client.submit(&op, None).unwrap();
        assert!(!cold.cached);
        client.shutdown().unwrap();
        handle.join();
        cold
    };

    let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let client = Client::new(handle.local_addr().to_string());
    let warm = client.submit(&op, None).unwrap();
    assert!(warm.cached, "the restarted daemon must hit its persistent store");
    assert_eq!(warm.result, cold.result, "restart must not change a byte");
    assert_eq!(warm.digest, cold.digest);
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Bulk sweeps flow through the same store and serve byte-identically;
/// the class override is accepted on the wire.
#[test]
fn sweep_jobs_cache_and_respect_class_override() {
    let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(handle.local_addr().to_string());
    let op = OpRequest::sweep(3, 8).unwrap();
    let first = client.submit(&op, None).unwrap();
    assert!(first.result.contains("VERIFIED"), "{}", first.result);
    assert!(!first.result.contains("threads"), "served sweep bytes are width-free");
    let second = client.submit(&op, Some(Class::Interactive)).unwrap();
    assert!(second.cached, "class override must not split the cache");
    assert_eq!(first.result, second.result);

    let counters = client.status().unwrap();
    let ops = counters.get("ops").expect("ops counters");
    assert_eq!(ops.get("sweep").and_then(Json::as_i64), Some(2));
    let queue = counters.get("queue").expect("queue counters");
    assert!(queue.get("max_depth").and_then(Json::as_i64).unwrap() >= 1);
    client.shutdown().unwrap();
    handle.join();
}

/// Distinct queries address distinct content; a parameter change is a
/// different certificate, never a stale hit.
#[test]
fn parameter_changes_never_serve_stale_results() {
    let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(handle.local_addr().to_string());
    let shallow = OpRequest::Iterate {
        node: "M M M\nP O O".into(),
        edge: "M [P O]\nO O".into(),
        max_steps: 1,
        label_limit: 20,
    };
    let deeper = OpRequest::Iterate {
        node: "M M M\nP O O".into(),
        edge: "M [P O]\nO O".into(),
        max_steps: 2,
        label_limit: 20,
    };
    let a = client.submit(&shallow, None).unwrap();
    let b = client.submit(&deeper, None).unwrap();
    assert!(!b.cached, "different max_steps is different content");
    assert_ne!(a.digest, b.digest);
    assert_ne!(a.result, b.result);
    client.shutdown().unwrap();
    handle.join();
}
