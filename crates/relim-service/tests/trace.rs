//! Distributed-tracing integration: three tracing daemons wired as a
//! fleet, one trace id following a request across two of them.
//!
//! The scenario is the fleet's read-through path: a non-owner receives
//! a traced submit, fetches the bytes from the owner, and the owner
//! serves the fetch — so the requester records the `peer-fetch` attempt
//! span and the owner records the `fetch-serve` span, both under the
//! same propagated trace id. Merging the two per-daemon dumps yields
//! one cross-daemon tree; the Chrome export of the same merge is
//! Perfetto-loadable. And the determinism contract holds throughout:
//! tracing never changes a served byte.

use relim_core::Engine;
use relim_service::client::Client;
use relim_service::ops::OpRequest;
use relim_service::ring::Ring;
use relim_service::server::{Server, ServerConfig, ServerHandle};
use relim_service::trace::{self, TraceContext, TraceDump};
use std::net::TcpListener;

/// Reserves `n` distinct loopback addresses by binding them all at
/// once, then releasing them (fleet members must know each other's
/// addresses before binding).
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback")).collect();
    listeners.iter().map(|l| l.local_addr().expect("bound").to_string()).collect()
}

fn spawn_tracing_member(addr: &str, peers: Vec<String>) -> ServerHandle {
    let config = ServerConfig {
        threads: 1,
        executors: 1,
        peers,
        peer_timeout_ms: 500,
        trace: true,
        ..ServerConfig::default()
    };
    Server::spawn(addr, config).expect("spawn fleet member")
}

#[test]
fn one_trace_id_spans_two_daemons_and_merges_into_one_tree() {
    let addrs = reserve_addrs(3);
    let peers_of =
        |me: &str| -> Vec<String> { addrs.iter().filter(|a| *a != me).cloned().collect() };
    let handles: Vec<ServerHandle> =
        addrs.iter().map(|addr| spawn_tracing_member(addr, peers_of(addr))).collect();
    let clients: Vec<Client> = addrs.iter().map(Client::new).collect();

    let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
    let digest = op.digest().unwrap();
    let expected = op.execute(&Engine::builder().threads(1).build()).unwrap();

    let ring = Ring::new(addrs.clone());
    let owner = ring.owner_of(&digest).unwrap().to_owned();
    let owner_at = addrs.iter().position(|a| *a == owner).unwrap();
    let requester_at = (0..3).find(|i| *i != owner_at).unwrap();

    // Warm the owner (its own trace), then send the traced request to a
    // non-owner: its cold claim reads through the owner.
    let warm_id = trace::mint_trace_id();
    let warm = clients[owner_at]
        .submit_traced(&op, None, Some(&TraceContext { trace_id: warm_id, parent: None }))
        .unwrap();
    assert!(!warm.cached);
    assert_eq!(warm.result, expected);

    let trace_id = trace::mint_trace_id();
    assert_ne!(trace_id, warm_id, "minted ids are distinct");
    let relayed = clients[requester_at]
        .submit_traced(&op, None, Some(&TraceContext { trace_id, parent: None }))
        .unwrap();
    assert!(relayed.cached, "a verified remote fetch is served as a cache hit");
    assert_eq!(relayed.result, expected, "tracing never changes served bytes");

    // Each involved daemon holds its half of the trace.
    let requester_dump = clients[requester_at].trace_dump(Some(trace_id)).unwrap();
    let owner_dump = clients[owner_at].trace_dump(Some(trace_id)).unwrap();
    let bystander_at = (0..3).find(|i| *i != owner_at && *i != requester_at).unwrap();
    let bystander_dump = clients[bystander_at].trace_dump(Some(trace_id)).unwrap();
    assert!(bystander_dump.spans.is_empty(), "the third daemon never saw this trace");

    let fetch_attempt = requester_dump
        .spans
        .iter()
        .find(|s| s.name == "peer-fetch")
        .expect("requester records the peer-fetch attempt");
    assert!(
        fetch_attempt.attrs.contains(&("result".to_owned(), "ok".to_owned())),
        "{fetch_attempt:?}"
    );
    let serve = owner_dump
        .spans
        .iter()
        .find(|s| s.name == "fetch-serve")
        .expect("owner records the serving half");
    assert_eq!(serve.trace_id, trace_id, "the trace id crossed the wire");
    assert_eq!(
        serve.parent,
        Some(fetch_attempt.span_id),
        "the owner's span hangs under the requester's attempt"
    );
    assert!(serve.attrs.contains(&("found".to_owned(), "true".to_owned())), "{serve:?}");

    // The merged tree covers both daemons under one trace header.
    let dumps: Vec<TraceDump> = vec![requester_dump, owner_dump];
    let tree = trace::render_tree(&dumps);
    assert!(tree.contains(&trace::render_id(trace_id)), "{tree}");
    assert!(tree.contains("across 2 daemon(s)"), "{tree}");
    assert!(tree.contains(&addrs[requester_at]), "{tree}");
    assert!(tree.contains(&addrs[owner_at]), "{tree}");
    for name in ["request", "peer-fetch", "fetch-serve", "store-read"] {
        assert!(tree.contains(name), "missing {name} in:\n{tree}");
    }

    // The Chrome export of the same merge carries complete events and
    // a process per daemon.
    let chrome = trace::render_chrome(&dumps);
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    assert!(chrome.contains("\"ph\":\"M\""), "{chrome}");
    assert!(chrome.contains(&addrs[owner_at]), "{chrome}");
    let parsed = relim_json::Json::parse(&chrome).expect("chrome export parses as JSON");
    assert!(parsed.get("traceEvents").is_some(), "{chrome}");

    // The owner's warm-up trace stayed separate: filtering by its id
    // yields compute-side spans only, none from the relay.
    let warm_dump = clients[owner_at].trace_dump(Some(warm_id)).unwrap();
    assert!(warm_dump.spans.iter().any(|s| s.name == "compute"), "{warm_dump:?}");
    assert!(warm_dump.spans.iter().all(|s| s.trace_id == warm_id));

    for client in &clients {
        client.shutdown().unwrap();
    }
    for handle in handles {
        handle.join();
    }
}
