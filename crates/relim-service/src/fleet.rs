//! The fleet tier: remote peers as a read-through store layer.
//!
//! A daemon configured with `--peers` joins a **fleet**: the digest
//! space is partitioned by the deterministic consistent-hash ring
//! ([`crate::ring`]) over the peer addresses *plus this daemon's own*,
//! and a cold local query whose address belongs to a remote owner is
//! first **fetched** from that owner over the ordinary JSON-lines
//! protocol (`{"op": "fetch", "digest": …}`) before falling back to
//! local compute. Because results are pure functions of their canonical
//! key, a fetched byte is exactly the byte a local run would produce —
//! the fleet changes *where* work happens, never *what* is served.
//!
//! ## Trust
//!
//! A peer's answer is verified before it is believed: the returned
//! canonical key must equal the requested key byte-for-byte, and its
//! digest must re-derive to the requested address. A lying or corrupt
//! peer therefore degrades to a local compute (a counted miss), never
//! to wrong bytes — the same "verify the full key on every hit"
//! discipline the local store applies.
//!
//! ## Failure: timeouts, retries, the breaker
//!
//! Every peer call runs under a connect/read/write timeout and is
//! retried a bounded number of times with doubling backoff. Each
//! *consecutive* failure feeds the peer's **circuit breaker**; at
//! [`FleetConfig::breaker_threshold`] failures the breaker opens and
//! the peer is skipped outright — requests degrade to local compute
//! immediately (counted, so the scrape shows the degradation) instead
//! of stalling every cold query on a dead host. Recovery is **not paid
//! by live requests**: the daemon's background prober thread calls
//! [`Fleet::probe_open_breakers`], which — once
//! [`FleetConfig::breaker_cooldown`] has elapsed — probes each Open
//! peer with the same `{"op": "ping"}` the CLI's `relim ping` sends
//! (liveness probing and breaker recovery are one code path). A pong
//! closes the breaker, a failure re-arms the cooldown; both outcomes
//! are counted (`probe_ok` / `probe_err`) and scraped as
//! `relim_peer_probe_*`.
//!
//! ## Tracing
//!
//! When the requesting daemon traces (see [`crate::trace`]), each fetch
//! attempt — and each breaker rejection — is recorded as a `peer-fetch`
//! span carrying the attempt number and breaker state, and the outgoing
//! fetch line carries the trace context with that attempt's span as the
//! parent, so the owner's `fetch-serve` span links under it across the
//! wire.
//!
//! Determinism contract: a fleet with unreachable peers returns the
//! same bytes as a fleet with none, which returns the same bytes as a
//! lone daemon — only latency and the degradation counters differ.

use crate::protocol;
use crate::ring::Ring;
use crate::store::digest_of;
use crate::trace::{FetchTrace, Span, TraceContext};
use relim_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Fleet configuration carried by `ServerConfig` when `--peers` is
/// given.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The peer daemon addresses (`host:port`), *excluding* this
    /// daemon. Every fleet member must be configured with the same
    /// total member set (its peers plus itself), spelled identically —
    /// the ring is the agreement, there is no membership protocol.
    pub peers: Vec<String>,
    /// This daemon's own address as the other members spell it — its
    /// ring name.
    pub self_addr: String,
    /// Per-attempt connect/read/write timeout.
    pub timeout: Duration,
    /// Extra attempts after the first failed one.
    pub retries: u32,
    /// Base backoff between attempts (doubles per retry).
    pub backoff: Duration,
    /// Consecutive failures that open a peer's breaker. The default
    /// equals `retries + 1`, so one fully failed fetch against a dead
    /// owner trips it — the second request already degrades instantly.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects outright before the background
    /// prober is allowed to probe the peer with a ping.
    pub breaker_cooldown: Duration,
}

impl FleetConfig {
    /// The standard knobs for a fleet with the given members and
    /// per-attempt timeout: 2 retries with 50 ms doubling backoff, a
    /// breaker that trips after one fully failed fetch (3 consecutive
    /// attempt failures) and probes again after 5 s.
    pub fn new(peers: Vec<String>, self_addr: String, timeout: Duration) -> FleetConfig {
        FleetConfig {
            peers,
            self_addr,
            timeout,
            retries: 2,
            backoff: Duration::from_millis(50),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
        }
    }
}

/// The outcome of a remote fetch against an address's owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchOutcome {
    /// The owner served the entry and it verified (key and digest
    /// match). The caller writes it through to the local store.
    Hit(String),
    /// The owner answered but has nothing stored (or served an entry
    /// that failed verification — equally untrusted): compute locally.
    Miss,
    /// The owner is unreachable (breaker open, or every attempt failed
    /// or timed out): compute locally and count the degradation.
    Unavailable,
}

/// The circuit-breaker state of one peer.
enum BreakerState {
    /// Normal operation, counting consecutive failures.
    Closed {
        /// Failures since the last success.
        consecutive_failures: u32,
    },
    /// Tripped: requests are rejected without touching the network
    /// until `since` is `breaker_cooldown` old, then one probe runs.
    Open {
        /// When the breaker tripped (or last re-tripped on a failed
        /// probe).
        since: Instant,
    },
}

/// A remote-store client for one fleet peer: timeouts, bounded retries,
/// a circuit breaker, and per-peer counters.
pub struct PeerClient {
    addr: String,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    fetch_ok: AtomicU64,
    fetch_err: AtomicU64,
    fetch_timeout: AtomicU64,
    /// Cumulative closed→open transitions (the scrapeable
    /// `breaker_open` counter).
    breaker_opened: AtomicU64,
    /// Background probes that ponged (and closed the breaker).
    probe_ok: AtomicU64,
    /// Background probes that failed (and re-armed the cooldown).
    probe_err: AtomicU64,
    breaker: Mutex<BreakerState>,
}

impl std::fmt::Debug for PeerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerClient").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl PeerClient {
    fn new(addr: String, config: &FleetConfig) -> PeerClient {
        PeerClient {
            addr,
            timeout: config.timeout,
            retries: config.retries,
            backoff: config.backoff,
            breaker_threshold: config.breaker_threshold.max(1),
            breaker_cooldown: config.breaker_cooldown,
            fetch_ok: AtomicU64::new(0),
            fetch_err: AtomicU64::new(0),
            fetch_timeout: AtomicU64::new(0),
            breaker_opened: AtomicU64::new(0),
            probe_ok: AtomicU64::new(0),
            probe_err: AtomicU64::new(0),
            breaker: Mutex::new(BreakerState::Closed { consecutive_failures: 0 }),
        }
    }

    /// The peer's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the breaker currently rejects requests.
    pub fn breaker_is_open(&self) -> bool {
        matches!(*self.breaker.lock().expect("breaker lock poisoned"), BreakerState::Open { .. })
    }

    /// Fetches the entry stored under `digest` from this peer and
    /// verifies it against the full canonical `key` before trusting it.
    /// With `trace` given, every attempt (and a breaker rejection)
    /// becomes a `peer-fetch` span, and the outgoing line carries the
    /// propagated context — with tracing off, each site is one branch
    /// on the `None`.
    pub fn fetch(&self, digest: &str, key: &str, trace: Option<&FetchTrace<'_>>) -> FetchOutcome {
        if !self.admit() {
            if let Some(t) = trace {
                let now = t.log.now_ns();
                t.log.record(Span {
                    trace_id: t.trace_id,
                    span_id: t.log.next_span_id(),
                    parent: Some(t.parent),
                    name: "peer-fetch".to_owned(),
                    start_ns: now,
                    dur_ns: 0,
                    attrs: vec![
                        ("peer".to_owned(), self.addr.clone()),
                        ("breaker".to_owned(), "open".to_owned()),
                        ("rejected".to_owned(), "true".to_owned()),
                    ],
                });
            }
            return FetchOutcome::Unavailable;
        }
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(self.backoff * 2u32.pow(attempt - 1));
            }
            // Each attempt gets its own span id *before* the roundtrip,
            // so the owner's `fetch-serve` span can name it as parent.
            let (span_id, start_ns) = match trace {
                Some(t) => (t.log.next_span_id(), t.log.now_ns()),
                None => (0, 0),
            };
            let line = match trace {
                Some(t) => protocol::render_fetch_request_traced(
                    digest,
                    None,
                    Some(&TraceContext { trace_id: t.trace_id, parent: Some(span_id) }),
                ),
                None => protocol::render_fetch_request(digest, None),
            };
            let record_attempt = |result: &str| {
                if let Some(t) = trace {
                    t.log.record(Span {
                        trace_id: t.trace_id,
                        span_id,
                        parent: Some(t.parent),
                        name: "peer-fetch".to_owned(),
                        start_ns,
                        dur_ns: t.log.now_ns().saturating_sub(start_ns),
                        attrs: vec![
                            ("peer".to_owned(), self.addr.clone()),
                            ("attempt".to_owned(), attempt.to_string()),
                            ("result".to_owned(), result.to_owned()),
                            (
                                "breaker".to_owned(),
                                if self.breaker_is_open() { "open" } else { "closed" }.to_owned(),
                            ),
                        ],
                    });
                }
            };
            match self.roundtrip_once(&line) {
                Ok(doc) => {
                    self.record_success();
                    self.fetch_ok.fetch_add(1, Ordering::Relaxed);
                    record_attempt("ok");
                    return verify_fetch(&doc, digest, key);
                }
                Err(e) => {
                    let counter = if e.timed_out { &self.fetch_timeout } else { &self.fetch_err };
                    counter.fetch_add(1, Ordering::Relaxed);
                    self.record_failure();
                    record_attempt(if e.timed_out { "timeout" } else { "err" });
                }
            }
        }
        FetchOutcome::Unavailable
    }

    /// One liveness probe: `{"op": "ping"}`, a single attempt under the
    /// configured timeout. Returns `(uptime_ms, store_entries)` on a
    /// pong. This is the same exchange `relim ping` performs — the
    /// breaker's half-open recovery rides the health-check path.
    ///
    /// # Errors
    ///
    /// A human-readable description of the connection or protocol
    /// failure.
    pub fn ping(&self) -> Result<(u64, u64), String> {
        let doc = self
            .roundtrip_once(&protocol::render_admin_request("ping", None))
            .map_err(|e| e.message)?;
        if doc.get("pong").and_then(Json::as_bool) != Some(true) {
            return Err(format!("{} answered ping without a pong", self.addr));
        }
        let uptime = doc.get("uptime_ms").and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        let entries = doc.get("store_entries").and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        Ok((uptime, entries))
    }

    /// Admission check against the breaker: closed admits, open rejects
    /// outright. Live requests never probe — recovery belongs to the
    /// background prober ([`PeerClient::probe_if_due`]), so a request
    /// against a tripped peer degrades in microseconds, not a
    /// network-timeout later.
    fn admit(&self) -> bool {
        matches!(*self.breaker.lock().expect("breaker lock poisoned"), BreakerState::Closed { .. })
    }

    /// One half-open recovery step, run by the daemon's background
    /// prober: when the breaker is Open and the cooldown has elapsed,
    /// pings the peer. A pong closes the breaker (`probe_ok`); a
    /// failure re-arms the cooldown (`probe_err`). Returns whether a
    /// probe actually ran. The lock is not held across the network
    /// call; a concurrent `record_success` from a live request is
    /// simply confirmed by the probe's own transition.
    pub fn probe_if_due(&self) -> bool {
        let since = {
            match *self.breaker.lock().expect("breaker lock poisoned") {
                BreakerState::Closed { .. } => return false,
                BreakerState::Open { since } => since,
            }
        };
        if since.elapsed() < self.breaker_cooldown {
            return false;
        }
        match self.ping() {
            Ok(_) => {
                self.probe_ok.fetch_add(1, Ordering::Relaxed);
                *self.breaker.lock().expect("breaker lock poisoned") =
                    BreakerState::Closed { consecutive_failures: 0 };
            }
            Err(_) => {
                self.probe_err.fetch_add(1, Ordering::Relaxed);
                *self.breaker.lock().expect("breaker lock poisoned") =
                    BreakerState::Open { since: Instant::now() };
            }
        }
        true
    }

    fn record_success(&self) {
        *self.breaker.lock().expect("breaker lock poisoned") =
            BreakerState::Closed { consecutive_failures: 0 };
    }

    fn record_failure(&self) {
        let mut breaker = self.breaker.lock().expect("breaker lock poisoned");
        match *breaker {
            BreakerState::Closed { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.breaker_threshold {
                    *breaker = BreakerState::Open { since: Instant::now() };
                    self.breaker_opened.fetch_add(1, Ordering::Relaxed);
                } else {
                    *breaker = BreakerState::Closed { consecutive_failures: failures };
                }
            }
            // A failed half-open probe already re-armed the cooldown.
            BreakerState::Open { .. } => {}
        }
    }

    /// One request/response exchange under the configured timeouts.
    fn roundtrip_once(&self, line: &str) -> Result<Json, PeerError> {
        let target = resolve(&self.addr).map_err(PeerError::plain)?;
        let stream = TcpStream::connect_timeout(&target, self.timeout).map_err(PeerError::io)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(PeerError::io)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(PeerError::io)?;
        let mut writer = stream.try_clone().map_err(PeerError::io)?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(PeerError::io)?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        let n = reader.read_line(&mut response).map_err(PeerError::io)?;
        if n == 0 {
            return Err(PeerError::plain("peer closed the connection".to_owned()));
        }
        Json::parse(response.trim_end())
            .map_err(|e| PeerError::plain(format!("unparsable peer response: {e}")))
    }
}

/// A peer call failure, tagged with whether it was a timeout (for the
/// `fetch_timeout` vs `fetch_err` split).
struct PeerError {
    message: String,
    timed_out: bool,
}

impl PeerError {
    fn io(e: std::io::Error) -> PeerError {
        let timed_out =
            matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock);
        PeerError { message: e.to_string(), timed_out }
    }

    fn plain(message: String) -> PeerError {
        PeerError { message, timed_out: false }
    }
}

/// Resolves `host:port` to the first socket address (the fleet runs on
/// literal addresses in practice; DNS is tolerated but the first answer
/// wins deterministically).
fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to no address"))
}

/// Verifies a peer's fetch response: only an exact canonical-key match
/// whose digest re-derives to the requested address is a hit.
fn verify_fetch(doc: &Json, digest: &str, key: &str) -> FetchOutcome {
    if doc.get("ok").and_then(Json::as_bool) != Some(true)
        || doc.get("found").and_then(Json::as_bool) != Some(true)
    {
        return FetchOutcome::Miss;
    }
    let (Some(peer_key), Some(result)) =
        (doc.get("key").and_then(Json::as_str), doc.get("result").and_then(Json::as_str))
    else {
        return FetchOutcome::Miss;
    };
    if peer_key != key || digest_of(peer_key) != digest {
        // A lying peer is a miss, never served bytes.
        return FetchOutcome::Miss;
    }
    FetchOutcome::Hit(result.to_owned())
}

/// Where the ring places a content address.
#[derive(Debug, Clone, Copy)]
pub enum Route<'fleet> {
    /// This daemon owns the address: serve/compute locally.
    Local,
    /// A remote peer owns it: read through that peer first.
    Remote(&'fleet PeerClient),
}

/// The fleet: the ring plus one [`PeerClient`] per remote member and
/// the fleet-level counters.
pub struct Fleet {
    ring: Ring,
    self_addr: String,
    /// Peer clients addressable by ring name, sorted by address.
    peers: Vec<PeerClient>,
    /// Remote fetches that verified and were written through locally.
    remote_hits: AtomicU64,
    /// Remote fetches answered (or failed verification) without bytes —
    /// computed locally.
    remote_misses: AtomicU64,
    /// Requests whose remote owner was unreachable — computed locally.
    degraded_local: AtomicU64,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("self_addr", &self.self_addr)
            .field("members", &self.ring.members())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Builds the fleet: a ring over the peers plus `self_addr`, and a
    /// client per remote peer.
    pub fn new(config: &FleetConfig) -> Fleet {
        let mut members = config.peers.clone();
        members.push(config.self_addr.clone());
        let ring = Ring::new(members);
        let mut peers: Vec<PeerClient> = config
            .peers
            .iter()
            .filter(|addr| **addr != config.self_addr)
            .map(|addr| PeerClient::new(addr.clone(), config))
            .collect();
        peers.sort_by(|a, b| a.addr.cmp(&b.addr));
        peers.dedup_by(|a, b| a.addr == b.addr);
        Fleet {
            ring,
            self_addr: config.self_addr.clone(),
            peers,
            remote_hits: AtomicU64::new(0),
            remote_misses: AtomicU64::new(0),
            degraded_local: AtomicU64::new(0),
        }
    }

    /// This daemon's own ring name.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// The peer clients (sorted by address).
    pub fn peers(&self) -> &[PeerClient] {
        &self.peers
    }

    /// Where the ring places `digest`.
    pub fn route(&self, digest: &str) -> Route<'_> {
        match self.ring.owner_of(digest) {
            None => Route::Local,
            Some(owner) if owner == self.self_addr => Route::Local,
            Some(owner) => match self.peers.iter().find(|p| p.addr == owner) {
                Some(peer) => Route::Remote(peer),
                // A ring member with no client (self duplicated into
                // --peers) is local by definition.
                None => Route::Local,
            },
        }
    }

    /// The read-through: if a remote peer owns `digest`, fetch from it
    /// (verified), recording hit/miss/degradation counters. `Miss` when
    /// this daemon owns the address itself. `trace` threads the
    /// requester's span recording through the fetch (see
    /// [`PeerClient::fetch`]).
    pub fn read_through(
        &self,
        digest: &str,
        key: &str,
        trace: Option<&FetchTrace<'_>>,
    ) -> FetchOutcome {
        let Route::Remote(peer) = self.route(digest) else {
            return FetchOutcome::Miss;
        };
        let outcome = peer.fetch(digest, key, trace);
        let counter = match outcome {
            FetchOutcome::Hit(_) => &self.remote_hits,
            FetchOutcome::Miss => &self.remote_misses,
            FetchOutcome::Unavailable => &self.degraded_local,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    /// One background-prober pass: gives every Open breaker whose
    /// cooldown has elapsed its half-open ping (see
    /// [`PeerClient::probe_if_due`]). Cheap when all breakers are
    /// closed — one mutex peek per peer, no network.
    pub fn probe_open_breakers(&self) {
        for peer in &self.peers {
            peer.probe_if_due();
        }
    }

    /// The aggregate `peer` counters object (see
    /// [`zero_counters_json`] for the fleetless shape).
    pub fn counters_json(&self) -> Json {
        let sum = |pick: fn(&PeerClient) -> &AtomicU64| -> i64 {
            self.peers.iter().map(|p| pick(p).load(Ordering::Relaxed) as i64).sum()
        };
        Json::Obj(vec![
            ("fetch_ok".into(), Json::Int(sum(|p| &p.fetch_ok))),
            ("fetch_err".into(), Json::Int(sum(|p| &p.fetch_err))),
            ("fetch_timeout".into(), Json::Int(sum(|p| &p.fetch_timeout))),
            ("breaker_open".into(), Json::Int(sum(|p| &p.breaker_opened))),
            ("probe_ok".into(), Json::Int(sum(|p| &p.probe_ok))),
            ("probe_err".into(), Json::Int(sum(|p| &p.probe_err))),
            ("remote_hits".into(), Json::Int(self.remote_hits.load(Ordering::Relaxed) as i64)),
            ("remote_misses".into(), Json::Int(self.remote_misses.load(Ordering::Relaxed) as i64)),
            (
                "degraded_local".into(),
                Json::Int(self.degraded_local.load(Ordering::Relaxed) as i64),
            ),
        ])
    }

    /// The per-peer counters object, keyed by sanitized address (`.`
    /// and `:` become `_`, so the Prometheus derivation yields names
    /// like `relim_peers_127_0_0_1_7402_fetch_ok`).
    pub fn per_peer_json(&self) -> Json {
        let peers = self
            .peers
            .iter()
            .map(|p| {
                (
                    sanitize_addr(&p.addr),
                    Json::Obj(vec![
                        ("fetch_ok".into(), Json::Int(p.fetch_ok.load(Ordering::Relaxed) as i64)),
                        ("fetch_err".into(), Json::Int(p.fetch_err.load(Ordering::Relaxed) as i64)),
                        (
                            "fetch_timeout".into(),
                            Json::Int(p.fetch_timeout.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "breaker_open".into(),
                            Json::Int(p.breaker_opened.load(Ordering::Relaxed) as i64),
                        ),
                        ("probe_ok".into(), Json::Int(p.probe_ok.load(Ordering::Relaxed) as i64)),
                        ("probe_err".into(), Json::Int(p.probe_err.load(Ordering::Relaxed) as i64)),
                        ("breaker_is_open".into(), Json::Bool(p.breaker_is_open())),
                    ]),
                )
            })
            .collect();
        Json::Obj(peers)
    }
}

/// The zero-valued aggregate `peer` object a fleetless daemon serves:
/// the scrape surface is identical with and without `--peers`, so
/// dashboards and alerts need no reconfiguration when a daemon joins a
/// fleet.
pub fn zero_counters_json() -> Json {
    Json::Obj(vec![
        ("fetch_ok".into(), Json::Int(0)),
        ("fetch_err".into(), Json::Int(0)),
        ("fetch_timeout".into(), Json::Int(0)),
        ("breaker_open".into(), Json::Int(0)),
        ("probe_ok".into(), Json::Int(0)),
        ("probe_err".into(), Json::Int(0)),
        ("remote_hits".into(), Json::Int(0)),
        ("remote_misses".into(), Json::Int(0)),
        ("degraded_local".into(), Json::Int(0)),
    ])
}

/// A peer address as a counters-tree key: every byte outside
/// `[a-z0-9]` becomes `_` (metric-name alphabet by construction).
fn sanitize_addr(addr: &str) -> String {
    addr.to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(peers: Vec<String>) -> FleetConfig {
        let mut config =
            FleetConfig::new(peers, "127.0.0.1:1".to_owned(), Duration::from_millis(200));
        config.backoff = Duration::from_millis(1);
        config
    }

    /// A port nothing listens on (bind-then-drop frees it; the race
    /// window is negligible for a single connection attempt).
    fn dead_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    }

    #[test]
    fn fetch_against_a_dead_peer_trips_the_breaker_and_degrades() {
        let dead = dead_addr();
        let fleet = Fleet::new(&test_config(vec![dead.clone()]));
        // Find a digest the dead peer owns.
        let digest = (0..10_000)
            .map(|i| format!("digest-{i}"))
            .find(|d| matches!(fleet.route(d), Route::Remote(_)))
            .expect("a two-member ring gives the peer some share");
        let outcome = fleet.read_through(&digest, "key", None);
        assert_eq!(outcome, FetchOutcome::Unavailable);
        let peer = &fleet.peers()[0];
        assert!(peer.breaker_is_open(), "3 consecutive attempt failures open the breaker");
        assert_eq!(peer.breaker_opened.load(Ordering::Relaxed), 1);
        assert_eq!(peer.fetch_err.load(Ordering::Relaxed), 3, "initial try + 2 retries");
        // The next read-through is rejected by the breaker without new
        // connection attempts (live requests never probe).
        assert_eq!(fleet.read_through(&digest, "key", None), FetchOutcome::Unavailable);
        assert_eq!(peer.fetch_err.load(Ordering::Relaxed), 3, "breaker short-circuits");
        let counters = fleet.counters_json();
        assert_eq!(counters.get("degraded_local").and_then(Json::as_i64), Some(2));
        assert_eq!(counters.get("breaker_open").and_then(Json::as_i64), Some(1));
        // Per-peer tree carries the same numbers under the sanitized key.
        let per_peer = fleet.per_peer_json();
        let entry = per_peer.get(&sanitize_addr(&dead)).expect("peer entry");
        assert_eq!(entry.get("breaker_is_open").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn self_owned_addresses_never_leave_the_daemon() {
        let fleet = Fleet::new(&test_config(vec!["127.0.0.1:2".to_owned()]));
        let digest = (0..10_000)
            .map(|i| format!("digest-{i}"))
            .find(|d| matches!(fleet.route(d), Route::Local))
            .expect("self gets some share");
        assert_eq!(fleet.read_through(&digest, "key", None), FetchOutcome::Miss);
        assert_eq!(fleet.peers()[0].fetch_err.load(Ordering::Relaxed), 0, "no network touched");
    }

    #[test]
    fn background_probe_recovers_a_tripped_breaker() {
        let dead = dead_addr();
        let mut config = test_config(vec![dead.clone()]);
        config.breaker_cooldown = Duration::from_millis(1);
        let fleet = Fleet::new(&config);
        let digest = (0..10_000)
            .map(|i| format!("digest-{i}"))
            .find(|d| matches!(fleet.route(d), Route::Remote(_)))
            .expect("a two-member ring gives the peer some share");
        assert_eq!(fleet.read_through(&digest, "key", None), FetchOutcome::Unavailable);
        let peer = &fleet.peers()[0];
        assert!(peer.breaker_is_open());

        // While the peer is still dead, a due probe fails and re-arms
        // the cooldown; live requests stay rejected without paying for
        // any network attempt.
        std::thread::sleep(Duration::from_millis(5));
        fleet.probe_open_breakers();
        assert!(peer.breaker_is_open(), "a failed probe re-arms the breaker");
        assert_eq!(peer.probe_err.load(Ordering::Relaxed), 1);
        assert_eq!(fleet.read_through(&digest, "key", None), FetchOutcome::Unavailable);
        assert_eq!(peer.fetch_err.load(Ordering::Relaxed), 3, "no new fetch attempts");

        // Revive the peer on the same address: the next due probe pongs
        // and closes the breaker — no live request involved.
        let handle = crate::server::Server::spawn(&dead, crate::server::ServerConfig::default())
            .expect("rebind the reserved address");
        std::thread::sleep(Duration::from_millis(5));
        fleet.probe_open_breakers();
        assert!(!peer.breaker_is_open(), "a pong closes the breaker");
        assert_eq!(peer.probe_ok.load(Ordering::Relaxed), 1);
        fleet.probe_open_breakers();
        assert_eq!(peer.probe_ok.load(Ordering::Relaxed), 1, "closed breakers are not probed");
        let counters = fleet.counters_json();
        assert_eq!(counters.get("probe_ok").and_then(Json::as_i64), Some(1));
        assert_eq!(counters.get("probe_err").and_then(Json::as_i64), Some(1));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn traced_fetch_records_per_attempt_spans_with_breaker_state() {
        let dead = dead_addr();
        let fleet = Fleet::new(&test_config(vec![dead.clone()]));
        let digest = (0..10_000)
            .map(|i| format!("digest-{i}"))
            .find(|d| matches!(fleet.route(d), Route::Remote(_)))
            .expect("a two-member ring gives the peer some share");
        let log = crate::trace::SpanLog::new(64);
        let ft = FetchTrace { log: &log, trace_id: 42, parent: 7 };
        assert_eq!(fleet.read_through(&digest, "key", Some(&ft)), FetchOutcome::Unavailable);
        let spans = log.snapshot(Some(42)).spans;
        assert_eq!(spans.len(), 3, "one span per attempt");
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.name, "peer-fetch");
            assert_eq!(s.parent, Some(7), "attempts hang under the requester's root");
            assert!(s.attrs.contains(&("attempt".to_owned(), i.to_string())), "{:?}", s.attrs);
            assert!(s.attrs.contains(&("peer".to_owned(), dead.clone())), "{:?}", s.attrs);
        }
        assert!(
            spans[2].attrs.contains(&("breaker".to_owned(), "open".to_owned())),
            "the tripping attempt records the post-trip breaker state: {:?}",
            spans[2].attrs
        );
        // A breaker rejection is also visible in the trace.
        assert_eq!(fleet.read_through(&digest, "key", Some(&ft)), FetchOutcome::Unavailable);
        let spans = log.snapshot(Some(42)).spans;
        assert_eq!(spans.len(), 4);
        assert!(
            spans[3].attrs.contains(&("rejected".to_owned(), "true".to_owned())),
            "{:?}",
            spans[3].attrs
        );
    }

    #[test]
    fn verify_fetch_rejects_lying_peers() {
        let key = "relim-store/1\nop=test\n";
        let digest = digest_of(key);
        let honest =
            Json::parse(&protocol::render_fetch_response(None, &digest, Some((key, "the bytes"))))
                .unwrap();
        assert_eq!(verify_fetch(&honest, &digest, key), FetchOutcome::Hit("the bytes".into()));
        // Same digest, different key: refused.
        let lying = Json::parse(&protocol::render_fetch_response(
            None,
            &digest,
            Some(("a DIFFERENT key", "poison")),
        ))
        .unwrap();
        assert_eq!(verify_fetch(&lying, &digest, key), FetchOutcome::Miss);
        // Honest miss.
        let miss = Json::parse(&protocol::render_fetch_response(None, &digest, None)).unwrap();
        assert_eq!(verify_fetch(&miss, &digest, key), FetchOutcome::Miss);
    }

    #[test]
    fn sanitized_addresses_are_metric_name_safe() {
        assert_eq!(sanitize_addr("127.0.0.1:7402"), "127_0_0_1_7402");
        assert_eq!(sanitize_addr("Node-3.example.com:80"), "node_3_example_com_80");
    }

    #[test]
    fn fleetless_and_fleet_counter_shapes_agree() {
        let fleet = Fleet::new(&test_config(vec!["127.0.0.1:2".to_owned()]));
        let keys = |json: &Json| -> Vec<String> {
            let Json::Obj(fields) = json else { panic!("not an object") };
            fields.iter().map(|(k, _)| k.clone()).collect()
        };
        assert_eq!(keys(&fleet.counters_json()), keys(&zero_counters_json()));
    }
}
