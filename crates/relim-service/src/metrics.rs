//! The Prometheus text-exposition rendering behind `{"op": "metrics"}`.
//!
//! One function, [`render_prometheus`], turns the daemon's `counters`
//! tree (exactly what a `status` response carries — see
//! `Shared::counters_json` in [`crate::server`]) into [Prometheus text
//! exposition format]: the JSON tree is flattened depth-first, path
//! components joined with `_` under the `relim_` prefix (so
//! `ops.zero_round` becomes `relim_ops_zero_round`), booleans rendered
//! as `0`/`1`. Deriving the exposition from the same tree the `status`
//! op serves means the two surfaces can never drift: every counter an
//! operator can see is scrapeable, automatically, including ones added
//! later.
//!
//! **Naming rules.** Metric names are `relim_` + the `_`-joined JSON
//! path, already `[a-z0-9_]` by construction of the counters tree. Most
//! metrics are monotone `counter`s; the known point-in-time readings
//! (queue depth, store size, configuration, `*_max_ns` high-water
//! marks) are typed `gauge` via an explicit list (`is_gauge_path`) —
//! an unknown path defaults to `counter`, the safe choice for a tree
//! that mostly accumulates.
//!
//! [Prometheus text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use relim_json::Json;

/// Paths (relative to the counters root, `_`-joined) that are
/// point-in-time readings rather than monotone counters. High-water
/// marks (`*_max_ns`, `queue_max_depth`) are gauges too: they can reset
/// with the process but never decrease within one — still, they are not
/// rate-able, which is what `counter` would promise.
fn is_gauge_path(path: &str) -> bool {
    matches!(
        path,
        "store_disk_bytes"
            | "store_mem_entries"
            | "store_persistent"
            | "queue_pending"
            | "queue_max_depth"
            | "queue_aging_limit"
            | "engine_cache_entries"
            | "threads"
            | "executors"
            | "timeline_window"
    ) || path.ends_with("_max_ns")
        // Per-peer breaker state (`peers_<addr>_breaker_is_open`) is a
        // point-in-time reading; the addr segment makes it a suffix
        // rule rather than a listed path.
        || path.ends_with("_breaker_is_open")
}

/// Renders a daemon `counters` tree as Prometheus text exposition (see
/// the module docs). Every numeric/boolean leaf becomes one
/// `# HELP` / `# TYPE` / sample triplet, in the tree's own
/// (deterministic) order.
pub fn render_prometheus(counters: &Json) -> String {
    let mut out = String::new();
    let mut path = Vec::new();
    flatten(counters, &mut path, &mut out);
    out
}

fn flatten(node: &Json, path: &mut Vec<String>, out: &mut String) {
    match node {
        Json::Obj(fields) => {
            for (key, value) in fields {
                path.push(key.clone());
                flatten(value, path, out);
                path.pop();
            }
        }
        Json::Int(v) => emit(path, *v as f64, out),
        Json::Float(v) => emit(path, *v, out),
        Json::Bool(v) => emit(path, if *v { 1.0 } else { 0.0 }, out),
        // Strings and arrays carry no scrapeable value; the counters
        // tree holds none today, and skipping keeps the format valid if
        // one appears.
        _ => {}
    }
}

fn emit(path: &[String], value: f64, out: &mut String) {
    let joined = path.join("_");
    let name = format!("relim_{joined}");
    let kind = if is_gauge_path(&joined) { "gauge" } else { "counter" };
    out.push_str(&format!("# HELP {name} Daemon status counter `{}`.\n", path.join(".")));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
    // Counters are integers in truth; render them without a fraction.
    if value.fract() == 0.0 {
        out.push_str(&format!("{name} {}\n", value as i64));
    } else {
        out.push_str(&format!("{name} {value}\n"));
    }
}

/// Checks `text` against the exposition format rules this module
/// guarantees: every sample line is `name value` with a legal metric
/// name and a numeric value, every sample is preceded by its own
/// `# TYPE`, and no metric name repeats. Returns the violations (empty
/// means valid) — the concurrency battery scrapes a live daemon and
/// asserts emptiness.
pub fn exposition_problems(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some("counter" | "gauge"), None) => typed.push(name.to_owned()),
                _ => problems.push(format!("line {n}: malformed TYPE comment: {line}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and free comments are unconstrained
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(value), None) = (parts.next(), parts.next(), parts.next()) else {
            problems.push(format!("line {n}: not a `name value` sample: {line}"));
            continue;
        };
        if !is_metric_name(name) {
            problems.push(format!("line {n}: illegal metric name `{name}`"));
        }
        if value.parse::<f64>().is_err() {
            problems.push(format!("line {n}: non-numeric value `{value}`"));
        }
        if sampled.contains(&name.to_owned()) {
            problems.push(format!("line {n}: duplicate metric `{name}`"));
        }
        if !typed.contains(&name.to_owned()) {
            problems.push(format!("line {n}: sample `{name}` has no preceding TYPE"));
        }
        sampled.push(name.to_owned());
    }
    problems
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_exposition_for_a_small_counter_tree() {
        let counters = Json::Obj(vec![
            ("requests_total".into(), Json::Int(7)),
            (
                "ops".into(),
                Json::Obj(vec![
                    ("autolb".into(), Json::Int(2)),
                    ("zero_round".into(), Json::Int(5)),
                ]),
            ),
            (
                "store".into(),
                Json::Obj(vec![
                    ("stores".into(), Json::Int(3)),
                    ("persistent".into(), Json::Bool(true)),
                ]),
            ),
            ("latency".into(), Json::Obj(vec![("max_ns".into(), Json::Int(1200))])),
            ("threads".into(), Json::Int(4)),
        ]);
        let golden = "\
# HELP relim_requests_total Daemon status counter `requests_total`.
# TYPE relim_requests_total counter
relim_requests_total 7
# HELP relim_ops_autolb Daemon status counter `ops.autolb`.
# TYPE relim_ops_autolb counter
relim_ops_autolb 2
# HELP relim_ops_zero_round Daemon status counter `ops.zero_round`.
# TYPE relim_ops_zero_round counter
relim_ops_zero_round 5
# HELP relim_store_stores Daemon status counter `store.stores`.
# TYPE relim_store_stores counter
relim_store_stores 3
# HELP relim_store_persistent Daemon status counter `store.persistent`.
# TYPE relim_store_persistent gauge
relim_store_persistent 1
# HELP relim_latency_max_ns Daemon status counter `latency.max_ns`.
# TYPE relim_latency_max_ns gauge
relim_latency_max_ns 1200
# HELP relim_threads Daemon status counter `threads`.
# TYPE relim_threads gauge
relim_threads 4
";
        let rendered = render_prometheus(&counters);
        assert_eq!(rendered, golden);
        assert_eq!(exposition_problems(&rendered), Vec::<String>::new());
    }

    #[test]
    fn validator_flags_the_violations_it_claims_to() {
        let bad = "\
# TYPE relim_good counter
relim_good 1
relim_untyped 2
relim_good 3
9leading_digit 4
relim_nonnum x
relim_extra 1 2
";
        let problems = exposition_problems(bad);
        let all = problems.join("\n");
        assert!(all.contains("duplicate metric `relim_good`"), "{all}");
        assert!(all.contains("no preceding TYPE"), "{all}");
        assert!(all.contains("illegal metric name `9leading_digit`"), "{all}");
        assert!(all.contains("non-numeric value `x`"), "{all}");
        assert!(all.contains("not a `name value` sample"), "{all}");
    }

    #[test]
    fn every_leaf_of_a_nested_tree_is_emitted_once() {
        let counters = Json::Obj(vec![
            (
                "a".into(),
                Json::Obj(vec![
                    ("b".into(), Json::Int(1)),
                    ("c".into(), Json::Obj(vec![("d".into(), Json::Int(2))])),
                ]),
            ),
            ("e".into(), Json::Bool(false)),
        ]);
        let rendered = render_prometheus(&counters);
        let samples: Vec<&str> =
            rendered.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).collect();
        assert_eq!(samples, vec!["relim_a_b 1", "relim_a_c_d 2", "relim_e 0"]);
        assert_eq!(exposition_problems(&rendered), Vec::<String>::new());
    }
}
