//! The Prometheus text-exposition rendering behind `{"op": "metrics"}`.
//!
//! One function, [`render_prometheus`], turns the daemon's `counters`
//! tree (exactly what a `status` response carries — see
//! `Shared::counters_json` in [`crate::server`]) into [Prometheus text
//! exposition format]: the JSON tree is flattened depth-first, path
//! components joined with `_` under the `relim_` prefix (so
//! `ops.zero_round` becomes `relim_ops_zero_round`), booleans rendered
//! as `0`/`1`. Deriving the exposition from the same tree the `status`
//! op serves means the two surfaces can never drift: every counter an
//! operator can see is scrapeable, automatically, including ones added
//! later.
//!
//! **Naming rules.** Metric names are `relim_` + the `_`-joined JSON
//! path, already `[a-z0-9_]` by construction of the counters tree. Most
//! metrics are monotone `counter`s; the known point-in-time readings
//! (queue depth, store size, configuration, `*_max_ns` high-water
//! marks) are typed `gauge` via an explicit list (`is_gauge_path`) —
//! an unknown path defaults to `counter`, the safe choice for a tree
//! that mostly accumulates.
//!
//! **Latency histograms.** Request latency is recorded per op×outcome
//! into [`LatencyHistogram`]s — power-of-two buckets from
//! [`latency_bucket_bound`]`(0)` = 1µs up to ~69s, so the whole
//! distribution costs a fixed 27 atomics per cell instead of the old
//! total/max pair. The counters tree stores each cell as `{count,
//! sum_ns, buckets}` (the bucket *array* is skipped by the mechanical
//! flattening, which only emits scalars), and the exposition derives
//! one labeled `histogram` family from it:
//! `relim_request_latency_ns_bucket{op="…",outcome="…",le="…"}` with
//! cumulative buckets, a `+Inf` bucket, and matching `_sum`/`_count`
//! series — the shape `histogram_quantile()` expects.
//!
//! [Prometheus text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use relim_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per latency histogram: `le` bounds 2^10ns (1µs) … 2^36ns
/// (~69s). Anything slower lands only in the implicit `+Inf` bucket.
pub const LATENCY_BUCKETS: usize = 27;

/// The `i`th histogram bound in nanoseconds (`i < LATENCY_BUCKETS`).
pub fn latency_bucket_bound(i: usize) -> u64 {
    1u64 << (10 + i as u32)
}

/// One op×outcome latency distribution: lock-free power-of-two buckets
/// plus the `count`/`sum` pair Prometheus histograms carry.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if let Some(i) = (0..LATENCY_BUCKETS).find(|&i| ns <= latency_bucket_bound(i)) {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The counters-tree cell: `{count, sum_ns, buckets}` with
    /// *non-cumulative* buckets (the exposition accumulates). The
    /// buckets are read first and `count` clamped up to their total, so
    /// a concurrent recording between the reads can never make the
    /// derived `+Inf` cumulative bucket smaller than the last finite
    /// one — a scrape is a racy snapshot, but always a self-consistent
    /// one.
    pub fn json(&self) -> Json {
        let buckets: Vec<i64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed) as i64).collect();
        let in_buckets: i64 = buckets.iter().sum();
        let count = (self.count.load(Ordering::Relaxed) as i64).max(in_buckets);
        Json::Obj(vec![
            ("count".to_owned(), Json::Int(count)),
            ("sum_ns".to_owned(), Json::Int(self.sum_ns.load(Ordering::Relaxed) as i64)),
            ("buckets".to_owned(), Json::Arr(buckets.into_iter().map(Json::Int).collect())),
        ])
    }
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// Paths (relative to the counters root, `_`-joined) that are
/// point-in-time readings rather than monotone counters. High-water
/// marks (`*_max_ns`, `queue_max_depth`) are gauges too: they can reset
/// with the process but never decrease within one — still, they are not
/// rate-able, which is what `counter` would promise.
fn is_gauge_path(path: &str) -> bool {
    matches!(
        path,
        "store_disk_bytes"
            | "store_mem_entries"
            | "store_persistent"
            | "queue_pending"
            | "queue_max_depth"
            | "queue_aging_limit"
            | "engine_cache_entries"
            | "threads"
            | "executors"
            | "timeline_window"
            | "trace_window"
    ) || path.ends_with("_max_ns")
        // Per-peer breaker state (`peers_<addr>_breaker_is_open`) is a
        // point-in-time reading; the addr segment makes it a suffix
        // rule rather than a listed path.
        || path.ends_with("_breaker_is_open")
}

/// Renders a daemon `counters` tree as Prometheus text exposition (see
/// the module docs). Every numeric/boolean leaf becomes one
/// `# HELP` / `# TYPE` / sample triplet, in the tree's own
/// (deterministic) order.
pub fn render_prometheus(counters: &Json) -> String {
    let mut out = String::new();
    let mut path = Vec::new();
    flatten(counters, &mut path, &mut out);
    render_latency_histograms(counters, &mut out);
    out
}

/// Derives the `relim_request_latency_ns` histogram family from the
/// `latency.<op>.<outcome> = {count, sum_ns, buckets}` cells of the
/// counters tree (see [`LatencyHistogram::json`]): cumulative `le`
/// buckets, `+Inf`, `_sum` and `_count` per label set. Trees without
/// such cells (older daemons, synthetic tests) derive nothing.
fn render_latency_histograms(counters: &Json, out: &mut String) {
    let Some(Json::Obj(ops)) = counters.get("latency") else { return };
    let mut header_done = false;
    for (op, outcomes) in ops {
        let Json::Obj(outcomes) = outcomes else { continue };
        for (outcome, cell) in outcomes {
            let (Some(count), Some(sum_ns), Some(Json::Arr(buckets))) = (
                cell.get("count").and_then(Json::as_i64),
                cell.get("sum_ns").and_then(Json::as_i64),
                cell.get("buckets"),
            ) else {
                continue;
            };
            if !header_done {
                out.push_str(
                    "# HELP relim_request_latency_ns Request latency by op and outcome \
                     (power-of-two buckets).\n\
                     # TYPE relim_request_latency_ns histogram\n",
                );
                header_done = true;
            }
            let labels = format!("op=\"{op}\",outcome=\"{outcome}\"");
            let mut cumulative: i64 = 0;
            for (i, bucket) in buckets.iter().enumerate() {
                cumulative += bucket.as_i64().unwrap_or(0);
                out.push_str(&format!(
                    "relim_request_latency_ns_bucket{{{labels},le=\"{}\"}} {cumulative}\n",
                    latency_bucket_bound(i)
                ));
            }
            let total = count.max(cumulative);
            out.push_str(&format!(
                "relim_request_latency_ns_bucket{{{labels},le=\"+Inf\"}} {total}\n"
            ));
            out.push_str(&format!("relim_request_latency_ns_sum{{{labels}}} {sum_ns}\n"));
            out.push_str(&format!("relim_request_latency_ns_count{{{labels}}} {total}\n"));
        }
    }
}

fn flatten(node: &Json, path: &mut Vec<String>, out: &mut String) {
    match node {
        Json::Obj(fields) => {
            for (key, value) in fields {
                path.push(key.clone());
                flatten(value, path, out);
                path.pop();
            }
        }
        Json::Int(v) => emit(path, *v as f64, out),
        Json::Float(v) => emit(path, *v, out),
        Json::Bool(v) => emit(path, if *v { 1.0 } else { 0.0 }, out),
        // Strings and arrays carry no scrapeable value; the counters
        // tree holds none today, and skipping keeps the format valid if
        // one appears.
        _ => {}
    }
}

fn emit(path: &[String], value: f64, out: &mut String) {
    let joined = path.join("_");
    let name = format!("relim_{joined}");
    let kind = if is_gauge_path(&joined) { "gauge" } else { "counter" };
    out.push_str(&format!("# HELP {name} Daemon status counter `{}`.\n", path.join(".")));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
    // Counters are integers in truth; render them without a fraction.
    if value.fract() == 0.0 {
        out.push_str(&format!("{name} {}\n", value as i64));
    } else {
        out.push_str(&format!("{name} {value}\n"));
    }
}

/// Checks `text` against the exposition format rules this module
/// guarantees: every sample line is `name value` or
/// `name{labels} value` with a legal metric name, legal labels and a
/// numeric value; every sample is preceded by its own `# TYPE`
/// (histogram `_bucket`/`_sum`/`_count` samples match their family's
/// `histogram` TYPE); no name+labelset repeats; and every histogram
/// series has strictly increasing `le` bounds ending in `+Inf`,
/// non-decreasing cumulative bucket values, a `_sum`, and a `_count`
/// equal to its `+Inf` bucket. Returns the violations (empty means
/// valid) — the concurrency battery scrapes a live daemon and asserts
/// emptiness.
pub fn exposition_problems(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    // (name, kind) from TYPE comments, in order of appearance.
    let mut typed: Vec<(String, String)> = Vec::new();
    // name + rendered labelset, for duplicate detection.
    let mut sampled: Vec<String> = Vec::new();
    // Histogram series keyed by (family, labels-without-le).
    struct Series {
        buckets: Vec<(f64, f64)>, // (le, cumulative value) in order
        count: Option<f64>,
        has_sum: bool,
    }
    let mut series: Vec<((String, String), Series)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(kind @ ("counter" | "gauge" | "histogram")), None) => {
                    typed.push((name.to_owned(), kind.to_owned()));
                }
                _ => problems.push(format!("line {n}: malformed TYPE comment: {line}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and free comments are unconstrained
        }
        let Some((name, raw_labels, value)) = split_sample(line) else {
            problems.push(format!("line {n}: not a `name value` sample: {line}"));
            continue;
        };
        if !is_metric_name(&name) {
            problems.push(format!("line {n}: illegal metric name `{name}`"));
        }
        let labels = match raw_labels.as_deref().map(parse_labels).transpose() {
            Ok(labels) => labels.unwrap_or_default(),
            Err(e) => {
                problems.push(format!("line {n}: {e}: {line}"));
                continue;
            }
        };
        let Ok(value) = value.parse::<f64>() else {
            problems.push(format!("line {n}: non-numeric value `{value}`"));
            continue;
        };
        let identity = match raw_labels.as_deref() {
            Some(labels) => format!("{name}{{{labels}}}"),
            None => name.clone(),
        };
        if sampled.contains(&identity) {
            problems.push(format!("line {n}: duplicate metric `{identity}`"));
        }
        sampled.push(identity);
        // A histogram family's samples are `<family>_bucket/_sum/_count`.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| name.strip_suffix(suffix).map(|f| (f.to_owned(), *suffix)))
            .filter(|(f, _)| typed.iter().any(|(t, k)| t == f && k == "histogram"));
        if typed.iter().all(|(t, _)| *t != name) && family.is_none() {
            problems.push(format!("line {n}: sample `{name}` has no preceding TYPE"));
        }
        let Some((family, suffix)) = family else { continue };
        let series_labels: Vec<String> =
            labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v}")).collect();
        let key = (family, series_labels.join(","));
        let entry = match series.iter_mut().find(|(k, _)| *k == key) {
            Some((_, s)) => s,
            None => {
                series.push((key, Series { buckets: Vec::new(), count: None, has_sum: false }));
                &mut series.last_mut().expect("just pushed").1
            }
        };
        match suffix {
            "_bucket" => match labels.iter().find(|(k, _)| k == "le") {
                Some((_, le)) => {
                    let bound =
                        if le == "+Inf" { Some(f64::INFINITY) } else { le.parse::<f64>().ok() };
                    match bound {
                        Some(bound) => entry.buckets.push((bound, value)),
                        None => {
                            problems.push(format!("line {n}: non-numeric `le` bound `{le}`"));
                        }
                    }
                }
                None => problems.push(format!("line {n}: histogram bucket without `le`: {line}")),
            },
            "_count" => entry.count = Some(value),
            _ => entry.has_sum = true,
        }
    }
    for ((family, labels), s) in &series {
        let at = if labels.is_empty() {
            format!("histogram `{family}`")
        } else {
            format!("histogram `{family}{{{labels}}}`")
        };
        if !s.buckets.windows(2).all(|w| w[0].0 < w[1].0) {
            problems.push(format!("{at}: `le` bounds are not strictly increasing"));
        }
        if s.buckets.last().map(|(le, _)| *le) != Some(f64::INFINITY) {
            problems.push(format!("{at}: missing `+Inf` bucket"));
        }
        if !s.buckets.windows(2).all(|w| w[0].1 <= w[1].1) {
            problems.push(format!("{at}: cumulative bucket values decrease"));
        }
        match (s.count, s.buckets.last()) {
            (None, _) => problems.push(format!("{at}: missing `_count`")),
            (Some(count), Some((le, inf))) if *le == f64::INFINITY && count != *inf => {
                problems.push(format!("{at}: `_count` {count} != `+Inf` bucket {inf}"));
            }
            _ => {}
        }
        if !s.has_sum {
            problems.push(format!("{at}: missing `_sum`"));
        }
    }
    problems
}

/// Splits a sample line into `(name, raw labels, value)`. The label
/// scan is quote-aware, so a `}` inside a label value does not end the
/// label set.
fn split_sample(line: &str) -> Option<(String, Option<String>, String)> {
    let Some(open) = line.find('{') else {
        let mut parts = line.split_whitespace();
        return match (parts.next(), parts.next(), parts.next()) {
            (Some(name), Some(value), None) => Some((name.to_owned(), None, value.to_owned())),
            _ => None,
        };
    };
    let name = line[..open].to_owned();
    let rest = &line[open + 1..];
    let mut in_quotes = false;
    let mut escaped = false;
    let mut close = None;
    for (j, c) in rest.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => {
                close = Some(j);
                break;
            }
            _ => {}
        }
    }
    let close = close?;
    let mut value_parts = rest[close + 1..].split_whitespace();
    match (value_parts.next(), value_parts.next()) {
        (Some(value), None) => Some((name, Some(rest[..close].to_owned()), value.to_owned())),
        _ => None,
    }
}

/// Parses a raw label string (`key="value",…`) into pairs, or describes
/// the first malformation.
fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = text;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| "label without `=`".to_owned())?;
        let key = &rest[..eq];
        if !is_label_name(key) {
            return Err(format!("illegal label name `{key}`"));
        }
        let after = &rest[eq + 1..];
        let quoted = after.strip_prefix('"').ok_or_else(|| "unquoted label value".to_owned())?;
        let mut escaped = false;
        let mut end = None;
        for (j, c) in quoted.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_owned())?;
        out.push((key.to_owned(), quoted[..end].to_owned()));
        rest = &quoted[end + 1..];
        rest = match rest.strip_prefix(',') {
            Some(r) => r,
            None if rest.is_empty() => rest,
            None => return Err("label pairs must be comma-separated".to_owned()),
        };
    }
    Ok(out)
}

fn is_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_exposition_for_a_small_counter_tree() {
        let counters = Json::Obj(vec![
            ("requests_total".into(), Json::Int(7)),
            (
                "ops".into(),
                Json::Obj(vec![
                    ("autolb".into(), Json::Int(2)),
                    ("zero_round".into(), Json::Int(5)),
                ]),
            ),
            (
                "store".into(),
                Json::Obj(vec![
                    ("stores".into(), Json::Int(3)),
                    ("persistent".into(), Json::Bool(true)),
                ]),
            ),
            ("latency".into(), Json::Obj(vec![("max_ns".into(), Json::Int(1200))])),
            ("threads".into(), Json::Int(4)),
        ]);
        let golden = "\
# HELP relim_requests_total Daemon status counter `requests_total`.
# TYPE relim_requests_total counter
relim_requests_total 7
# HELP relim_ops_autolb Daemon status counter `ops.autolb`.
# TYPE relim_ops_autolb counter
relim_ops_autolb 2
# HELP relim_ops_zero_round Daemon status counter `ops.zero_round`.
# TYPE relim_ops_zero_round counter
relim_ops_zero_round 5
# HELP relim_store_stores Daemon status counter `store.stores`.
# TYPE relim_store_stores counter
relim_store_stores 3
# HELP relim_store_persistent Daemon status counter `store.persistent`.
# TYPE relim_store_persistent gauge
relim_store_persistent 1
# HELP relim_latency_max_ns Daemon status counter `latency.max_ns`.
# TYPE relim_latency_max_ns gauge
relim_latency_max_ns 1200
# HELP relim_threads Daemon status counter `threads`.
# TYPE relim_threads gauge
relim_threads 4
";
        let rendered = render_prometheus(&counters);
        assert_eq!(rendered, golden);
        assert_eq!(exposition_problems(&rendered), Vec::<String>::new());
    }

    #[test]
    fn validator_flags_the_violations_it_claims_to() {
        let bad = "\
# TYPE relim_good counter
relim_good 1
relim_untyped 2
relim_good 3
9leading_digit 4
relim_nonnum x
relim_extra 1 2
";
        let problems = exposition_problems(bad);
        let all = problems.join("\n");
        assert!(all.contains("duplicate metric `relim_good`"), "{all}");
        assert!(all.contains("no preceding TYPE"), "{all}");
        assert!(all.contains("illegal metric name `9leading_digit`"), "{all}");
        assert!(all.contains("non-numeric value `x`"), "{all}");
        assert!(all.contains("not a `name value` sample"), "{all}");
    }

    /// A counters tree holding one histogram cell with `total` spread
    /// over the first buckets.
    fn tree_with_histogram(op: &str, outcome: &str, per_bucket: &[i64], sum_ns: i64) -> Json {
        let count: i64 = per_bucket.iter().sum();
        let mut buckets = vec![0i64; LATENCY_BUCKETS];
        buckets[..per_bucket.len()].copy_from_slice(per_bucket);
        let cell = Json::Obj(vec![
            ("count".into(), Json::Int(count)),
            ("sum_ns".into(), Json::Int(sum_ns)),
            ("buckets".into(), Json::Arr(buckets.into_iter().map(Json::Int).collect())),
        ]);
        Json::Obj(vec![(
            "latency".into(),
            Json::Obj(vec![(op.to_owned(), Json::Obj(vec![(outcome.to_owned(), cell)]))]),
        )])
    }

    #[test]
    fn histogram_cells_derive_a_labeled_cumulative_family() {
        // Two observations ≤1µs, one in (2µs, 4µs].
        let rendered =
            render_prometheus(&tree_with_histogram("zero_round", "hit", &[2, 0, 1], 900));
        assert!(rendered.contains("# TYPE relim_request_latency_ns histogram"), "{rendered}");
        assert!(
            rendered.contains(
                "relim_request_latency_ns_bucket{op=\"zero_round\",outcome=\"hit\",le=\"1024\"} 2"
            ),
            "{rendered}"
        );
        assert!(
            rendered.contains(
                "relim_request_latency_ns_bucket{op=\"zero_round\",outcome=\"hit\",le=\"2048\"} 2"
            ),
            "cumulative, not per-bucket: {rendered}"
        );
        assert!(
            rendered.contains(
                "relim_request_latency_ns_bucket{op=\"zero_round\",outcome=\"hit\",le=\"4096\"} 3"
            ),
            "{rendered}"
        );
        assert!(
            rendered.contains(
                "relim_request_latency_ns_bucket{op=\"zero_round\",outcome=\"hit\",le=\"+Inf\"} 3"
            ),
            "{rendered}"
        );
        assert!(
            rendered
                .contains("relim_request_latency_ns_sum{op=\"zero_round\",outcome=\"hit\"} 900"),
            "{rendered}"
        );
        assert!(
            rendered
                .contains("relim_request_latency_ns_count{op=\"zero_round\",outcome=\"hit\"} 3"),
            "{rendered}"
        );
        // The scalar flattening must NOT leak the bucket array, and the
        // whole document must satisfy the validator.
        assert!(!rendered.contains("relim_latency_zero_round_hit_buckets"), "{rendered}");
        assert!(rendered.contains("relim_latency_zero_round_hit_count 3"), "{rendered}");
        assert_eq!(exposition_problems(&rendered), Vec::<String>::new(), "{rendered}");
    }

    #[test]
    fn latency_histogram_records_into_the_right_buckets() {
        let h = LatencyHistogram::new();
        h.record(500); // ≤ 2^10
        h.record(1024); // ≤ 2^10 (inclusive bound)
        h.record(1025); // ≤ 2^11
        h.record(u64::MAX); // beyond every bound: +Inf only
        let cell = h.json();
        assert_eq!(cell.get("count").and_then(Json::as_i64), Some(4));
        assert_eq!(cell.get("sum_ns").and_then(Json::as_i64), Some(500 + 1024 + 1025 - 1));
        let Some(Json::Arr(buckets)) = cell.get("buckets") else { panic!("buckets") };
        assert_eq!(buckets.len(), LATENCY_BUCKETS);
        assert_eq!(buckets[0].as_i64(), Some(2));
        assert_eq!(buckets[1].as_i64(), Some(1));
        let in_buckets: i64 = buckets.iter().filter_map(Json::as_i64).sum();
        assert_eq!(in_buckets, 3, "the overflow observation is only in count");
    }

    #[test]
    fn validator_rejects_non_monotone_le_buckets() {
        let bad = "\
# TYPE h histogram
h_bucket{le=\"200\"} 1
h_bucket{le=\"100\"} 2
h_bucket{le=\"+Inf\"} 2
h_sum 7
h_count 2
";
        let all = exposition_problems(bad).join("\n");
        assert!(all.contains("`le` bounds are not strictly increasing"), "{all}");
    }

    #[test]
    fn validator_rejects_missing_inf_bucket() {
        let bad = "\
# TYPE h histogram
h_bucket{le=\"100\"} 1
h_bucket{le=\"200\"} 2
h_sum 7
h_count 2
";
        let all = exposition_problems(bad).join("\n");
        assert!(all.contains("missing `+Inf` bucket"), "{all}");
    }

    #[test]
    fn validator_rejects_count_and_sum_mismatches() {
        let bad = "\
# TYPE h histogram
h_bucket{le=\"100\"} 1
h_bucket{le=\"+Inf\"} 3
h_count 2
";
        let all = exposition_problems(bad).join("\n");
        assert!(all.contains("`_count` 2 != `+Inf` bucket 3"), "{all}");
        assert!(all.contains("missing `_sum`"), "{all}");

        let no_count = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 3
h_sum 9
";
        let all = exposition_problems(no_count).join("\n");
        assert!(all.contains("missing `_count`"), "{all}");

        let decreasing = "\
# TYPE h histogram
h_bucket{le=\"100\"} 5
h_bucket{le=\"+Inf\"} 3
h_sum 9
h_count 3
";
        let all = exposition_problems(decreasing).join("\n");
        assert!(all.contains("cumulative bucket values decrease"), "{all}");
    }

    #[test]
    fn validator_handles_labeled_samples_and_their_malformations() {
        let good = "\
# TYPE g counter
g{a=\"x\",b=\"y\"} 1
g{a=\"x\",b=\"z\"} 2
g 3
";
        assert_eq!(exposition_problems(good), Vec::<String>::new());
        let duplicated = "\
# TYPE g counter
g{a=\"x\"} 1
g{a=\"x\"} 2
";
        let all = exposition_problems(duplicated).join("\n");
        assert!(all.contains("duplicate metric `g{a=\"x\"}`"), "{all}");
        for (bad, expect) in [
            ("# TYPE g counter\ng{a=x} 1\n", "unquoted label value"),
            ("# TYPE g counter\ng{9a=\"x\"} 1\n", "illegal label name"),
            ("# TYPE g counter\ng{a=\"x\" 1\n", "not a `name value` sample"),
            ("# TYPE g counter\ng{a=\"x\"b=\"y\"} 1\n", "comma-separated"),
            ("# TYPE h histogram\nh_bucket{op=\"a\"} 1\n", "bucket without `le`"),
            ("# TYPE h histogram\nh_bucket{le=\"wat\"} 1\n", "non-numeric `le` bound"),
        ] {
            let all = exposition_problems(bad).join("\n");
            assert!(all.contains(expect), "wanted `{expect}` for {bad:?}, got: {all}");
        }
    }

    #[test]
    fn every_leaf_of_a_nested_tree_is_emitted_once() {
        let counters = Json::Obj(vec![
            (
                "a".into(),
                Json::Obj(vec![
                    ("b".into(), Json::Int(1)),
                    ("c".into(), Json::Obj(vec![("d".into(), Json::Int(2))])),
                ]),
            ),
            ("e".into(), Json::Bool(false)),
        ]);
        let rendered = render_prometheus(&counters);
        let samples: Vec<&str> =
            rendered.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).collect();
        assert_eq!(samples, vec!["relim_a_b 1", "relim_a_c_d 2", "relim_e 0"]);
        assert_eq!(exposition_problems(&rendered), Vec::<String>::new());
    }
}
