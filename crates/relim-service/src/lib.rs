//! # relim-service — the round-elimination serving layer
//!
//! The paper's lower-bound machinery is driven through a stateful
//! [`Engine`](relim_core::Engine) session, but an in-process session dies
//! with its process: every consumer recomputes the same fixed-point
//! searches from scratch. This crate turns one shared session into a
//! **daemon** that accepts round-elimination jobs over a JSON-lines TCP
//! protocol, schedules them through a priority queue, and memoizes every
//! result in a **content-addressed store** with an on-disk persistence
//! layer — so a restarted daemon serves previously computed certificates
//! instantly, byte-for-byte.
//!
//! ## The pieces
//!
//! * [`ops`] — the servable operations (`autolb`, `autoub`, `iterate`,
//!   `sweep`, `zero-round`), each with a **canonical key** (the content
//!   address) and a **canonical text rendering** (the served result). The
//!   `relim` CLI renders its local subcommands through the same
//!   functions, which is what makes a served result *byte-identical* to
//!   the same query run in-process — the determinism contract of the
//!   service.
//! * [`store`] — the content-addressed result store: an in-memory map
//!   bounded by a FIFO eviction policy, backed by one JSON file per
//!   entry (written atomically, verified on load, corrupt files
//!   quarantined by skipping). Evicted entries stay readable through the
//!   disk fallback; the disk layer itself can be bounded by a **byte
//!   budget** with oldest-first GC. The store also carries the
//!   **in-flight table** behind request coalescing: identical cold
//!   queries attach as waiters to the first computation instead of
//!   recomputing.
//! * [`queue`] — the scheduling policy: interactive queries (single
//!   problems) are served before bulk sweeps, with an **aging rule** (a
//!   bulk job bypassed [`queue::DEFAULT_AGING_LIMIT`] times runs next
//!   regardless) so sweeps cannot starve. This realizes the ROADMAP
//!   "batch-level priorities" item as a policy carried by the service.
//! * [`protocol`] — the wire format: one compact JSON object per line,
//!   in both directions.
//! * [`server`] — the daemon: a thread-per-connection TCP listener, a
//!   configurable **executor pool** (default `min(4, cores)`) draining
//!   the job queue into the shared `Engine` — whose sharded sub-multiset
//!   index cache the executors memoize through together —
//!   request/latency counters, and graceful shutdown (the queue drains
//!   before the process exits). Served bytes are identical at any
//!   executor count.
//! * [`client`] — a blocking client for the protocol; the `relim
//!   submit` / `relim status` / `relim shutdown` subcommands and the
//!   bench kernels are thin wrappers over it.
//! * [`ring`] / [`fleet`] — the fleet tier: a deterministic
//!   consistent-hash ring partitions the digest space across a set of
//!   peer daemons (configuration-only agreement, no membership
//!   protocol), and cold queries whose address a remote peer owns are
//!   **read through** that peer (verified against the full canonical
//!   key) before falling back to local compute. Peer calls carry
//!   timeouts, bounded retries and a circuit breaker, so a dead owner
//!   degrades to local compute — same bytes, counted degradation.
//! * [`metrics`] / [`timeline`] — the observability surfaces: the
//!   Prometheus text-exposition rendering behind `{"op": "metrics"}`
//!   (derived from the same counters tree `status` serves, so the two
//!   can never drift — including per-op × per-outcome **latency
//!   histograms**) and the bounded scheduler event log behind
//!   `{"op": "timeline"}` (enqueue/promote/start/finish per job, dumped
//!   as JSON plus a text gantt).
//! * [`trace`] — request-scoped **distributed tracing**: a trace
//!   context minted at ingress rides `submit`/`fetch` requests across
//!   the fleet, each daemon records its spans (parse, queue-wait,
//!   compute, store and peer I/O) into a bounded span log served by
//!   `{"op": "trace"}`, and `relim trace` merges the per-daemon dumps
//!   into one cross-daemon tree. Responses never change: tracing on or
//!   off, the served bytes are identical.
//!
//! ## Example
//!
//! ```
//! use relim_service::client::Client;
//! use relim_service::ops::OpRequest;
//! use relim_service::server::{Server, ServerConfig};
//!
//! // An in-process daemon on an ephemeral port, store in memory.
//! let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let client = Client::new(handle.local_addr().to_string());
//!
//! let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
//! let first = client.submit(&op, None).unwrap();
//! let second = client.submit(&op, None).unwrap();
//! assert!(!first.cached && second.cached, "second ask is a store hit");
//! assert_eq!(first.result, second.result, "served bytes never change");
//!
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fleet;
pub mod metrics;
pub mod ops;
pub mod protocol;
pub mod queue;
pub mod ring;
pub mod server;
pub mod store;
pub mod timeline;
pub mod trace;

pub use client::Client;
pub use fleet::{Fleet, FleetConfig};
pub use ops::OpRequest;
pub use ring::Ring;
pub use server::{Server, ServerConfig, ServerHandle};
pub use store::ResultStore;
