//! The scheduler event log behind `{"op": "timeline"}`.
//!
//! Every job passing through the daemon leaves a short trail of events —
//! **enqueue** (accepted into the [`crate::queue::JobQueue`]),
//! **promote** (a bulk job aged past the interactive backlog), **start**
//! (an executor picked it up) and **finish** (served, `finish-error` on
//! failure) — each stamped with a monotone sequence number, a
//! nanosecond offset from server start, the job's content digest, its
//! operation name and its scheduling class. The log is a **bounded
//! window** (the oldest events are dropped, and counted, once
//! [`EventLog::capacity`] is exceeded), so a long-lived daemon pays a
//! fixed memory cost no matter how much traffic it serves.
//!
//! A [`TimelineSnapshot`] renders two ways: deterministic JSON
//! ([`TimelineSnapshot::to_json`], schema [`TIMELINE_SCHEMA`]) for
//! machines, and a text gantt ([`TimelineSnapshot::render_gantt`]) for
//! eyeballs — one row per job, one column per event in the window, `.`
//! while queued and `-` while executing, so promotion ordering and
//! executor overlap are visible at a glance.

use crate::queue::Class;
use relim_json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// The schema tag of the timeline JSON rendering.
pub const TIMELINE_SCHEMA: &str = "relim-timeline/1";

/// The event window the server keeps by default.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// What happened to a job at one point of its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Accepted into the job queue.
    Enqueue,
    /// Aged past the interactive backlog (always followed by `Start`).
    Promote,
    /// Picked up by an executor.
    Start,
    /// Served; `ok: false` means the reply was an error.
    Finish {
        /// Whether the job produced a result (vs an error or a panic).
        ok: bool,
    },
}

impl EventKind {
    /// The wire spelling used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::Promote => "promote",
            EventKind::Start => "start",
            EventKind::Finish { ok: true } => "finish",
            EventKind::Finish { ok: false } => "finish-error",
        }
    }

    /// The single-character marker used in the gantt rendering.
    fn marker(self) -> char {
        match self {
            EventKind::Enqueue => 'E',
            EventKind::Promote => 'P',
            EventKind::Start => 'S',
            EventKind::Finish { ok: true } => 'F',
            EventKind::Finish { ok: false } => 'X',
        }
    }
}

/// One recorded scheduler event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone position in the full event stream (survives window
    /// drops: the first retained event of a busy daemon has `seq > 0`).
    pub seq: u64,
    /// Nanoseconds since the log (i.e. the server) was created.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// The job's content address.
    pub digest: String,
    /// The operation name (`autolb`, `sweep`, …).
    pub op: &'static str,
    /// The job's scheduling class.
    pub class: Class,
}

struct LogInner {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, thread-safe scheduler event log (see the module docs).
pub struct EventLog {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<LogInner>,
}

impl EventLog {
    /// An empty log retaining up to `capacity` events (at least 1).
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(LogInner { events: VecDeque::new(), next_seq: 0, dropped: 0 }),
        }
    }

    /// The window size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(recorded, dropped)` totals without copying the window — cheap
    /// enough for a ping response (see [`crate::protocol::PingInfo`]).
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("event log lock poisoned");
        (inner.next_seq, inner.dropped)
    }

    /// Appends one event, dropping (and counting) the oldest beyond the
    /// window.
    pub fn record(&self, kind: EventKind, digest: &str, op: &'static str, class: Class) {
        let at_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().expect("event log lock poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(Event { seq, at_ns, kind, digest: digest.to_owned(), op, class });
    }

    /// A consistent copy of the current window and its drop accounting.
    pub fn snapshot(&self) -> TimelineSnapshot {
        let inner = self.inner.lock().expect("event log lock poisoned");
        TimelineSnapshot {
            window: self.capacity,
            recorded: inner.next_seq,
            dropped: inner.dropped,
            events: inner.events.iter().cloned().collect(),
        }
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog").field("capacity", &self.capacity).finish_non_exhaustive()
    }
}

/// A point-in-time copy of the event window.
#[derive(Debug, Clone)]
pub struct TimelineSnapshot {
    /// The window size the log was configured with.
    pub window: usize,
    /// Events ever recorded (including dropped ones).
    pub recorded: u64,
    /// Events dropped out of the window.
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<Event>,
}

impl TimelineSnapshot {
    /// The JSON rendering (schema [`TIMELINE_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("seq".into(), Json::Int(e.seq as i64)),
                    ("at_ns".into(), Json::Int(e.at_ns as i64)),
                    ("event".into(), Json::str(e.kind.as_str())),
                    ("digest".into(), Json::str(&e.digest)),
                    ("op".into(), Json::str(e.op)),
                    ("class".into(), Json::str(e.class.as_str())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(TIMELINE_SCHEMA)),
            ("window".into(), Json::Int(self.window as i64)),
            ("recorded".into(), Json::Int(self.recorded as i64)),
            ("dropped".into(), Json::Int(self.dropped as i64)),
            ("events".into(), Json::Arr(events)),
        ])
    }

    /// A text gantt: one row per job (in order of first appearance), one
    /// column per retained event. The job's own events show as markers
    /// (`E`nqueue, `P`romote, `S`tart, `F`inish, `X` = finished with an
    /// error); between its events the row shows `.` while queued and `-`
    /// while executing, so waiting time and executor overlap line up
    /// visually across rows.
    pub fn render_gantt(&self) -> String {
        let mut out = format!(
            "timeline: {} events recorded, {} in window ({} dropped)\n",
            self.recorded,
            self.events.len(),
            self.dropped
        );
        if self.events.is_empty() {
            return out;
        }
        // Rows keyed by digest, in order of first appearance.
        let mut order: Vec<&str> = Vec::new();
        for e in &self.events {
            if !order.contains(&e.digest.as_str()) {
                order.push(&e.digest);
            }
        }
        let label_of = |digest: &str| -> String {
            let e = self.events.iter().find(|e| e.digest == digest).expect("digest from events");
            let short: String = digest.chars().take(12).collect();
            format!("{short:<12} {:<10} {:<11}", e.op, e.class.as_str())
        };
        for digest in order {
            let mut lane = String::with_capacity(self.events.len());
            // Phase of *this* job as the global event stream advances.
            let mut queued = false;
            let mut running = false;
            for e in &self.events {
                if e.digest == digest {
                    lane.push(e.kind.marker());
                    match e.kind {
                        EventKind::Enqueue => queued = true,
                        EventKind::Promote => {}
                        EventKind::Start => (queued, running) = (false, true),
                        EventKind::Finish { .. } => (queued, running) = (false, false),
                    }
                } else if running {
                    lane.push('-');
                } else if queued {
                    lane.push('.');
                } else {
                    lane.push(' ');
                }
            }
            out.push_str(&label_of(digest));
            out.push('|');
            out.push_str(lane.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_drops_oldest_and_counts() {
        let log = EventLog::new(3);
        for i in 0..5 {
            let digest = format!("d{i}");
            log.record(EventKind::Enqueue, &digest, "iterate", Class::Interactive);
        }
        let snap = log.snapshot();
        assert_eq!((snap.recorded, snap.dropped, snap.events.len()), (5, 2, 3));
        assert_eq!(log.stats(), (5, 2), "stats() agrees with the snapshot");
        assert_eq!(snap.events[0].seq, 2, "oldest retained event keeps its stream position");
        assert_eq!(snap.window, 3);
    }

    #[test]
    fn json_rendering_is_parseable_and_complete() {
        let log = EventLog::new(8);
        log.record(EventKind::Enqueue, "abc", "autolb", Class::Interactive);
        log.record(EventKind::Start, "abc", "autolb", Class::Interactive);
        log.record(EventKind::Finish { ok: false }, "abc", "autolb", Class::Interactive);
        let rendered = log.snapshot().to_json().render();
        let doc = Json::parse(&rendered).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(TIMELINE_SCHEMA));
        let Some(Json::Arr(events)) = doc.get("events") else { panic!("events array") };
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].get("event").and_then(Json::as_str), Some("finish-error"));
        assert_eq!(events[1].get("seq").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn gantt_shows_lifecycle_phases_per_job() {
        let log = EventLog::new(16);
        log.record(EventKind::Enqueue, "aaaaaaaaaaaaaaaa", "sweep", Class::Bulk);
        log.record(EventKind::Enqueue, "bbbbbbbbbbbbbbbb", "autolb", Class::Interactive);
        log.record(EventKind::Start, "bbbbbbbbbbbbbbbb", "autolb", Class::Interactive);
        log.record(
            EventKind::Finish { ok: true },
            "bbbbbbbbbbbbbbbb",
            "autolb",
            Class::Interactive,
        );
        log.record(EventKind::Promote, "aaaaaaaaaaaaaaaa", "sweep", Class::Bulk);
        log.record(EventKind::Start, "aaaaaaaaaaaaaaaa", "sweep", Class::Bulk);
        log.record(EventKind::Finish { ok: true }, "aaaaaaaaaaaaaaaa", "sweep", Class::Bulk);
        let gantt = log.snapshot().render_gantt();
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), 3, "{gantt}");
        assert!(lines[0].starts_with("timeline: 7 events recorded, 7 in window (0 dropped)"));
        // The bulk job queues (dots) through the interactive job's run,
        // then promotes, starts and finishes; digests are truncated.
        assert_eq!(
            lines[1],
            format!("{:<12} {:<10} {:<11}|E...PSF", "aaaaaaaaaaaa", "sweep", "bulk")
        );
        assert_eq!(
            lines[2],
            format!("{:<12} {:<10} {:<11}| ESF", "bbbbbbbbbbbb", "autolb", "interactive")
        );
    }

    #[test]
    fn empty_log_renders_header_only() {
        let log = EventLog::new(4);
        let snap = log.snapshot();
        assert_eq!(snap.render_gantt(), "timeline: 0 events recorded, 0 in window (0 dropped)\n");
        let doc = Json::parse(&snap.to_json().render()).unwrap();
        let Some(Json::Arr(events)) = doc.get("events") else { panic!("events array") };
        assert!(events.is_empty());
    }
}
