//! The daemon: a thread-per-connection TCP server around one shared
//! [`Engine`] and one [`ResultStore`].
//!
//! ## Concurrency architecture
//!
//! * An **accept thread** owns the listener and spawns one thread per
//!   connection (the protocol is blocking line-at-a-time, so a thread
//!   per connection is the simplest correct shape; the expensive work
//!   never happens on these threads).
//! * Connection threads parse requests. Store **hits are served
//!   inline** — a cached certificate never waits behind the queue.
//!   Misses claim the store's in-flight table: the first identical
//!   request becomes the *owner* and is enqueued as a job; later
//!   identical requests attach as **coalesced waiters** on the owner's
//!   result instead of recomputing. The connection thread blocks on a
//!   per-job (or per-waiter) reply channel either way.
//! * A pool of **executor threads** (`ServerConfig::executors`, default
//!   `min(4, available parallelism)`) drains the [`JobQueue`]
//!   (interactive before bulk, with aging — see [`crate::queue`]) into
//!   the shared `Engine`. Executors share the engine's *sharded*
//!   sub-multiset index cache, so concurrent jobs reuse each other's
//!   memo state; served bytes are identical at any executor count
//!   because every cache hit is byte-identical to a rebuild and every
//!   result is canonical.
//! * **Graceful shutdown**: a `shutdown` request flips the flag, wakes
//!   the executors and unblocks the accept loop. New jobs are refused
//!   (checked under the queue lock, so no job is ever lost in the
//!   race), already-queued jobs are drained and answered — waiters
//!   included — then every thread exits and [`ServerHandle::join`]
//!   returns.
//!
//! An identical query that misses both the store and the coalescing
//! window (the owner completed between this request's store lookup and
//! its claim) recomputes — and computes the same canonical bytes, so
//! the overwriting store write is harmless. Coalescing is a throughput
//! optimization on top of idempotence, not a correctness mechanism.
//!
//! ## Observability
//!
//! Every job request records its wall time into a per-op × per-outcome
//! **latency histogram** (power-of-two buckets, see
//! [`crate::metrics::LatencyHistogram`]) exposed under
//! `counters.latency.<op>.<outcome>` and derived into a Prometheus
//! histogram family by the metrics endpoint. With
//! [`ServerConfig::trace`] the daemon additionally records **request
//! spans** — parse, store-read, queue-wait, compute (with engine
//! counter deltas attached), store-write, peer-fetch attempts and
//! fetch serves — into a bounded [`SpanLog`] served by the `trace` op
//! (see [`crate::trace`]). Tracing never changes a served byte: trace
//! context rides in requests only, responses are identical with the
//! flag on or off, and with it off every recording site is one branch
//! on a `None`.

use crate::fleet::{self, FetchOutcome, Fleet, FleetConfig};
use crate::metrics::LatencyHistogram;
use crate::ops::OpRequest;
use crate::protocol::{self, PingInfo, Request, RequestBody};
use crate::queue::{Class, JobQueue, DEFAULT_AGING_LIMIT};
use crate::store::{InflightClaim, ResultStore};
use crate::timeline::{EventKind, EventLog, DEFAULT_EVENT_CAPACITY};
use crate::trace::{FetchTrace, Span, SpanLog, TraceContext, TraceSnapshot, DEFAULT_SPAN_CAPACITY};
use relim_core::Engine;
use relim_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine pool width (0 = available parallelism). Output bytes never
    /// depend on this.
    pub threads: usize,
    /// Executor threads draining the job queue (0 = `min(4, available
    /// parallelism)`). Output bytes never depend on this either — the
    /// concurrency test battery and the CI multi-executor smoke pin it.
    pub executors: usize,
    /// Directory of the persistent store; `None` keeps results in
    /// memory only.
    pub store_dir: Option<PathBuf>,
    /// In-memory store bound (see [`ResultStore`]).
    pub store_capacity: usize,
    /// Disk byte budget of the persistent store; `None` leaves the disk
    /// layer unbounded (see [`ResultStore::persistent_with_budget`]).
    pub store_budget_bytes: Option<u64>,
    /// Aging limit of the bulk class (see [`crate::queue`]).
    pub aging_limit: u32,
    /// Fleet peer addresses (`host:port`), excluding this daemon; empty
    /// means no fleet tier. Every member must be configured with the
    /// same total member set (its peers plus itself), spelled
    /// identically — see [`crate::fleet`].
    pub peers: Vec<String>,
    /// Per-attempt connect/read/write timeout of peer calls, in
    /// milliseconds.
    pub peer_timeout_ms: u64,
    /// Record request spans into a bounded [`SpanLog`] served by the
    /// `trace` op. Served bytes are byte-identical with this on or
    /// off; off, every recording site is one branch on a `None`.
    pub trace: bool,
}

/// The default per-attempt peer-call timeout (`--peer-timeout-ms`).
pub const DEFAULT_PEER_TIMEOUT_MS: u64 = 2000;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            executors: 0,
            store_dir: None,
            store_capacity: 1024,
            store_budget_bytes: None,
            aging_limit: DEFAULT_AGING_LIMIT,
            peers: Vec::new(),
            peer_timeout_ms: DEFAULT_PEER_TIMEOUT_MS,
            trace: false,
        }
    }
}

/// The executor-pool width `configured` resolves to: `0` means
/// `min(4, available parallelism)` — wide enough to overlap queue waits,
/// narrow enough not to oversubscribe the engine's worker pool.
pub fn resolve_executors(configured: usize) -> usize {
    if configured == 0 {
        Engine::available_parallelism().min(4)
    } else {
        configured
    }
}

/// One queued unit of work.
struct Job {
    op: OpRequest,
    digest: String,
    key: String,
    reply: mpsc::Sender<Result<String, String>>,
    /// Trace context of the owning request, when it was traced: the
    /// executor records queue-wait / compute / store-write spans under
    /// the request's root span.
    trace: Option<JobTrace>,
}

/// What the executor needs to attach its spans to the owning request.
struct JobTrace {
    trace_id: u64,
    /// The request's root span id — the parent of the executor spans.
    parent: u64,
    /// When the job entered the queue (span-log clock): the queue-wait
    /// span runs from here to the executor's pop.
    enqueued_ns: u64,
}

/// The op lanes of the latency grid, in counters-tree spelling (the
/// `ops` object uses the same keys, so exposition names line up).
const LANE_OPS: [&str; 5] = ["autolb", "autoub", "iterate", "sweep", "zero_round"];

/// Per-op × per-outcome latency histograms: every job request records
/// into exactly one cell, so the cells partition the traffic. Each
/// cell is a power-of-two-bucketed [`LatencyHistogram`] the metrics
/// endpoint derives into a Prometheus histogram family.
struct LatencyGrid {
    cells: [[LatencyHistogram; 3]; 5],
}

impl LatencyGrid {
    fn new() -> LatencyGrid {
        LatencyGrid {
            cells: std::array::from_fn(|_| std::array::from_fn(|_| LatencyHistogram::new())),
        }
    }

    fn record(&self, op: usize, outcome: Outcome, ns: u64) {
        self.cells[op][outcome as usize].record(ns);
    }

    fn json(&self) -> Json {
        Json::Obj(
            LANE_OPS
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    (
                        (*name).to_owned(),
                        Json::Obj(vec![
                            ("hit".to_owned(), self.cells[i][Outcome::Hit as usize].json()),
                            (
                                "computed".to_owned(),
                                self.cells[i][Outcome::Computed as usize].json(),
                            ),
                            ("error".to_owned(), self.cells[i][Outcome::Error as usize].json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// How a job request left `handle_line` — the latency cell it lands in.
#[derive(Clone, Copy)]
enum Outcome {
    /// Served from the content-addressed store, inline.
    Hit = 0,
    /// Computed (or coalesced onto a computation) via the queue.
    Computed = 1,
    /// Any error exit: bad parameters, refused enqueue, failed or
    /// panicked execution, a dead executor.
    Error = 2,
}

impl Outcome {
    /// The spelling the root span's `outcome` attribute uses.
    fn as_str(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Computed => "computed",
            Outcome::Error => "error",
        }
    }
}

/// The `latency` grid row of an [`OpRequest`] (indexes [`LANE_OPS`]).
fn op_lane_index(op: &OpRequest) -> usize {
    match op {
        OpRequest::AutoLb { .. } => 0,
        OpRequest::AutoUb { .. } => 1,
        OpRequest::Iterate { .. } => 2,
        OpRequest::Sweep { .. } => 3,
        OpRequest::ZeroRound { .. } => 4,
    }
}

/// Shared state behind the daemon's threads.
struct Shared {
    engine: Engine,
    store: ResultStore,
    /// The address this daemon bound — stamps trace dumps so a merged
    /// cross-daemon tree can attribute every span.
    self_addr: String,
    /// The span log, when [`ServerConfig::trace`] was set. `None` is
    /// the off switch: every recording site branches on it and does
    /// nothing else.
    spans: Option<SpanLog>,
    /// The fleet tier, when `--peers` was given: remote owners are read
    /// through before local compute (see [`crate::fleet`]).
    fleet: Option<Fleet>,
    queue: Mutex<JobQueue<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// When the daemon started — the `uptime_ms` a ping reports.
    started: Instant,
    /// Resolved executor-pool width (for the status response).
    executors: usize,
    /// Live connection threads — joined (bounded-wait) at shutdown so a
    /// response write never races process exit.
    active_connections: AtomicU64,
    requests_total: AtomicU64,
    n_autolb: AtomicU64,
    n_autoub: AtomicU64,
    n_iterate: AtomicU64,
    n_sweep: AtomicU64,
    n_zeroround: AtomicU64,
    n_status: AtomicU64,
    n_metrics: AtomicU64,
    n_timeline: AtomicU64,
    n_lookup: AtomicU64,
    n_fetch: AtomicU64,
    n_ping: AtomicU64,
    n_trace: AtomicU64,
    n_errors: AtomicU64,
    /// Connections dropped mid-line (a torn peer write): the partial
    /// frame is discarded, counted, never parsed.
    torn_lines: AtomicU64,
    /// Inline store hits by op kind — distinguishes queue-served results
    /// from cached ones, which the aggregate `ops` counters cannot.
    h_autolb: AtomicU64,
    h_autoub: AtomicU64,
    h_iterate: AtomicU64,
    h_sweep: AtomicU64,
    h_zeroround: AtomicU64,
    /// Per-op × per-outcome latency histograms (see [`LatencyGrid`]).
    latency: LatencyGrid,
    /// The bounded scheduler event log behind `{"op": "timeline"}`.
    events: EventLog,
}

impl Shared {
    fn count_op(&self, op: &OpRequest) {
        let counter = match op {
            OpRequest::AutoLb { .. } => &self.n_autolb,
            OpRequest::AutoUb { .. } => &self.n_autoub,
            OpRequest::Iterate { .. } => &self.n_iterate,
            OpRequest::Sweep { .. } => &self.n_sweep,
            OpRequest::ZeroRound { .. } => &self.n_zeroround,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn count_store_hit(&self, op: &OpRequest) {
        let counter = match op {
            OpRequest::AutoLb { .. } => &self.h_autolb,
            OpRequest::AutoUb { .. } => &self.h_autoub,
            OpRequest::Iterate { .. } => &self.h_iterate,
            OpRequest::Sweep { .. } => &self.h_sweep,
            OpRequest::ZeroRound { .. } => &self.h_zeroround,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one job request's wall time into its op × outcome
    /// histogram cell. Called on **every** exit of the job path —
    /// error exits included, so the cells partition the traffic.
    fn record_latency(&self, op: usize, outcome: Outcome, ns: u64) {
        self.latency.record(op, outcome, ns);
    }

    /// The `counters` object of a status response.
    fn counters_json(&self) -> Json {
        let store = self.store.stats();
        let (promotions, max_depth, pending, aging_limit) = {
            let q = self.queue.lock().expect("queue lock poisoned");
            (q.promotions(), q.max_depth(), q.len(), q.aging_limit())
        };
        let engine_report = self.engine.report();
        let engine_pairs: Vec<(String, Json)> = engine_report
            .snapshot_pairs()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::Int(v as i64)))
            .collect();
        Json::Obj(
            vec![
                (
                    "requests_total".into(),
                    Json::Int(self.requests_total.load(Ordering::Relaxed) as i64),
                ),
                (
                    "ops".into(),
                    Json::Obj(vec![
                        ("autolb".into(), Json::Int(self.n_autolb.load(Ordering::Relaxed) as i64)),
                        ("autoub".into(), Json::Int(self.n_autoub.load(Ordering::Relaxed) as i64)),
                        (
                            "iterate".into(),
                            Json::Int(self.n_iterate.load(Ordering::Relaxed) as i64),
                        ),
                        ("sweep".into(), Json::Int(self.n_sweep.load(Ordering::Relaxed) as i64)),
                        (
                            "zero_round".into(),
                            Json::Int(self.n_zeroround.load(Ordering::Relaxed) as i64),
                        ),
                        ("status".into(), Json::Int(self.n_status.load(Ordering::Relaxed) as i64)),
                        (
                            "metrics".into(),
                            Json::Int(self.n_metrics.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "timeline".into(),
                            Json::Int(self.n_timeline.load(Ordering::Relaxed) as i64),
                        ),
                        ("lookup".into(), Json::Int(self.n_lookup.load(Ordering::Relaxed) as i64)),
                        ("fetch".into(), Json::Int(self.n_fetch.load(Ordering::Relaxed) as i64)),
                        ("ping".into(), Json::Int(self.n_ping.load(Ordering::Relaxed) as i64)),
                        ("trace".into(), Json::Int(self.n_trace.load(Ordering::Relaxed) as i64)),
                    ]),
                ),
                ("errors".into(), Json::Int(self.n_errors.load(Ordering::Relaxed) as i64)),
                ("torn_lines".into(), Json::Int(self.torn_lines.load(Ordering::Relaxed) as i64)),
                (
                    "store_hits".into(),
                    Json::Obj(vec![
                        ("autolb".into(), Json::Int(self.h_autolb.load(Ordering::Relaxed) as i64)),
                        ("autoub".into(), Json::Int(self.h_autoub.load(Ordering::Relaxed) as i64)),
                        (
                            "iterate".into(),
                            Json::Int(self.h_iterate.load(Ordering::Relaxed) as i64),
                        ),
                        ("sweep".into(), Json::Int(self.h_sweep.load(Ordering::Relaxed) as i64)),
                        (
                            "zero_round".into(),
                            Json::Int(self.h_zeroround.load(Ordering::Relaxed) as i64),
                        ),
                    ]),
                ),
                (
                    "store".into(),
                    Json::Obj(vec![
                        ("mem_hits".into(), Json::Int(store.mem_hits as i64)),
                        ("disk_hits".into(), Json::Int(store.disk_hits as i64)),
                        ("misses".into(), Json::Int(store.misses as i64)),
                        ("stores".into(), Json::Int(store.stores as i64)),
                        ("evictions".into(), Json::Int(store.evictions as i64)),
                        ("corrupt_skipped".into(), Json::Int(store.corrupt_skipped as i64)),
                        ("coalesced".into(), Json::Int(store.coalesced as i64)),
                        ("gc_evictions".into(), Json::Int(store.gc_evictions as i64)),
                        ("tmp_swept".into(), Json::Int(store.tmp_swept as i64)),
                        ("disk_bytes".into(), Json::Int(store.disk_bytes as i64)),
                        ("mem_entries".into(), Json::Int(store.mem_entries as i64)),
                        ("persistent".into(), Json::Bool(self.store.is_persistent())),
                    ]),
                ),
                (
                    "queue".into(),
                    Json::Obj(vec![
                        ("pending".into(), Json::Int(pending as i64)),
                        ("max_depth".into(), Json::Int(max_depth as i64)),
                        ("aged_promotions".into(), Json::Int(promotions as i64)),
                        ("aging_limit".into(), Json::Int(i64::from(aging_limit))),
                    ]),
                ),
                ("latency".into(), self.latency.json()),
                {
                    let (recorded, dropped) = self.events.stats();
                    (
                        "timeline".into(),
                        Json::Obj(vec![
                            ("recorded".into(), Json::Int(recorded as i64)),
                            ("dropped".into(), Json::Int(dropped as i64)),
                            ("window".into(), Json::Int(self.events.capacity() as i64)),
                        ]),
                    )
                },
                {
                    // Always present, zeros with tracing off: the
                    // scrape surface is identical either way.
                    let (recorded, dropped, window) = match &self.spans {
                        Some(log) => {
                            let (recorded, dropped) = log.stats();
                            (recorded, dropped, log.capacity() as u64)
                        }
                        None => (0, 0, 0),
                    };
                    (
                        "trace".into(),
                        Json::Obj(vec![
                            ("recorded".into(), Json::Int(recorded as i64)),
                            ("dropped".into(), Json::Int(dropped as i64)),
                            ("window".into(), Json::Int(window as i64)),
                        ]),
                    )
                },
                (
                    // Always present, zeros without a fleet: the scrape
                    // surface is identical with and without `--peers`.
                    "peer".into(),
                    match &self.fleet {
                        Some(fleet) => fleet.counters_json(),
                        None => fleet::zero_counters_json(),
                    },
                ),
                ("engine".into(), Json::Obj(engine_pairs)),
                ("threads".into(), Json::Int(self.engine.threads() as i64)),
                ("executors".into(), Json::Int(self.executors as i64)),
            ]
            .into_iter()
            .chain(
                // Per-peer counters only exist when a fleet is configured.
                self.fleet.as_ref().map(|fleet| ("peers".to_owned(), fleet.per_peer_json())),
            )
            .collect::<Vec<_>>(),
        )
    }
}

/// The daemon entry point (see [`Server::spawn`]).
pub struct Server;

/// A handle on a running daemon: its bound address, a shutdown trigger
/// and the join point.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    executors: Vec<JoinHandle<()>>,
    /// The breaker-recovery prober — spawned only with a fleet.
    prober: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// spawns the accept thread and the executor pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-directory failures.
    pub fn spawn(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let store = match &config.store_dir {
            Some(dir) => ResultStore::persistent_with_budget(
                dir,
                config.store_capacity,
                config.store_budget_bytes,
            )?,
            None => ResultStore::in_memory(config.store_capacity),
        };
        let executors = resolve_executors(config.executors);
        // The daemon's own ring name is the address it actually bound —
        // fleet members must bind the very address their peers dial
        // (the CLI's `--addr`), so the spellings agree by construction.
        let fleet = if config.peers.is_empty() {
            None
        } else {
            Some(Fleet::new(&FleetConfig::new(
                config.peers.clone(),
                addr.to_string(),
                std::time::Duration::from_millis(config.peer_timeout_ms.max(1)),
            )))
        };
        let shared = Arc::new(Shared {
            engine: Engine::builder().threads(config.threads).build(),
            store,
            self_addr: addr.to_string(),
            spans: config.trace.then(|| SpanLog::new(DEFAULT_SPAN_CAPACITY)),
            fleet,
            queue: Mutex::new(JobQueue::new(config.aging_limit)),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            executors,
            active_connections: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            n_autolb: AtomicU64::new(0),
            n_autoub: AtomicU64::new(0),
            n_iterate: AtomicU64::new(0),
            n_sweep: AtomicU64::new(0),
            n_zeroround: AtomicU64::new(0),
            n_status: AtomicU64::new(0),
            n_metrics: AtomicU64::new(0),
            n_timeline: AtomicU64::new(0),
            n_lookup: AtomicU64::new(0),
            n_fetch: AtomicU64::new(0),
            n_ping: AtomicU64::new(0),
            n_trace: AtomicU64::new(0),
            n_errors: AtomicU64::new(0),
            torn_lines: AtomicU64::new(0),
            h_autolb: AtomicU64::new(0),
            h_autoub: AtomicU64::new(0),
            h_iterate: AtomicU64::new(0),
            h_sweep: AtomicU64::new(0),
            h_zeroround: AtomicU64::new(0),
            latency: LatencyGrid::new(),
            events: EventLog::new(DEFAULT_EVENT_CAPACITY),
        });

        let executors = (0..executors)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        // A fleet gets a background prober: Open breakers are re-dialed
        // from here once their cooldown elapses, so recovery never rides
        // on (or delays) a live request — see `Fleet::probe_open_breakers`.
        let prober = shared.fleet.is_some().then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || prober_loop(&shared))
        });
        Ok(ServerHandle { addr, shared, accept, executors, prober })
    }
}

/// How often the background prober wakes to scan for Open breakers due
/// a recovery dial (the dial itself is gated by the breaker cooldown).
const PROBE_INTERVAL_MS: u64 = 100;

fn prober_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        if let Some(fleet) = &shared.fleet {
            fleet.probe_open_breakers();
        }
        std::thread::sleep(std::time::Duration::from_millis(PROBE_INTERVAL_MS));
    }
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers a graceful shutdown from the hosting process (the wire
    /// `shutdown` request does the same).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// The current counters (same content as a `status` response).
    pub fn counters(&self) -> Json {
        self.shared.counters_json()
    }

    /// Waits for the accept thread and every executor to exit (after a
    /// shutdown trigger; the queue is drained first).
    pub fn join(self) {
        let _ = self.join_and_report();
    }

    /// Like [`ServerHandle::join`], but returns the final counters —
    /// snapshotted *after* the queue drained, so the numbers cover every
    /// served job.
    pub fn join_and_report(self) -> Json {
        let shared = Arc::clone(&self.shared);
        let _ = self.accept.join();
        for executor in self.executors {
            let _ = executor.join();
        }
        if let Some(prober) = self.prober {
            let _ = prober.join();
        }
        // Give in-flight connection threads a bounded window to finish
        // writing their final responses (they are detached; without this
        // the hosting process could exit mid-write).
        for _ in 0..500 {
            if shared.active_connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        shared.counters_json()
    }
}

fn trigger_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.cv.notify_all();
    // Unblock the accept loop: a throwaway connection makes `incoming`
    // yield once more, after which the loop observes the flag.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().expect("bound listener has an address");
        std::thread::spawn(move || serve_connection(stream, &shared, addr));
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    loop {
        let promotions_before = queue.promotions();
        if let Some((class, job)) = queue.pop() {
            let promoted = queue.promotions() > promotions_before;
            drop(queue);
            if promoted {
                shared.events.record(EventKind::Promote, &job.digest, job.op.name(), class);
            }
            shared.events.record(EventKind::Start, &job.digest, job.op.name(), class);
            // Traced only when the owning request carried a context
            // *and* this daemon records spans; `None` otherwise — the
            // untraced path pays these branches and nothing else.
            let traced = match (&job.trace, &shared.spans) {
                (Some(jt), Some(log)) => Some((jt, log)),
                _ => None,
            };
            if let Some((jt, log)) = traced {
                let now = log.now_ns();
                log.record(Span {
                    trace_id: jt.trace_id,
                    span_id: log.next_span_id(),
                    parent: Some(jt.parent),
                    name: "queue-wait".to_owned(),
                    start_ns: jt.enqueued_ns,
                    dur_ns: now.saturating_sub(jt.enqueued_ns),
                    attrs: vec![("class".to_owned(), class.as_str().to_owned())],
                });
            }
            let report_before = traced.map(|_| shared.engine.report());
            let compute_start = traced.map(|(_, log)| log.now_ns());
            // A panicking op must never kill this thread with the job's
            // in-flight entry still claimed: coalesced waiters would
            // block forever on their receivers and every future
            // identical request would attach to the dead claim — the
            // key permanently poisoned. Catch the panic and turn it
            // into an ordinary error result, so the complete/reply
            // below always run and the executor survives.
            let execution = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(test)]
                test_hooks::fire(&job.digest);
                job.op.execute(&shared.engine)
            }));
            let result = match execution {
                Ok(r) => r.map_err(|e| e.to_string()),
                Err(payload) => Err(format!("job panicked: {}", panic_message(&payload))),
            };
            if let Some((jt, log)) = traced {
                // Engine counter deltas ride on the compute span. With
                // a shared engine concurrent jobs can bleed into each
                // other's deltas — attribution, not exact accounting.
                let mut attrs = vec![("ok".to_owned(), result.is_ok().to_string())];
                if let Some(before) = &report_before {
                    for (k, v) in shared.engine.report().delta_pairs(before) {
                        if v != 0 {
                            attrs.push((k.to_owned(), v.to_string()));
                        }
                    }
                }
                let start = compute_start.unwrap_or(0);
                let now = log.now_ns();
                log.record(Span {
                    trace_id: jt.trace_id,
                    span_id: log.next_span_id(),
                    parent: Some(jt.parent),
                    name: "compute".to_owned(),
                    start_ns: start,
                    dur_ns: now.saturating_sub(start),
                    attrs,
                });
            }
            if let Ok(result_text) = &result {
                let write_start = traced.map(|(_, log)| log.now_ns());
                if let Err(e) = shared.store.put(&job.digest, &job.key, result_text) {
                    eprintln!("relim-service: store write failed for {}: {e}", job.digest);
                }
                if let Some((jt, log)) = traced {
                    let start = write_start.unwrap_or(0);
                    let now = log.now_ns();
                    log.record(Span {
                        trace_id: jt.trace_id,
                        span_id: log.next_span_id(),
                        parent: Some(jt.parent),
                        name: "store-write".to_owned(),
                        start_ns: start,
                        dur_ns: now.saturating_sub(start),
                        attrs: vec![("bytes".to_owned(), result_text.len().to_string())],
                    });
                }
            }
            // Store first, complete second: a request that misses the
            // coalescing window after this point hits the store instead.
            shared.store.complete(&job.key, &result);
            let finished = EventKind::Finish { ok: result.is_ok() };
            shared.events.record(finished, &job.digest, job.op.name(), class);
            // A dropped receiver (client gone) is fine — work is stored.
            let _ = job.reply.send(result);
            queue = shared.queue.lock().expect("queue lock poisoned");
        } else if shared.shutdown.load(Ordering::SeqCst) {
            return;
        } else {
            queue = shared.cv.wait(queue).expect("queue lock poisoned");
        }
    }
}

/// A human-readable rendering of a caught panic payload (`panic!` with a
/// string literal or a formatted message covers practically all of
/// them).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// Enqueues a job unless the daemon is shutting down. The flag check and
/// the push happen under the same lock the executor's exit check uses,
/// so an accepted job is always served.
fn enqueue(shared: &Shared, class: Class, job: Job) -> Result<(), String> {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err("server is shutting down".to_owned());
    }
    // Recorded under the queue lock: the job is not poppable until the
    // lock drops, so its `enqueue` event always precedes its `start`.
    shared.events.record(EventKind::Enqueue, &job.digest, job.op.name(), class);
    queue.push(class, job);
    shared.cv.notify_one();
    Ok(())
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    shared.active_connections.fetch_add(1, Ordering::SeqCst);
    serve_connection_inner(stream, shared, addr);
    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
}

fn serve_connection_inner(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Manual `read_line` instead of `lines()`: the framing is
        // line-delimited, so bytes arriving without their terminator —
        // a peer that died mid-write — are a **torn line**, not a
        // request. They are counted and discarded, never parsed: a
        // half-written `{"op":"shutd` must not become anything.
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // clean EOF at a frame boundary
            Ok(_) if !line.ends_with('\n') => {
                shared.torn_lines.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Ok(_) => {}
            Err(_) => {
                // A read error can also strand partial bytes in the
                // buffer (`read_line` appends what it read before
                // failing) — same torn frame, same accounting.
                if !line.is_empty() {
                    shared.torn_lines.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.requests_total.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown_after_send) = handle_line(&line, shared);
        let sent = writer.write_all(response.as_bytes()).is_ok()
            && writer.write_all(b"\n").is_ok()
            && writer.flush().is_ok();
        if shutdown_after_send {
            // The acknowledgement is on the wire (or the peer is gone)
            // before the teardown starts, so the requester always hears
            // back.
            trigger_shutdown(shared, addr);
        }
        if !sent {
            break;
        }
    }
}

/// Records the spans of one traced job request. Constructed only when
/// the daemon records spans *and* the request carried a trace context;
/// every recording site on the untraced path is one `Option` branch.
///
/// The root `request` span is recorded last (at [`RequestTracer::finish`],
/// with the outcome attached); child spans reference its pre-allocated
/// id, so the tree is well-formed regardless of recording order.
struct RequestTracer<'a> {
    log: &'a SpanLog,
    trace_id: u64,
    /// The parent from the wire — the requester's span, on traced
    /// cross-daemon hops. `None` at a fresh ingress.
    wire_parent: Option<u64>,
    root_id: u64,
    root_start_ns: u64,
    op: &'static str,
}

impl<'a> RequestTracer<'a> {
    /// Allocates the root span and records the `parse` child covering
    /// `parse_start_ns`..now (the request line was parsed just before
    /// this tracer could exist).
    fn begin(
        log: &'a SpanLog,
        ctx: &TraceContext,
        op: &'static str,
        parse_start_ns: u64,
    ) -> RequestTracer<'a> {
        let root_id = log.next_span_id();
        let parse_id = log.next_span_id();
        let now = log.now_ns();
        log.record(Span {
            trace_id: ctx.trace_id,
            span_id: parse_id,
            parent: Some(root_id),
            name: "parse".to_owned(),
            start_ns: parse_start_ns,
            dur_ns: now.saturating_sub(parse_start_ns),
            attrs: Vec::new(),
        });
        RequestTracer {
            log,
            trace_id: ctx.trace_id,
            wire_parent: ctx.parent,
            root_id,
            root_start_ns: parse_start_ns,
            op,
        }
    }

    fn now_ns(&self) -> u64 {
        self.log.now_ns()
    }

    /// Records a child of the root span, `start_ns`..now.
    fn child(&self, name: &str, start_ns: u64, attrs: Vec<(String, String)>) {
        let span_id = self.log.next_span_id();
        let now = self.log.now_ns();
        self.log.record(Span {
            trace_id: self.trace_id,
            span_id,
            parent: Some(self.root_id),
            name: name.to_owned(),
            start_ns,
            dur_ns: now.saturating_sub(start_ns),
            attrs,
        });
    }

    /// The context peer fetches run under: their spans parent onto this
    /// request's root (see [`crate::fleet`]).
    fn fetch_trace(&self) -> FetchTrace<'a> {
        FetchTrace { log: self.log, trace_id: self.trace_id, parent: self.root_id }
    }

    /// Records the root `request` span with the outcome attached.
    fn finish(self, outcome: Outcome) {
        let now = self.log.now_ns();
        self.log.record(Span {
            trace_id: self.trace_id,
            span_id: self.root_id,
            parent: self.wire_parent,
            name: "request".to_owned(),
            start_ns: self.root_start_ns,
            dur_ns: now.saturating_sub(self.root_start_ns),
            attrs: vec![
                ("op".to_owned(), self.op.to_owned()),
                ("outcome".to_owned(), outcome.as_str().to_owned()),
            ],
        });
    }
}

/// [`RequestTracer::finish`] through an `Option` — the exit sites of
/// the job path call this on every return.
fn finish_trace(tracer: Option<RequestTracer<'_>>, outcome: Outcome) {
    if let Some(tracer) = tracer {
        tracer.finish(outcome);
    }
}

/// Handles one request line; returns the response line and whether a
/// graceful shutdown must be triggered *after* the response is sent.
fn handle_line(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    // Span-log timestamp of the parse start; `None` with tracing off
    // (whether the *request* is traced is only known after parsing).
    let parse_start = shared.spans.as_ref().map(SpanLog::now_ns);
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.n_errors.fetch_add(1, Ordering::Relaxed);
            return (protocol::render_error_response(None, &e), false);
        }
    };
    let Request { id, body } = request;
    match body {
        RequestBody::Status => {
            shared.n_status.fetch_add(1, Ordering::Relaxed);
            (protocol::render_status_response(id, shared.counters_json()), false)
        }
        RequestBody::Metrics => {
            shared.n_metrics.fetch_add(1, Ordering::Relaxed);
            let text = crate::metrics::render_prometheus(&shared.counters_json());
            (protocol::render_metrics_response(id, &text), false)
        }
        RequestBody::Timeline => {
            shared.n_timeline.fetch_add(1, Ordering::Relaxed);
            let snapshot = shared.events.snapshot();
            let gantt = snapshot.render_gantt();
            (protocol::render_timeline_response(id, snapshot.to_json(), &gantt), false)
        }
        RequestBody::Lookup { digest } => {
            shared.n_lookup.fetch_add(1, Ordering::Relaxed);
            match shared.store.lookup_digest(&digest) {
                Some((key, result)) => {
                    (protocol::render_lookup_response(id, &digest, &key, &result), false)
                }
                None => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    let error = format!("no stored entry for digest {digest}");
                    (protocol::render_error_response(id, &error), false)
                }
            }
        }
        RequestBody::Fetch { digest, trace } => {
            shared.n_fetch.fetch_add(1, Ordering::Relaxed);
            // A read-only peer read: never counted as store traffic
            // (the hits+misses↔submits reconciliation stays intact on
            // both sides of the wire). The stored key is re-digested so
            // even a corrupted memory entry cannot cross the fleet.
            let entry = shared
                .store
                .lookup_digest(&digest)
                .filter(|(key, _)| crate::store::digest_of(key) == digest);
            if let (Some(log), Some(ctx)) = (&shared.spans, &trace) {
                // The serving half of a traced cross-daemon fetch: its
                // parent is the requester's peer-fetch attempt span, so
                // the merged tree hangs this daemon's work under it.
                let now = log.now_ns();
                let start = parse_start.unwrap_or(now);
                log.record(Span {
                    trace_id: ctx.trace_id,
                    span_id: log.next_span_id(),
                    parent: ctx.parent,
                    name: "fetch-serve".to_owned(),
                    start_ns: start,
                    dur_ns: now.saturating_sub(start),
                    attrs: vec![("found".to_owned(), entry.is_some().to_string())],
                });
            }
            let entry = entry.as_ref().map(|(key, result)| (key.as_str(), result.as_str()));
            (protocol::render_fetch_response(id, &digest, entry), false)
        }
        RequestBody::Ping => {
            shared.n_ping.fetch_add(1, Ordering::Relaxed);
            let timeline_dropped = shared.events.stats().1;
            let (span_window, span_dropped) = match &shared.spans {
                Some(log) => (log.capacity() as u64, log.stats().1),
                None => (0, 0),
            };
            let info = PingInfo {
                uptime_ms: shared.started.elapsed().as_millis() as u64,
                store_entries: shared.store.stats().mem_entries as u64,
                timeline_window: shared.events.capacity() as u64,
                timeline_dropped,
                span_window,
                span_dropped,
            };
            (protocol::render_ping_response(id, &info), false)
        }
        RequestBody::Trace { trace_id } => {
            shared.n_trace.fetch_add(1, Ordering::Relaxed);
            let snapshot = match &shared.spans {
                Some(log) => log.snapshot(trace_id),
                None => TraceSnapshot::disabled(),
            };
            (protocol::render_trace_response(id, snapshot.to_json(&shared.self_addr)), false)
        }
        RequestBody::Shutdown => (protocol::render_shutdown_response(id), true),
        RequestBody::Job { op, class, trace } => {
            let start = Instant::now();
            let elapsed = move || start.elapsed().as_nanos() as u64;
            shared.count_op(&op);
            let lane = op_lane_index(&op);
            // Traced only when the daemon records spans *and* the
            // request carried a context — `None` (one branch per site)
            // otherwise.
            let tracer = match (&shared.spans, &trace) {
                (Some(log), Some(ctx)) => {
                    Some(RequestTracer::begin(log, ctx, op.name(), parse_start.unwrap_or(0)))
                }
                _ => None,
            };
            let key = match op.canonical_key() {
                Ok(key) => key,
                Err(e) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    shared.record_latency(lane, Outcome::Error, elapsed());
                    finish_trace(tracer, Outcome::Error);
                    return (protocol::render_error_response(id, &e.to_string()), false);
                }
            };
            let digest = crate::store::digest_of(&key);
            let read_start = tracer.as_ref().map(RequestTracer::now_ns);
            let cached = shared.store.get(&digest, &key);
            if let (Some(t), Some(start_ns)) = (&tracer, read_start) {
                t.child(
                    "store-read",
                    start_ns,
                    vec![("hit".to_owned(), cached.is_some().to_string())],
                );
            }
            if let Some(result) = cached {
                shared.count_store_hit(&op);
                shared.record_latency(lane, Outcome::Hit, elapsed());
                finish_trace(tracer, Outcome::Hit);
                return (protocol::render_job_response(id, true, &digest, &result), false);
            }
            // Cold: claim the in-flight slot. The first identical request
            // owns the computation and queues a job; later ones coalesce
            // onto the owner's result channel.
            let rx = match shared.store.claim(&key) {
                InflightClaim::Waiter(rx) => rx,
                InflightClaim::Owner => {
                    // Fleet read-through, *inside* the ownership claim:
                    // concurrent identical requests coalesce onto one
                    // peer fetch exactly as they coalesce onto one
                    // computation. A verified remote hit is written
                    // through locally and served as cached; a miss or
                    // an unreachable owner falls through to the local
                    // queue — same bytes either way, by the canonical
                    // determinism of every op.
                    if let Some(fleet) = &shared.fleet {
                        let fetch_trace = tracer.as_ref().map(RequestTracer::fetch_trace);
                        let outcome = fleet.read_through(&digest, &key, fetch_trace.as_ref());
                        if let FetchOutcome::Hit(result) = outcome {
                            if let Err(e) = shared.store.put(&digest, &key, &result) {
                                eprintln!(
                                    "relim-service: store write-through failed for {digest}: {e}"
                                );
                            }
                            // Store before complete, like the executor:
                            // a request missing the coalescing window
                            // hits the store instead.
                            shared.store.complete(&key, &Ok(result.clone()));
                            shared.count_store_hit(&op);
                            shared.record_latency(lane, Outcome::Hit, elapsed());
                            finish_trace(tracer, Outcome::Hit);
                            return (
                                protocol::render_job_response(id, true, &digest, &result),
                                false,
                            );
                        }
                    }
                    let (tx, rx) = mpsc::channel();
                    let job = Job {
                        op,
                        digest: digest.clone(),
                        key: key.clone(),
                        reply: tx,
                        trace: tracer.as_ref().map(|t| JobTrace {
                            trace_id: t.trace_id,
                            parent: t.root_id,
                            enqueued_ns: t.now_ns(),
                        }),
                    };
                    if let Err(e) = enqueue(shared, class, job) {
                        // Unblock any waiter that already attached.
                        shared.store.complete(&key, &Err(e.clone()));
                        shared.n_errors.fetch_add(1, Ordering::Relaxed);
                        shared.record_latency(lane, Outcome::Error, elapsed());
                        finish_trace(tracer, Outcome::Error);
                        return (protocol::render_error_response(id, &e), false);
                    }
                    rx
                }
            };
            let (response, outcome) = match rx.recv() {
                Ok(Ok(result)) => {
                    shared.record_latency(lane, Outcome::Computed, elapsed());
                    (protocol::render_job_response(id, false, &digest, &result), Outcome::Computed)
                }
                Ok(Err(e)) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    shared.record_latency(lane, Outcome::Error, elapsed());
                    (protocol::render_error_response(id, &e), Outcome::Error)
                }
                Err(_) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    shared.record_latency(lane, Outcome::Error, elapsed());
                    (
                        protocol::render_error_response(id, "executor exited before the job ran"),
                        Outcome::Error,
                    )
                }
            };
            finish_trace(tracer, outcome);
            (response, false)
        }
    }
}

/// Test seam: per-digest hooks fired by the executor just before a
/// job's real execution, inside the panic guard. A hook runs at most
/// once (it is removed as it fires), so a recomputation of the same
/// digest runs clean — exactly what the poisoned-key regression needs.
/// Keyed by digest so concurrently running tests cannot collide.
#[cfg(test)]
pub(crate) mod test_hooks {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    type Hook = Box<dyn FnOnce() + Send>;

    fn registry() -> &'static Mutex<HashMap<String, Hook>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Hook>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn install(digest: &str, hook: Box<dyn FnOnce() + Send>) {
        registry().lock().expect("hook registry poisoned").insert(digest.to_owned(), hook);
    }

    pub fn fire(digest: &str) {
        // Remove before calling: a panicking hook must not poison the
        // registry lock for unrelated tests.
        let hook = registry().lock().expect("hook registry poisoned").remove(digest);
        if let Some(hook) = hook {
            hook();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn spawn_serve_cache_shutdown_on_ephemeral_port() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());

        let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        let first = client.submit(&op, None).unwrap();
        assert!(!first.cached);
        assert!(first.result.contains("0-round solvable"), "{}", first.result);
        let second = client.submit(&op, None).unwrap();
        assert!(second.cached, "second identical query must be a store hit");
        assert_eq!(first.result, second.result);
        assert_eq!(first.digest, op.digest().unwrap());

        let status = client.status().unwrap();
        let store = status.get("store").expect("counters carry a store object");
        assert_eq!(store.get("mem_hits").and_then(Json::as_i64), Some(1));

        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn panicking_job_unblocks_coalesced_waiters_and_unpoisons_the_key() {
        // One executor: if the panic killed it, nothing could serve the
        // recomputation below — the test proves the thread survives.
        let config = ServerConfig { executors: 1, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let op = OpRequest::zero_round("P P P;M O O", "M [P O];O O").unwrap();
        let digest = op.digest().unwrap();

        // The first execution of this digest blocks until two waiters
        // have coalesced onto it, then panics — deterministically
        // reproducing "a panic with waiters attached".
        let shared = Arc::clone(&handle.shared);
        test_hooks::install(
            &digest,
            Box::new(move || {
                for _ in 0..2000 {
                    if shared.store.stats().coalesced >= 2 {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                panic!("deliberate test panic inside op execution");
            }),
        );

        let submit =
            |client: Client, op: OpRequest| std::thread::spawn(move || client.submit(&op, None));
        let owner = submit(client.clone(), op.clone());
        // The owner's executor is blocked in the hook; these two attach
        // as coalesced waiters (the hook waits for exactly that).
        let w1 = submit(client.clone(), op.clone());
        let w2 = submit(client.clone(), op.clone());
        for t in [owner, w1, w2] {
            let reply = t.join().unwrap();
            let err = reply.expect_err("panicked job must answer with an error");
            assert!(err.to_string().contains("job panicked"), "{err}");
        }

        // The key is un-poisoned: a fresh identical request claims the
        // slot as owner and recomputes (the hook fired once and is
        // gone) on the *same* executor thread.
        let reply = client.submit(&op, None).unwrap();
        assert!(!reply.cached);
        assert!(reply.result.contains("0-round"), "{}", reply.result);

        let counters = handle.counters();
        let errors = counters.get("errors").and_then(Json::as_i64).unwrap();
        assert_eq!(errors, 3, "owner + two waiters");
        let error_cell = counters
            .get("latency")
            .and_then(|l| l.get("zero_round"))
            .and_then(|l| l.get("error"))
            .unwrap();
        assert_eq!(error_cell.get("count").and_then(Json::as_i64), Some(3));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn metrics_timeline_and_lookup_ops_serve_the_observability_surfaces() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        let reply = client.submit(&op, None).unwrap();

        let text = client.metrics().unwrap();
        assert_eq!(crate::metrics::exposition_problems(&text), Vec::<String>::new(), "{text}");
        assert!(text.contains("relim_requests_total "), "{text}");
        assert!(text.contains("relim_store_stores 1"), "{text}");
        // Every leaf of the status counters is scrapeable; spot-check
        // one from each family, including the new lanes.
        for name in [
            "relim_ops_zero_round",
            "relim_ops_trace 0",
            "relim_store_hits_zero_round",
            "relim_latency_zero_round_computed_count 1",
            "relim_queue_pending",
            "relim_engine_cache_entries",
            "relim_timeline_recorded",
            "relim_timeline_dropped 0",
            "relim_trace_window 0",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // The latency grid derives a real Prometheus histogram family.
        assert!(text.contains("# TYPE relim_request_latency_ns histogram"), "{text}");
        assert!(
            text.contains(
                "relim_request_latency_ns_count{op=\"zero_round\",outcome=\"computed\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("relim_request_latency_ns_bucket{op=\"zero_round\",outcome=\"computed\",le=\"+Inf\"} 1"),
            "{text}"
        );

        let (timeline, gantt) = client.timeline().unwrap();
        let Some(Json::Arr(events)) = timeline.get("events") else { panic!("events array") };
        let kinds: Vec<&str> =
            events.iter().filter_map(|e| e.get("event").and_then(Json::as_str)).collect();
        assert_eq!(kinds, vec!["enqueue", "start", "finish"], "{gantt}");
        assert!(gantt.contains(&reply.digest.chars().take(12).collect::<String>()), "{gantt}");

        let (key, result) = client.lookup(&reply.digest).unwrap();
        assert_eq!(result, reply.result, "lookup returns the stored bytes");
        assert!(key.contains("op=zero-round"), "{key}");
        let err = client.lookup("not-a-digest").unwrap_err();
        assert!(err.to_string().contains("no stored entry"), "{err}");
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn malformed_and_refused_requests_get_error_responses() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let err = client.raw_roundtrip("this is not json").unwrap();
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        let err = client.raw_roundtrip("{\"op\": \"sweep\", \"delta\": 99}").unwrap();
        assert!(err.get("error").and_then(Json::as_str).unwrap().contains("delta"));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn traced_requests_record_spans_and_trace_off_daemons_stay_silent() {
        let config = ServerConfig { trace: true, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        let ctx = TraceContext { trace_id: 0xabc, parent: None };

        let computed = client.submit_traced(&op, None, Some(&ctx)).unwrap();
        assert!(!computed.cached);
        let hit = client.submit_traced(&op, None, Some(&ctx)).unwrap();
        assert!(hit.cached);
        assert_eq!(computed.result, hit.result, "tracing never changes served bytes");
        // An untraced submit on a tracing daemon records nothing.
        let before = client.trace_dump(None).unwrap().spans.len();
        client.submit(&op, None).unwrap();
        assert_eq!(client.trace_dump(None).unwrap().spans.len(), before);

        let dump = client.trace_dump(Some(0xabc)).unwrap();
        assert_eq!(dump.daemon, handle.local_addr().to_string());
        assert_eq!(dump.window, DEFAULT_SPAN_CAPACITY as u64);
        let names: Vec<&str> = dump.spans.iter().map(|s| s.name.as_str()).collect();
        for name in ["request", "parse", "store-read", "queue-wait", "compute", "store-write"] {
            assert!(names.contains(&name), "missing {name} span in {names:?}");
        }
        assert!(dump.spans.iter().all(|s| s.trace_id == 0xabc));
        let roots: Vec<&Span> = dump.spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 2, "one root per traced request");
        assert!(roots.iter().all(|s| s.name == "request"));
        let outcomes: Vec<&str> = dump
            .spans
            .iter()
            .filter(|s| s.name == "request")
            .flat_map(|s| &s.attrs)
            .filter(|(k, _)| k == "outcome")
            .map(|(_, v)| v.as_str())
            .collect();
        assert_eq!(outcomes, vec!["computed", "hit"], "dump is in recording order");
        let compute = dump.spans.iter().find(|s| s.name == "compute").unwrap();
        assert!(compute.attrs.iter().any(|(k, v)| k == "ok" && v == "true"), "{compute:?}");
        let reads: Vec<&Span> = dump.spans.iter().filter(|s| s.name == "store-read").collect();
        assert!(reads[0].attrs.contains(&("hit".to_owned(), "false".to_owned())));
        assert!(reads[1].attrs.contains(&("hit".to_owned(), "true".to_owned())));

        // Filtering by an unknown trace id yields an empty dump.
        assert!(client.trace_dump(Some(0x999)).unwrap().spans.is_empty());
        // Ping advertises the span window so merges can flag gaps.
        let info = client.ping_info().unwrap();
        assert_eq!(info.span_window, DEFAULT_SPAN_CAPACITY as u64);
        assert_eq!(info.span_dropped, 0);
        client.shutdown().unwrap();
        handle.join();

        // With tracing off (the default config) the trace op serves the
        // zero-window placeholder and records nothing.
        let off = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(off.local_addr().to_string());
        client.submit_traced(&op, None, Some(&ctx)).unwrap();
        let dump = client.trace_dump(None).unwrap();
        assert_eq!((dump.window, dump.recorded, dump.spans.len()), (0, 0, 0));
        assert_eq!(client.ping_info().unwrap().span_window, 0);
        client.shutdown().unwrap();
        off.join();
    }

    #[test]
    fn shutdown_closes_the_listener() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.local_addr().to_string();
        handle.shutdown();
        handle.join();
        // After join the listener is gone: new clients are refused
        // outright instead of hanging on an unserved connection.
        let client = Client::new(addr);
        let op = OpRequest::zero_round("A A", "A A").unwrap();
        match client.submit(&op, None) {
            Ok(reply) => panic!("job accepted after shutdown: {reply:?}"),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}
