//! The daemon: a thread-per-connection TCP server around one shared
//! [`Engine`] and one [`ResultStore`].
//!
//! ## Concurrency architecture
//!
//! * An **accept thread** owns the listener and spawns one thread per
//!   connection (the protocol is blocking line-at-a-time, so a thread
//!   per connection is the simplest correct shape; the expensive work
//!   never happens on these threads).
//! * Connection threads parse requests. Store **hits are served
//!   inline** — a cached certificate never waits behind the queue.
//!   Misses claim the store's in-flight table: the first identical
//!   request becomes the *owner* and is enqueued as a job; later
//!   identical requests attach as **coalesced waiters** on the owner's
//!   result instead of recomputing. The connection thread blocks on a
//!   per-job (or per-waiter) reply channel either way.
//! * A pool of **executor threads** (`ServerConfig::executors`, default
//!   `min(4, available parallelism)`) drains the [`JobQueue`]
//!   (interactive before bulk, with aging — see [`crate::queue`]) into
//!   the shared `Engine`. Executors share the engine's *sharded*
//!   sub-multiset index cache, so concurrent jobs reuse each other's
//!   memo state; served bytes are identical at any executor count
//!   because every cache hit is byte-identical to a rebuild and every
//!   result is canonical.
//! * **Graceful shutdown**: a `shutdown` request flips the flag, wakes
//!   the executors and unblocks the accept loop. New jobs are refused
//!   (checked under the queue lock, so no job is ever lost in the
//!   race), already-queued jobs are drained and answered — waiters
//!   included — then every thread exits and [`ServerHandle::join`]
//!   returns.
//!
//! An identical query that misses both the store and the coalescing
//! window (the owner completed between this request's store lookup and
//! its claim) recomputes — and computes the same canonical bytes, so
//! the overwriting store write is harmless. Coalescing is a throughput
//! optimization on top of idempotence, not a correctness mechanism.

use crate::fleet::{self, FetchOutcome, Fleet, FleetConfig};
use crate::ops::OpRequest;
use crate::protocol::{self, Request, RequestBody};
use crate::queue::{Class, JobQueue, DEFAULT_AGING_LIMIT};
use crate::store::{InflightClaim, ResultStore};
use crate::timeline::{EventKind, EventLog, DEFAULT_EVENT_CAPACITY};
use relim_core::Engine;
use relim_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine pool width (0 = available parallelism). Output bytes never
    /// depend on this.
    pub threads: usize,
    /// Executor threads draining the job queue (0 = `min(4, available
    /// parallelism)`). Output bytes never depend on this either — the
    /// concurrency test battery and the CI multi-executor smoke pin it.
    pub executors: usize,
    /// Directory of the persistent store; `None` keeps results in
    /// memory only.
    pub store_dir: Option<PathBuf>,
    /// In-memory store bound (see [`ResultStore`]).
    pub store_capacity: usize,
    /// Disk byte budget of the persistent store; `None` leaves the disk
    /// layer unbounded (see [`ResultStore::persistent_with_budget`]).
    pub store_budget_bytes: Option<u64>,
    /// Aging limit of the bulk class (see [`crate::queue`]).
    pub aging_limit: u32,
    /// Fleet peer addresses (`host:port`), excluding this daemon; empty
    /// means no fleet tier. Every member must be configured with the
    /// same total member set (its peers plus itself), spelled
    /// identically — see [`crate::fleet`].
    pub peers: Vec<String>,
    /// Per-attempt connect/read/write timeout of peer calls, in
    /// milliseconds.
    pub peer_timeout_ms: u64,
}

/// The default per-attempt peer-call timeout (`--peer-timeout-ms`).
pub const DEFAULT_PEER_TIMEOUT_MS: u64 = 2000;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            executors: 0,
            store_dir: None,
            store_capacity: 1024,
            store_budget_bytes: None,
            aging_limit: DEFAULT_AGING_LIMIT,
            peers: Vec::new(),
            peer_timeout_ms: DEFAULT_PEER_TIMEOUT_MS,
        }
    }
}

/// The executor-pool width `configured` resolves to: `0` means
/// `min(4, available parallelism)` — wide enough to overlap queue waits,
/// narrow enough not to oversubscribe the engine's worker pool.
pub fn resolve_executors(configured: usize) -> usize {
    if configured == 0 {
        Engine::available_parallelism().min(4)
    } else {
        configured
    }
}

/// One queued unit of work.
struct Job {
    op: OpRequest,
    digest: String,
    key: String,
    reply: mpsc::Sender<Result<String, String>>,
}

/// Per-outcome latency accounting: every request records into exactly
/// one lane, so the lanes partition the traffic and their sums
/// reconcile against the all-outcome aggregate.
struct Lane {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Lane {
    fn new() -> Lane {
        Lane { count: AtomicU64::new(0), total_ns: AtomicU64::new(0), max_ns: AtomicU64::new(0) }
    }

    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Int(self.count.load(Ordering::Relaxed) as i64)),
            ("total_ns".into(), Json::Int(self.total_ns.load(Ordering::Relaxed) as i64)),
            ("max_ns".into(), Json::Int(self.max_ns.load(Ordering::Relaxed) as i64)),
        ])
    }
}

/// How a job request left `handle_line` — the latency lane it lands in.
#[derive(Clone, Copy)]
enum Outcome {
    /// Served from the content-addressed store, inline.
    Hit,
    /// Computed (or coalesced onto a computation) via the queue.
    Computed,
    /// Any error exit: bad parameters, refused enqueue, failed or
    /// panicked execution, a dead executor.
    Error,
}

/// Shared state behind the daemon's threads.
struct Shared {
    engine: Engine,
    store: ResultStore,
    /// The fleet tier, when `--peers` was given: remote owners are read
    /// through before local compute (see [`crate::fleet`]).
    fleet: Option<Fleet>,
    queue: Mutex<JobQueue<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// When the daemon started — the `uptime_ms` a ping reports.
    started: Instant,
    /// Resolved executor-pool width (for the status response).
    executors: usize,
    /// Live connection threads — joined (bounded-wait) at shutdown so a
    /// response write never races process exit.
    active_connections: AtomicU64,
    requests_total: AtomicU64,
    n_autolb: AtomicU64,
    n_autoub: AtomicU64,
    n_iterate: AtomicU64,
    n_sweep: AtomicU64,
    n_zeroround: AtomicU64,
    n_status: AtomicU64,
    n_metrics: AtomicU64,
    n_timeline: AtomicU64,
    n_lookup: AtomicU64,
    n_fetch: AtomicU64,
    n_ping: AtomicU64,
    n_errors: AtomicU64,
    /// Connections dropped mid-line (a torn peer write): the partial
    /// frame is discarded, counted, never parsed.
    torn_lines: AtomicU64,
    /// Inline store hits by op kind — distinguishes queue-served results
    /// from cached ones, which the aggregate `ops` counters cannot.
    h_autolb: AtomicU64,
    h_autoub: AtomicU64,
    h_iterate: AtomicU64,
    h_sweep: AtomicU64,
    h_zeroround: AtomicU64,
    /// All-outcome latency aggregate (kept for status compatibility;
    /// the lanes below split the same traffic by outcome).
    latency_ns_total: AtomicU64,
    latency_ns_max: AtomicU64,
    lat_hit: Lane,
    lat_computed: Lane,
    lat_error: Lane,
    /// The bounded scheduler event log behind `{"op": "timeline"}`.
    events: EventLog,
}

impl Shared {
    fn count_op(&self, op: &OpRequest) {
        let counter = match op {
            OpRequest::AutoLb { .. } => &self.n_autolb,
            OpRequest::AutoUb { .. } => &self.n_autoub,
            OpRequest::Iterate { .. } => &self.n_iterate,
            OpRequest::Sweep { .. } => &self.n_sweep,
            OpRequest::ZeroRound { .. } => &self.n_zeroround,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn count_store_hit(&self, op: &OpRequest) {
        let counter = match op {
            OpRequest::AutoLb { .. } => &self.h_autolb,
            OpRequest::AutoUb { .. } => &self.h_autoub,
            OpRequest::Iterate { .. } => &self.h_iterate,
            OpRequest::Sweep { .. } => &self.h_sweep,
            OpRequest::ZeroRound { .. } => &self.h_zeroround,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one job request's wall time into the aggregate *and* the
    /// outcome's lane. Called on **every** exit of the job path — error
    /// exits included, which the aggregate alone historically missed
    /// (undercounting exactly the requests an operator most wants to
    /// see).
    fn record_latency(&self, outcome: Outcome, ns: u64) {
        self.latency_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(ns, Ordering::Relaxed);
        match outcome {
            Outcome::Hit => self.lat_hit.record(ns),
            Outcome::Computed => self.lat_computed.record(ns),
            Outcome::Error => self.lat_error.record(ns),
        }
    }

    /// The `counters` object of a status response.
    fn counters_json(&self) -> Json {
        let store = self.store.stats();
        let (promotions, max_depth, pending, aging_limit) = {
            let q = self.queue.lock().expect("queue lock poisoned");
            (q.promotions(), q.max_depth(), q.len(), q.aging_limit())
        };
        let engine_report = self.engine.report();
        let engine_pairs: Vec<(String, Json)> = engine_report
            .snapshot_pairs()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::Int(v as i64)))
            .collect();
        Json::Obj(
            vec![
                (
                    "requests_total".into(),
                    Json::Int(self.requests_total.load(Ordering::Relaxed) as i64),
                ),
                (
                    "ops".into(),
                    Json::Obj(vec![
                        ("autolb".into(), Json::Int(self.n_autolb.load(Ordering::Relaxed) as i64)),
                        ("autoub".into(), Json::Int(self.n_autoub.load(Ordering::Relaxed) as i64)),
                        (
                            "iterate".into(),
                            Json::Int(self.n_iterate.load(Ordering::Relaxed) as i64),
                        ),
                        ("sweep".into(), Json::Int(self.n_sweep.load(Ordering::Relaxed) as i64)),
                        (
                            "zero_round".into(),
                            Json::Int(self.n_zeroround.load(Ordering::Relaxed) as i64),
                        ),
                        ("status".into(), Json::Int(self.n_status.load(Ordering::Relaxed) as i64)),
                        (
                            "metrics".into(),
                            Json::Int(self.n_metrics.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "timeline".into(),
                            Json::Int(self.n_timeline.load(Ordering::Relaxed) as i64),
                        ),
                        ("lookup".into(), Json::Int(self.n_lookup.load(Ordering::Relaxed) as i64)),
                        ("fetch".into(), Json::Int(self.n_fetch.load(Ordering::Relaxed) as i64)),
                        ("ping".into(), Json::Int(self.n_ping.load(Ordering::Relaxed) as i64)),
                    ]),
                ),
                ("errors".into(), Json::Int(self.n_errors.load(Ordering::Relaxed) as i64)),
                ("torn_lines".into(), Json::Int(self.torn_lines.load(Ordering::Relaxed) as i64)),
                (
                    "store_hits".into(),
                    Json::Obj(vec![
                        ("autolb".into(), Json::Int(self.h_autolb.load(Ordering::Relaxed) as i64)),
                        ("autoub".into(), Json::Int(self.h_autoub.load(Ordering::Relaxed) as i64)),
                        (
                            "iterate".into(),
                            Json::Int(self.h_iterate.load(Ordering::Relaxed) as i64),
                        ),
                        ("sweep".into(), Json::Int(self.h_sweep.load(Ordering::Relaxed) as i64)),
                        (
                            "zero_round".into(),
                            Json::Int(self.h_zeroround.load(Ordering::Relaxed) as i64),
                        ),
                    ]),
                ),
                (
                    "store".into(),
                    Json::Obj(vec![
                        ("mem_hits".into(), Json::Int(store.mem_hits as i64)),
                        ("disk_hits".into(), Json::Int(store.disk_hits as i64)),
                        ("misses".into(), Json::Int(store.misses as i64)),
                        ("stores".into(), Json::Int(store.stores as i64)),
                        ("evictions".into(), Json::Int(store.evictions as i64)),
                        ("corrupt_skipped".into(), Json::Int(store.corrupt_skipped as i64)),
                        ("coalesced".into(), Json::Int(store.coalesced as i64)),
                        ("gc_evictions".into(), Json::Int(store.gc_evictions as i64)),
                        ("tmp_swept".into(), Json::Int(store.tmp_swept as i64)),
                        ("disk_bytes".into(), Json::Int(store.disk_bytes as i64)),
                        ("mem_entries".into(), Json::Int(store.mem_entries as i64)),
                        ("persistent".into(), Json::Bool(self.store.is_persistent())),
                    ]),
                ),
                (
                    "queue".into(),
                    Json::Obj(vec![
                        ("pending".into(), Json::Int(pending as i64)),
                        ("max_depth".into(), Json::Int(max_depth as i64)),
                        ("aged_promotions".into(), Json::Int(promotions as i64)),
                        ("aging_limit".into(), Json::Int(i64::from(aging_limit))),
                    ]),
                ),
                (
                    "latency".into(),
                    Json::Obj(vec![
                        (
                            "total_ns".into(),
                            Json::Int(self.latency_ns_total.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "max_ns".into(),
                            Json::Int(self.latency_ns_max.load(Ordering::Relaxed) as i64),
                        ),
                        ("hit".into(), self.lat_hit.json()),
                        ("computed".into(), self.lat_computed.json()),
                        ("error".into(), self.lat_error.json()),
                    ]),
                ),
                {
                    let timeline = self.events.snapshot();
                    (
                        "timeline".into(),
                        Json::Obj(vec![
                            ("recorded".into(), Json::Int(timeline.recorded as i64)),
                            ("dropped".into(), Json::Int(timeline.dropped as i64)),
                            ("window".into(), Json::Int(timeline.window as i64)),
                        ]),
                    )
                },
                (
                    // Always present, zeros without a fleet: the scrape
                    // surface is identical with and without `--peers`.
                    "peer".into(),
                    match &self.fleet {
                        Some(fleet) => fleet.counters_json(),
                        None => fleet::zero_counters_json(),
                    },
                ),
                ("engine".into(), Json::Obj(engine_pairs)),
                ("threads".into(), Json::Int(self.engine.threads() as i64)),
                ("executors".into(), Json::Int(self.executors as i64)),
            ]
            .into_iter()
            .chain(
                // Per-peer counters only exist when a fleet is configured.
                self.fleet.as_ref().map(|fleet| ("peers".to_owned(), fleet.per_peer_json())),
            )
            .collect::<Vec<_>>(),
        )
    }
}

/// The daemon entry point (see [`Server::spawn`]).
pub struct Server;

/// A handle on a running daemon: its bound address, a shutdown trigger
/// and the join point.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// spawns the accept thread and the executor pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-directory failures.
    pub fn spawn(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let store = match &config.store_dir {
            Some(dir) => ResultStore::persistent_with_budget(
                dir,
                config.store_capacity,
                config.store_budget_bytes,
            )?,
            None => ResultStore::in_memory(config.store_capacity),
        };
        let executors = resolve_executors(config.executors);
        // The daemon's own ring name is the address it actually bound —
        // fleet members must bind the very address their peers dial
        // (the CLI's `--addr`), so the spellings agree by construction.
        let fleet = if config.peers.is_empty() {
            None
        } else {
            Some(Fleet::new(&FleetConfig::new(
                config.peers.clone(),
                addr.to_string(),
                std::time::Duration::from_millis(config.peer_timeout_ms.max(1)),
            )))
        };
        let shared = Arc::new(Shared {
            engine: Engine::builder().threads(config.threads).build(),
            store,
            fleet,
            queue: Mutex::new(JobQueue::new(config.aging_limit)),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            executors,
            active_connections: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            n_autolb: AtomicU64::new(0),
            n_autoub: AtomicU64::new(0),
            n_iterate: AtomicU64::new(0),
            n_sweep: AtomicU64::new(0),
            n_zeroround: AtomicU64::new(0),
            n_status: AtomicU64::new(0),
            n_metrics: AtomicU64::new(0),
            n_timeline: AtomicU64::new(0),
            n_lookup: AtomicU64::new(0),
            n_fetch: AtomicU64::new(0),
            n_ping: AtomicU64::new(0),
            n_errors: AtomicU64::new(0),
            torn_lines: AtomicU64::new(0),
            h_autolb: AtomicU64::new(0),
            h_autoub: AtomicU64::new(0),
            h_iterate: AtomicU64::new(0),
            h_sweep: AtomicU64::new(0),
            h_zeroround: AtomicU64::new(0),
            latency_ns_total: AtomicU64::new(0),
            latency_ns_max: AtomicU64::new(0),
            lat_hit: Lane::new(),
            lat_computed: Lane::new(),
            lat_error: Lane::new(),
            events: EventLog::new(DEFAULT_EVENT_CAPACITY),
        });

        let executors = (0..executors)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ServerHandle { addr, shared, accept, executors })
    }
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers a graceful shutdown from the hosting process (the wire
    /// `shutdown` request does the same).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// The current counters (same content as a `status` response).
    pub fn counters(&self) -> Json {
        self.shared.counters_json()
    }

    /// Waits for the accept thread and every executor to exit (after a
    /// shutdown trigger; the queue is drained first).
    pub fn join(self) {
        let _ = self.join_and_report();
    }

    /// Like [`ServerHandle::join`], but returns the final counters —
    /// snapshotted *after* the queue drained, so the numbers cover every
    /// served job.
    pub fn join_and_report(self) -> Json {
        let shared = Arc::clone(&self.shared);
        let _ = self.accept.join();
        for executor in self.executors {
            let _ = executor.join();
        }
        // Give in-flight connection threads a bounded window to finish
        // writing their final responses (they are detached; without this
        // the hosting process could exit mid-write).
        for _ in 0..500 {
            if shared.active_connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        shared.counters_json()
    }
}

fn trigger_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.cv.notify_all();
    // Unblock the accept loop: a throwaway connection makes `incoming`
    // yield once more, after which the loop observes the flag.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().expect("bound listener has an address");
        std::thread::spawn(move || serve_connection(stream, &shared, addr));
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    loop {
        let promotions_before = queue.promotions();
        if let Some((class, job)) = queue.pop() {
            let promoted = queue.promotions() > promotions_before;
            drop(queue);
            if promoted {
                shared.events.record(EventKind::Promote, &job.digest, job.op.name(), class);
            }
            shared.events.record(EventKind::Start, &job.digest, job.op.name(), class);
            // A panicking op must never kill this thread with the job's
            // in-flight entry still claimed: coalesced waiters would
            // block forever on their receivers and every future
            // identical request would attach to the dead claim — the
            // key permanently poisoned. Catch the panic and turn it
            // into an ordinary error result, so the complete/reply
            // below always run and the executor survives.
            let execution = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(test)]
                test_hooks::fire(&job.digest);
                job.op.execute(&shared.engine)
            }));
            let result = match execution {
                Ok(r) => r.map_err(|e| e.to_string()),
                Err(payload) => Err(format!("job panicked: {}", panic_message(&payload))),
            };
            if let Ok(result_text) = &result {
                if let Err(e) = shared.store.put(&job.digest, &job.key, result_text) {
                    eprintln!("relim-service: store write failed for {}: {e}", job.digest);
                }
            }
            // Store first, complete second: a request that misses the
            // coalescing window after this point hits the store instead.
            shared.store.complete(&job.key, &result);
            let finished = EventKind::Finish { ok: result.is_ok() };
            shared.events.record(finished, &job.digest, job.op.name(), class);
            // A dropped receiver (client gone) is fine — work is stored.
            let _ = job.reply.send(result);
            queue = shared.queue.lock().expect("queue lock poisoned");
        } else if shared.shutdown.load(Ordering::SeqCst) {
            return;
        } else {
            queue = shared.cv.wait(queue).expect("queue lock poisoned");
        }
    }
}

/// A human-readable rendering of a caught panic payload (`panic!` with a
/// string literal or a formatted message covers practically all of
/// them).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// Enqueues a job unless the daemon is shutting down. The flag check and
/// the push happen under the same lock the executor's exit check uses,
/// so an accepted job is always served.
fn enqueue(shared: &Shared, class: Class, job: Job) -> Result<(), String> {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err("server is shutting down".to_owned());
    }
    // Recorded under the queue lock: the job is not poppable until the
    // lock drops, so its `enqueue` event always precedes its `start`.
    shared.events.record(EventKind::Enqueue, &job.digest, job.op.name(), class);
    queue.push(class, job);
    shared.cv.notify_one();
    Ok(())
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    shared.active_connections.fetch_add(1, Ordering::SeqCst);
    serve_connection_inner(stream, shared, addr);
    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
}

fn serve_connection_inner(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Manual `read_line` instead of `lines()`: the framing is
        // line-delimited, so bytes arriving without their terminator —
        // a peer that died mid-write — are a **torn line**, not a
        // request. They are counted and discarded, never parsed: a
        // half-written `{"op":"shutd` must not become anything.
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // clean EOF at a frame boundary
            Ok(_) if !line.ends_with('\n') => {
                shared.torn_lines.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Ok(_) => {}
            Err(_) => {
                // A read error can also strand partial bytes in the
                // buffer (`read_line` appends what it read before
                // failing) — same torn frame, same accounting.
                if !line.is_empty() {
                    shared.torn_lines.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.requests_total.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown_after_send) = handle_line(&line, shared);
        let sent = writer.write_all(response.as_bytes()).is_ok()
            && writer.write_all(b"\n").is_ok()
            && writer.flush().is_ok();
        if shutdown_after_send {
            // The acknowledgement is on the wire (or the peer is gone)
            // before the teardown starts, so the requester always hears
            // back.
            trigger_shutdown(shared, addr);
        }
        if !sent {
            break;
        }
    }
}

/// Handles one request line; returns the response line and whether a
/// graceful shutdown must be triggered *after* the response is sent.
fn handle_line(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.n_errors.fetch_add(1, Ordering::Relaxed);
            return (protocol::render_error_response(None, &e), false);
        }
    };
    let Request { id, body } = request;
    match body {
        RequestBody::Status => {
            shared.n_status.fetch_add(1, Ordering::Relaxed);
            (protocol::render_status_response(id, shared.counters_json()), false)
        }
        RequestBody::Metrics => {
            shared.n_metrics.fetch_add(1, Ordering::Relaxed);
            let text = crate::metrics::render_prometheus(&shared.counters_json());
            (protocol::render_metrics_response(id, &text), false)
        }
        RequestBody::Timeline => {
            shared.n_timeline.fetch_add(1, Ordering::Relaxed);
            let snapshot = shared.events.snapshot();
            let gantt = snapshot.render_gantt();
            (protocol::render_timeline_response(id, snapshot.to_json(), &gantt), false)
        }
        RequestBody::Lookup { digest } => {
            shared.n_lookup.fetch_add(1, Ordering::Relaxed);
            match shared.store.lookup_digest(&digest) {
                Some((key, result)) => {
                    (protocol::render_lookup_response(id, &digest, &key, &result), false)
                }
                None => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    let error = format!("no stored entry for digest {digest}");
                    (protocol::render_error_response(id, &error), false)
                }
            }
        }
        RequestBody::Fetch { digest } => {
            shared.n_fetch.fetch_add(1, Ordering::Relaxed);
            // A read-only peer read: never counted as store traffic
            // (the hits+misses↔submits reconciliation stays intact on
            // both sides of the wire). The stored key is re-digested so
            // even a corrupted memory entry cannot cross the fleet.
            let entry = shared
                .store
                .lookup_digest(&digest)
                .filter(|(key, _)| crate::store::digest_of(key) == digest);
            let entry = entry.as_ref().map(|(key, result)| (key.as_str(), result.as_str()));
            (protocol::render_fetch_response(id, &digest, entry), false)
        }
        RequestBody::Ping => {
            shared.n_ping.fetch_add(1, Ordering::Relaxed);
            let uptime_ms = shared.started.elapsed().as_millis() as u64;
            let entries = shared.store.stats().mem_entries as u64;
            (protocol::render_ping_response(id, uptime_ms, entries), false)
        }
        RequestBody::Shutdown => (protocol::render_shutdown_response(id), true),
        RequestBody::Job { op, class } => {
            let start = Instant::now();
            let elapsed = move || start.elapsed().as_nanos() as u64;
            shared.count_op(&op);
            let key = match op.canonical_key() {
                Ok(key) => key,
                Err(e) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    shared.record_latency(Outcome::Error, elapsed());
                    return (protocol::render_error_response(id, &e.to_string()), false);
                }
            };
            let digest = crate::store::digest_of(&key);
            if let Some(result) = shared.store.get(&digest, &key) {
                shared.count_store_hit(&op);
                shared.record_latency(Outcome::Hit, elapsed());
                return (protocol::render_job_response(id, true, &digest, &result), false);
            }
            // Cold: claim the in-flight slot. The first identical request
            // owns the computation and queues a job; later ones coalesce
            // onto the owner's result channel.
            let rx = match shared.store.claim(&key) {
                InflightClaim::Waiter(rx) => rx,
                InflightClaim::Owner => {
                    // Fleet read-through, *inside* the ownership claim:
                    // concurrent identical requests coalesce onto one
                    // peer fetch exactly as they coalesce onto one
                    // computation. A verified remote hit is written
                    // through locally and served as cached; a miss or
                    // an unreachable owner falls through to the local
                    // queue — same bytes either way, by the canonical
                    // determinism of every op.
                    if let Some(fleet) = &shared.fleet {
                        if let FetchOutcome::Hit(result) = fleet.read_through(&digest, &key) {
                            if let Err(e) = shared.store.put(&digest, &key, &result) {
                                eprintln!(
                                    "relim-service: store write-through failed for {digest}: {e}"
                                );
                            }
                            // Store before complete, like the executor:
                            // a request missing the coalescing window
                            // hits the store instead.
                            shared.store.complete(&key, &Ok(result.clone()));
                            shared.count_store_hit(&op);
                            shared.record_latency(Outcome::Hit, elapsed());
                            return (
                                protocol::render_job_response(id, true, &digest, &result),
                                false,
                            );
                        }
                    }
                    let (tx, rx) = mpsc::channel();
                    let job = Job { op, digest: digest.clone(), key: key.clone(), reply: tx };
                    if let Err(e) = enqueue(shared, class, job) {
                        // Unblock any waiter that already attached.
                        shared.store.complete(&key, &Err(e.clone()));
                        shared.n_errors.fetch_add(1, Ordering::Relaxed);
                        shared.record_latency(Outcome::Error, elapsed());
                        return (protocol::render_error_response(id, &e), false);
                    }
                    rx
                }
            };
            let response = match rx.recv() {
                Ok(Ok(result)) => {
                    shared.record_latency(Outcome::Computed, elapsed());
                    protocol::render_job_response(id, false, &digest, &result)
                }
                Ok(Err(e)) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    shared.record_latency(Outcome::Error, elapsed());
                    protocol::render_error_response(id, &e)
                }
                Err(_) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    shared.record_latency(Outcome::Error, elapsed());
                    protocol::render_error_response(id, "executor exited before the job ran")
                }
            };
            (response, false)
        }
    }
}

/// Test seam: per-digest hooks fired by the executor just before a
/// job's real execution, inside the panic guard. A hook runs at most
/// once (it is removed as it fires), so a recomputation of the same
/// digest runs clean — exactly what the poisoned-key regression needs.
/// Keyed by digest so concurrently running tests cannot collide.
#[cfg(test)]
pub(crate) mod test_hooks {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    type Hook = Box<dyn FnOnce() + Send>;

    fn registry() -> &'static Mutex<HashMap<String, Hook>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Hook>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn install(digest: &str, hook: Box<dyn FnOnce() + Send>) {
        registry().lock().expect("hook registry poisoned").insert(digest.to_owned(), hook);
    }

    pub fn fire(digest: &str) {
        // Remove before calling: a panicking hook must not poison the
        // registry lock for unrelated tests.
        let hook = registry().lock().expect("hook registry poisoned").remove(digest);
        if let Some(hook) = hook {
            hook();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn spawn_serve_cache_shutdown_on_ephemeral_port() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());

        let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        let first = client.submit(&op, None).unwrap();
        assert!(!first.cached);
        assert!(first.result.contains("0-round solvable"), "{}", first.result);
        let second = client.submit(&op, None).unwrap();
        assert!(second.cached, "second identical query must be a store hit");
        assert_eq!(first.result, second.result);
        assert_eq!(first.digest, op.digest().unwrap());

        let status = client.status().unwrap();
        let store = status.get("store").expect("counters carry a store object");
        assert_eq!(store.get("mem_hits").and_then(Json::as_i64), Some(1));

        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn panicking_job_unblocks_coalesced_waiters_and_unpoisons_the_key() {
        // One executor: if the panic killed it, nothing could serve the
        // recomputation below — the test proves the thread survives.
        let config = ServerConfig { executors: 1, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let op = OpRequest::zero_round("P P P;M O O", "M [P O];O O").unwrap();
        let digest = op.digest().unwrap();

        // The first execution of this digest blocks until two waiters
        // have coalesced onto it, then panics — deterministically
        // reproducing "a panic with waiters attached".
        let shared = Arc::clone(&handle.shared);
        test_hooks::install(
            &digest,
            Box::new(move || {
                for _ in 0..2000 {
                    if shared.store.stats().coalesced >= 2 {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                panic!("deliberate test panic inside op execution");
            }),
        );

        let submit =
            |client: Client, op: OpRequest| std::thread::spawn(move || client.submit(&op, None));
        let owner = submit(client.clone(), op.clone());
        // The owner's executor is blocked in the hook; these two attach
        // as coalesced waiters (the hook waits for exactly that).
        let w1 = submit(client.clone(), op.clone());
        let w2 = submit(client.clone(), op.clone());
        for t in [owner, w1, w2] {
            let reply = t.join().unwrap();
            let err = reply.expect_err("panicked job must answer with an error");
            assert!(err.to_string().contains("job panicked"), "{err}");
        }

        // The key is un-poisoned: a fresh identical request claims the
        // slot as owner and recomputes (the hook fired once and is
        // gone) on the *same* executor thread.
        let reply = client.submit(&op, None).unwrap();
        assert!(!reply.cached);
        assert!(reply.result.contains("0-round"), "{}", reply.result);

        let counters = handle.counters();
        let errors = counters.get("errors").and_then(Json::as_i64).unwrap();
        assert_eq!(errors, 3, "owner + two waiters");
        let error_lane = counters.get("latency").and_then(|l| l.get("error")).unwrap();
        assert_eq!(error_lane.get("count").and_then(Json::as_i64), Some(3));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn metrics_timeline_and_lookup_ops_serve_the_observability_surfaces() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        let reply = client.submit(&op, None).unwrap();

        let text = client.metrics().unwrap();
        assert_eq!(crate::metrics::exposition_problems(&text), Vec::<String>::new(), "{text}");
        assert!(text.contains("relim_requests_total "), "{text}");
        assert!(text.contains("relim_store_stores 1"), "{text}");
        // Every leaf of the status counters is scrapeable; spot-check
        // one from each family, including the new lanes.
        for name in [
            "relim_ops_zero_round",
            "relim_store_hits_zero_round",
            "relim_latency_computed_count",
            "relim_queue_pending",
            "relim_engine_cache_entries",
            "relim_timeline_recorded",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }

        let (timeline, gantt) = client.timeline().unwrap();
        let Some(Json::Arr(events)) = timeline.get("events") else { panic!("events array") };
        let kinds: Vec<&str> =
            events.iter().filter_map(|e| e.get("event").and_then(Json::as_str)).collect();
        assert_eq!(kinds, vec!["enqueue", "start", "finish"], "{gantt}");
        assert!(gantt.contains(&reply.digest.chars().take(12).collect::<String>()), "{gantt}");

        let (key, result) = client.lookup(&reply.digest).unwrap();
        assert_eq!(result, reply.result, "lookup returns the stored bytes");
        assert!(key.contains("op=zero-round"), "{key}");
        let err = client.lookup("not-a-digest").unwrap_err();
        assert!(err.to_string().contains("no stored entry"), "{err}");
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn malformed_and_refused_requests_get_error_responses() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let err = client.raw_roundtrip("this is not json").unwrap();
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        let err = client.raw_roundtrip("{\"op\": \"sweep\", \"delta\": 99}").unwrap();
        assert!(err.get("error").and_then(Json::as_str).unwrap().contains("delta"));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn shutdown_closes_the_listener() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.local_addr().to_string();
        handle.shutdown();
        handle.join();
        // After join the listener is gone: new clients are refused
        // outright instead of hanging on an unserved connection.
        let client = Client::new(addr);
        let op = OpRequest::zero_round("A A", "A A").unwrap();
        match client.submit(&op, None) {
            Ok(reply) => panic!("job accepted after shutdown: {reply:?}"),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}
