//! The daemon: a thread-per-connection TCP server around one shared
//! [`Engine`] and one [`ResultStore`].
//!
//! ## Concurrency architecture
//!
//! * An **accept thread** owns the listener and spawns one thread per
//!   connection (the protocol is blocking line-at-a-time, so a thread
//!   per connection is the simplest correct shape; the expensive work
//!   never happens on these threads).
//! * Connection threads parse requests. Store **hits are served
//!   inline** — a cached certificate never waits behind the queue.
//!   Misses claim the store's in-flight table: the first identical
//!   request becomes the *owner* and is enqueued as a job; later
//!   identical requests attach as **coalesced waiters** on the owner's
//!   result instead of recomputing. The connection thread blocks on a
//!   per-job (or per-waiter) reply channel either way.
//! * A pool of **executor threads** (`ServerConfig::executors`, default
//!   `min(4, available parallelism)`) drains the [`JobQueue`]
//!   (interactive before bulk, with aging — see [`crate::queue`]) into
//!   the shared `Engine`. Executors share the engine's *sharded*
//!   sub-multiset index cache, so concurrent jobs reuse each other's
//!   memo state; served bytes are identical at any executor count
//!   because every cache hit is byte-identical to a rebuild and every
//!   result is canonical.
//! * **Graceful shutdown**: a `shutdown` request flips the flag, wakes
//!   the executors and unblocks the accept loop. New jobs are refused
//!   (checked under the queue lock, so no job is ever lost in the
//!   race), already-queued jobs are drained and answered — waiters
//!   included — then every thread exits and [`ServerHandle::join`]
//!   returns.
//!
//! An identical query that misses both the store and the coalescing
//! window (the owner completed between this request's store lookup and
//! its claim) recomputes — and computes the same canonical bytes, so
//! the overwriting store write is harmless. Coalescing is a throughput
//! optimization on top of idempotence, not a correctness mechanism.

use crate::ops::OpRequest;
use crate::protocol::{self, Request, RequestBody};
use crate::queue::{Class, JobQueue, DEFAULT_AGING_LIMIT};
use crate::store::{InflightClaim, ResultStore};
use relim_core::Engine;
use relim_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine pool width (0 = available parallelism). Output bytes never
    /// depend on this.
    pub threads: usize,
    /// Executor threads draining the job queue (0 = `min(4, available
    /// parallelism)`). Output bytes never depend on this either — the
    /// concurrency test battery and the CI multi-executor smoke pin it.
    pub executors: usize,
    /// Directory of the persistent store; `None` keeps results in
    /// memory only.
    pub store_dir: Option<PathBuf>,
    /// In-memory store bound (see [`ResultStore`]).
    pub store_capacity: usize,
    /// Disk byte budget of the persistent store; `None` leaves the disk
    /// layer unbounded (see [`ResultStore::persistent_with_budget`]).
    pub store_budget_bytes: Option<u64>,
    /// Aging limit of the bulk class (see [`crate::queue`]).
    pub aging_limit: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            executors: 0,
            store_dir: None,
            store_capacity: 1024,
            store_budget_bytes: None,
            aging_limit: DEFAULT_AGING_LIMIT,
        }
    }
}

/// The executor-pool width `configured` resolves to: `0` means
/// `min(4, available parallelism)` — wide enough to overlap queue waits,
/// narrow enough not to oversubscribe the engine's worker pool.
pub fn resolve_executors(configured: usize) -> usize {
    if configured == 0 {
        Engine::available_parallelism().min(4)
    } else {
        configured
    }
}

/// One queued unit of work.
struct Job {
    op: OpRequest,
    digest: String,
    key: String,
    reply: mpsc::Sender<Result<String, String>>,
}

/// Shared state behind the daemon's threads.
struct Shared {
    engine: Engine,
    store: ResultStore,
    queue: Mutex<JobQueue<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Resolved executor-pool width (for the status response).
    executors: usize,
    /// Live connection threads — joined (bounded-wait) at shutdown so a
    /// response write never races process exit.
    active_connections: AtomicU64,
    requests_total: AtomicU64,
    n_autolb: AtomicU64,
    n_autoub: AtomicU64,
    n_iterate: AtomicU64,
    n_sweep: AtomicU64,
    n_zeroround: AtomicU64,
    n_status: AtomicU64,
    n_errors: AtomicU64,
    /// Inline store hits by op kind — distinguishes queue-served results
    /// from cached ones, which the aggregate `ops` counters cannot.
    h_autolb: AtomicU64,
    h_autoub: AtomicU64,
    h_iterate: AtomicU64,
    h_sweep: AtomicU64,
    h_zeroround: AtomicU64,
    latency_ns_total: AtomicU64,
    latency_ns_max: AtomicU64,
}

impl Shared {
    fn count_op(&self, op: &OpRequest) {
        let counter = match op {
            OpRequest::AutoLb { .. } => &self.n_autolb,
            OpRequest::AutoUb { .. } => &self.n_autoub,
            OpRequest::Iterate { .. } => &self.n_iterate,
            OpRequest::Sweep { .. } => &self.n_sweep,
            OpRequest::ZeroRound { .. } => &self.n_zeroround,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn count_store_hit(&self, op: &OpRequest) {
        let counter = match op {
            OpRequest::AutoLb { .. } => &self.h_autolb,
            OpRequest::AutoUb { .. } => &self.h_autoub,
            OpRequest::Iterate { .. } => &self.h_iterate,
            OpRequest::Sweep { .. } => &self.h_sweep,
            OpRequest::ZeroRound { .. } => &self.h_zeroround,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn record_latency(&self, ns: u64) {
        self.latency_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    /// The `counters` object of a status response.
    fn counters_json(&self) -> Json {
        let store = self.store.stats();
        let (promotions, max_depth, pending, aging_limit) = {
            let q = self.queue.lock().expect("queue lock poisoned");
            (q.promotions(), q.max_depth(), q.len(), q.aging_limit())
        };
        let engine_report = self.engine.report();
        let engine_pairs: Vec<(String, Json)> = engine_report
            .snapshot_pairs()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::Int(v as i64)))
            .collect();
        Json::Obj(vec![
            (
                "requests_total".into(),
                Json::Int(self.requests_total.load(Ordering::Relaxed) as i64),
            ),
            (
                "ops".into(),
                Json::Obj(vec![
                    ("autolb".into(), Json::Int(self.n_autolb.load(Ordering::Relaxed) as i64)),
                    ("autoub".into(), Json::Int(self.n_autoub.load(Ordering::Relaxed) as i64)),
                    ("iterate".into(), Json::Int(self.n_iterate.load(Ordering::Relaxed) as i64)),
                    ("sweep".into(), Json::Int(self.n_sweep.load(Ordering::Relaxed) as i64)),
                    (
                        "zero_round".into(),
                        Json::Int(self.n_zeroround.load(Ordering::Relaxed) as i64),
                    ),
                    ("status".into(), Json::Int(self.n_status.load(Ordering::Relaxed) as i64)),
                ]),
            ),
            ("errors".into(), Json::Int(self.n_errors.load(Ordering::Relaxed) as i64)),
            (
                "store_hits".into(),
                Json::Obj(vec![
                    ("autolb".into(), Json::Int(self.h_autolb.load(Ordering::Relaxed) as i64)),
                    ("autoub".into(), Json::Int(self.h_autoub.load(Ordering::Relaxed) as i64)),
                    ("iterate".into(), Json::Int(self.h_iterate.load(Ordering::Relaxed) as i64)),
                    ("sweep".into(), Json::Int(self.h_sweep.load(Ordering::Relaxed) as i64)),
                    (
                        "zero_round".into(),
                        Json::Int(self.h_zeroround.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "store".into(),
                Json::Obj(vec![
                    ("mem_hits".into(), Json::Int(store.mem_hits as i64)),
                    ("disk_hits".into(), Json::Int(store.disk_hits as i64)),
                    ("misses".into(), Json::Int(store.misses as i64)),
                    ("stores".into(), Json::Int(store.stores as i64)),
                    ("evictions".into(), Json::Int(store.evictions as i64)),
                    ("corrupt_skipped".into(), Json::Int(store.corrupt_skipped as i64)),
                    ("coalesced".into(), Json::Int(store.coalesced as i64)),
                    ("gc_evictions".into(), Json::Int(store.gc_evictions as i64)),
                    ("disk_bytes".into(), Json::Int(store.disk_bytes as i64)),
                    ("mem_entries".into(), Json::Int(store.mem_entries as i64)),
                    ("persistent".into(), Json::Bool(self.store.is_persistent())),
                ]),
            ),
            (
                "queue".into(),
                Json::Obj(vec![
                    ("pending".into(), Json::Int(pending as i64)),
                    ("max_depth".into(), Json::Int(max_depth as i64)),
                    ("aged_promotions".into(), Json::Int(promotions as i64)),
                    ("aging_limit".into(), Json::Int(i64::from(aging_limit))),
                ]),
            ),
            (
                "latency".into(),
                Json::Obj(vec![
                    (
                        "total_ns".into(),
                        Json::Int(self.latency_ns_total.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "max_ns".into(),
                        Json::Int(self.latency_ns_max.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            ("engine".into(), Json::Obj(engine_pairs)),
            ("threads".into(), Json::Int(self.engine.threads() as i64)),
            ("executors".into(), Json::Int(self.executors as i64)),
        ])
    }
}

/// The daemon entry point (see [`Server::spawn`]).
pub struct Server;

/// A handle on a running daemon: its bound address, a shutdown trigger
/// and the join point.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// spawns the accept thread and the executor pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-directory failures.
    pub fn spawn(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let store = match &config.store_dir {
            Some(dir) => ResultStore::persistent_with_budget(
                dir,
                config.store_capacity,
                config.store_budget_bytes,
            )?,
            None => ResultStore::in_memory(config.store_capacity),
        };
        let executors = resolve_executors(config.executors);
        let shared = Arc::new(Shared {
            engine: Engine::builder().threads(config.threads).build(),
            store,
            queue: Mutex::new(JobQueue::new(config.aging_limit)),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executors,
            active_connections: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            n_autolb: AtomicU64::new(0),
            n_autoub: AtomicU64::new(0),
            n_iterate: AtomicU64::new(0),
            n_sweep: AtomicU64::new(0),
            n_zeroround: AtomicU64::new(0),
            n_status: AtomicU64::new(0),
            n_errors: AtomicU64::new(0),
            h_autolb: AtomicU64::new(0),
            h_autoub: AtomicU64::new(0),
            h_iterate: AtomicU64::new(0),
            h_sweep: AtomicU64::new(0),
            h_zeroround: AtomicU64::new(0),
            latency_ns_total: AtomicU64::new(0),
            latency_ns_max: AtomicU64::new(0),
        });

        let executors = (0..executors)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ServerHandle { addr, shared, accept, executors })
    }
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers a graceful shutdown from the hosting process (the wire
    /// `shutdown` request does the same).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// The current counters (same content as a `status` response).
    pub fn counters(&self) -> Json {
        self.shared.counters_json()
    }

    /// Waits for the accept thread and every executor to exit (after a
    /// shutdown trigger; the queue is drained first).
    pub fn join(self) {
        let _ = self.join_and_report();
    }

    /// Like [`ServerHandle::join`], but returns the final counters —
    /// snapshotted *after* the queue drained, so the numbers cover every
    /// served job.
    pub fn join_and_report(self) -> Json {
        let shared = Arc::clone(&self.shared);
        let _ = self.accept.join();
        for executor in self.executors {
            let _ = executor.join();
        }
        // Give in-flight connection threads a bounded window to finish
        // writing their final responses (they are detached; without this
        // the hosting process could exit mid-write).
        for _ in 0..500 {
            if shared.active_connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        shared.counters_json()
    }
}

fn trigger_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.cv.notify_all();
    // Unblock the accept loop: a throwaway connection makes `incoming`
    // yield once more, after which the loop observes the flag.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().expect("bound listener has an address");
        std::thread::spawn(move || serve_connection(stream, &shared, addr));
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    loop {
        if let Some((_, job)) = queue.pop() {
            drop(queue);
            let result = job.op.execute(&shared.engine).map_err(|e| e.to_string());
            if let Ok(result_text) = &result {
                if let Err(e) = shared.store.put(&job.digest, &job.key, result_text) {
                    eprintln!("relim-service: store write failed for {}: {e}", job.digest);
                }
            }
            // Store first, complete second: a request that misses the
            // coalescing window after this point hits the store instead.
            shared.store.complete(&job.key, &result);
            // A dropped receiver (client gone) is fine — work is stored.
            let _ = job.reply.send(result);
            queue = shared.queue.lock().expect("queue lock poisoned");
        } else if shared.shutdown.load(Ordering::SeqCst) {
            return;
        } else {
            queue = shared.cv.wait(queue).expect("queue lock poisoned");
        }
    }
}

/// Enqueues a job unless the daemon is shutting down. The flag check and
/// the push happen under the same lock the executor's exit check uses,
/// so an accepted job is always served.
fn enqueue(shared: &Shared, class: Class, job: Job) -> Result<(), String> {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err("server is shutting down".to_owned());
    }
    queue.push(class, job);
    shared.cv.notify_one();
    Ok(())
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    shared.active_connections.fetch_add(1, Ordering::SeqCst);
    serve_connection_inner(stream, shared, addr);
    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
}

fn serve_connection_inner(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests_total.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown_after_send) = handle_line(&line, shared);
        let sent = writer.write_all(response.as_bytes()).is_ok()
            && writer.write_all(b"\n").is_ok()
            && writer.flush().is_ok();
        if shutdown_after_send {
            // The acknowledgement is on the wire (or the peer is gone)
            // before the teardown starts, so the requester always hears
            // back.
            trigger_shutdown(shared, addr);
        }
        if !sent {
            break;
        }
    }
}

/// Handles one request line; returns the response line and whether a
/// graceful shutdown must be triggered *after* the response is sent.
fn handle_line(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.n_errors.fetch_add(1, Ordering::Relaxed);
            return (protocol::render_error_response(None, &e), false);
        }
    };
    let Request { id, body } = request;
    match body {
        RequestBody::Status => {
            shared.n_status.fetch_add(1, Ordering::Relaxed);
            (protocol::render_status_response(id, shared.counters_json()), false)
        }
        RequestBody::Shutdown => (protocol::render_shutdown_response(id), true),
        RequestBody::Job { op, class } => {
            let start = Instant::now();
            shared.count_op(&op);
            let key = match op.canonical_key() {
                Ok(key) => key,
                Err(e) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    return (protocol::render_error_response(id, &e.to_string()), false);
                }
            };
            let digest = crate::store::digest_of(&key);
            if let Some(result) = shared.store.get(&digest, &key) {
                shared.count_store_hit(&op);
                shared.record_latency(start.elapsed().as_nanos() as u64);
                return (protocol::render_job_response(id, true, &digest, &result), false);
            }
            // Cold: claim the in-flight slot. The first identical request
            // owns the computation and queues a job; later ones coalesce
            // onto the owner's result channel.
            let rx = match shared.store.claim(&key) {
                InflightClaim::Waiter(rx) => rx,
                InflightClaim::Owner => {
                    let (tx, rx) = mpsc::channel();
                    let job = Job { op, digest: digest.clone(), key: key.clone(), reply: tx };
                    if let Err(e) = enqueue(shared, class, job) {
                        // Unblock any waiter that already attached.
                        shared.store.complete(&key, &Err(e.clone()));
                        shared.n_errors.fetch_add(1, Ordering::Relaxed);
                        return (protocol::render_error_response(id, &e), false);
                    }
                    rx
                }
            };
            let response = match rx.recv() {
                Ok(Ok(result)) => {
                    shared.record_latency(start.elapsed().as_nanos() as u64);
                    protocol::render_job_response(id, false, &digest, &result)
                }
                Ok(Err(e)) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    protocol::render_error_response(id, &e)
                }
                Err(_) => {
                    shared.n_errors.fetch_add(1, Ordering::Relaxed);
                    protocol::render_error_response(id, "executor exited before the job ran")
                }
            };
            (response, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn spawn_serve_cache_shutdown_on_ephemeral_port() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());

        let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        let first = client.submit(&op, None).unwrap();
        assert!(!first.cached);
        assert!(first.result.contains("0-round solvable"), "{}", first.result);
        let second = client.submit(&op, None).unwrap();
        assert!(second.cached, "second identical query must be a store hit");
        assert_eq!(first.result, second.result);
        assert_eq!(first.digest, op.digest().unwrap());

        let status = client.status().unwrap();
        let store = status.get("store").expect("counters carry a store object");
        assert_eq!(store.get("mem_hits").and_then(Json::as_i64), Some(1));

        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn malformed_and_refused_requests_get_error_responses() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let err = client.raw_roundtrip("this is not json").unwrap();
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        let err = client.raw_roundtrip("{\"op\": \"sweep\", \"delta\": 99}").unwrap();
        assert!(err.get("error").and_then(Json::as_str).unwrap().contains("delta"));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn shutdown_closes_the_listener() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.local_addr().to_string();
        handle.shutdown();
        handle.join();
        // After join the listener is gone: new clients are refused
        // outright instead of hanging on an unserved connection.
        let client = Client::new(addr);
        let op = OpRequest::zero_round("A A", "A A").unwrap();
        match client.submit(&op, None) {
            Ok(reply) => panic!("job accepted after shutdown: {reply:?}"),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}
