//! The content-addressed result store.
//!
//! Every served result is stored under its **content address**: the
//! 128-bit FNV-1a digest of the request's canonical key (see
//! [`crate::ops::OpRequest::canonical_key`]). The store is two-level:
//!
//! * an **in-memory map** bounded by `capacity`, evicting in FIFO
//!   (insertion) order — deterministic, no clocks involved;
//! * an optional **on-disk layer**: one JSON file per entry, named
//!   `<digest>.json`, holding the schema tag, the digest, the *full
//!   canonical key* and the result text. Files are written atomically
//!   (temp file + rename), so concurrent writers and crashes never
//!   produce a torn entry — at worst a stale temp file, which loading
//!   ignores.
//!
//! Reads check memory first, then fall back to disk (so eviction only
//! costs a file read, never a recomputation). Every hit — memory or
//! disk — **verifies the full key text**, not just the digest: a digest
//! collision degrades to a miss, never to a wrong answer. Corrupt disk
//! files (unparsable JSON, wrong schema, digest/key mismatch) are
//! skipped and counted at load, and simply overwritten by the next store
//! of that address — recovery is automatic, not manual.
//!
//! ## Request coalescing — the in-flight table
//!
//! When several executors serve identical cold queries concurrently, the
//! store's **in-flight table** lets the first one own the computation and
//! every later identical request attach as a *waiter*:
//! [`ResultStore::claim`] returns [`InflightClaim::Owner`] exactly once
//! per key until the owner calls [`ResultStore::complete`], which
//! notifies all waiters with the owner's result. The table is keyed by
//! the **full canonical key**, not the digest, for the same reason hits
//! verify the key: a digest collision must never hand a waiter bytes
//! computed for a different request. Owners store the result *before*
//! completing, so a request that misses the coalescing window either
//! hits the store or recomputes the same bytes — coalescing is a
//! throughput optimization, never a correctness dependency.
//!
//! ## Disk budget — oldest-first GC
//!
//! The disk layer can be bounded by a byte budget
//! ([`ResultStore::persistent_with_budget`]): whenever a write pushes the
//! directory past the budget, entry files are deleted oldest-first
//! (modification time, ties broken by digest — deterministic even when
//! a coarse-granularity filesystem stamps a burst of writes with one
//! mtime) until the directory fits, never touching the entry just
//! written. A collected entry simply becomes a store miss; the next
//! computation of that address re-persists it.

use relim_core::digest::fnv1a128_hex;
use relim_json::Json;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

/// The schema tag written into every store file.
pub const STORE_SCHEMA: &str = "relim-store/1";

/// The content address of a canonical key: 32 hex characters.
pub fn digest_of(key: &str) -> String {
    fnv1a128_hex(key.as_bytes())
}

struct MemEntry {
    key: String,
    result: String,
}

struct Inner {
    entries: HashMap<String, MemEntry>,
    /// Insertion order of `entries` keys — the FIFO eviction queue.
    order: VecDeque<String>,
}

/// The waiter senders attached to one in-flight computation.
type WaiterSenders = Vec<mpsc::Sender<Result<String, String>>>;

/// The outcome of [`ResultStore::claim`]: either the caller owns the
/// computation for its key, or an identical computation is already in
/// flight and the caller holds a receiver for its result.
pub enum InflightClaim {
    /// No identical computation is in flight. The claimant must compute,
    /// store, and then call [`ResultStore::complete`] exactly once —
    /// even on failure — or waiters block until their receiver errors.
    Owner,
    /// An identical computation is in flight; receive the owner's
    /// result (or error) from the channel.
    Waiter(mpsc::Receiver<Result<String, String>>),
}

/// Counters describing a store's traffic and health (all cumulative
/// since construction except `mem_entries`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the in-memory map.
    pub mem_hits: u64,
    /// Lookups answered from the disk layer (after a memory miss).
    pub disk_hits: u64,
    /// Lookups answered by neither layer.
    pub misses: u64,
    /// Entries written (memory, and disk when persistent).
    pub stores: u64,
    /// Entries evicted from memory by the FIFO bound (still on disk when
    /// persistent).
    pub evictions: u64,
    /// Disk files skipped as corrupt (unparsable, wrong schema, digest or
    /// key mismatch) at load or on a disk-fallback read.
    pub corrupt_skipped: u64,
    /// Requests that attached as waiters to an identical in-flight
    /// computation instead of recomputing (see [`ResultStore::claim`]).
    pub coalesced: u64,
    /// Entry files deleted from disk by the byte-budget GC (see
    /// [`ResultStore::persistent_with_budget`]).
    pub gc_evictions: u64,
    /// Stale `.tmp-*` files (a crash or failed rename mid-write) swept
    /// at open.
    pub tmp_swept: u64,
    /// Bytes currently held by the disk layer (0 for memory-only stores).
    pub disk_bytes: u64,
    /// Distinct entries currently held in memory.
    pub mem_entries: usize,
}

/// A content-addressed result store (see the module docs).
pub struct ResultStore {
    dir: Option<PathBuf>,
    capacity: usize,
    /// Disk byte budget; `None` leaves the disk layer unbounded.
    budget_bytes: Option<u64>,
    inner: Mutex<Inner>,
    /// In-flight computations by full canonical key → waiter senders.
    inflight: Mutex<HashMap<String, WaiterSenders>>,
    /// Serializes disk writes and GC, and carries the current on-disk
    /// byte count so the budget check never re-lists the directory.
    disk: Mutex<u64>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    corrupt_skipped: AtomicU64,
    coalesced: AtomicU64,
    gc_evictions: AtomicU64,
    tmp_swept: AtomicU64,
    /// Uniquifier for temp file names under concurrent writers.
    tmp_seq: AtomicU64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl ResultStore {
    /// A memory-only store holding up to `capacity` entries (at least 1).
    pub fn in_memory(capacity: usize) -> ResultStore {
        ResultStore {
            dir: None,
            capacity: capacity.max(1),
            budget_bytes: None,
            inner: Mutex::new(Inner { entries: HashMap::new(), order: VecDeque::new() }),
            inflight: Mutex::new(HashMap::new()),
            disk: Mutex::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_skipped: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            gc_evictions: AtomicU64::new(0),
            tmp_swept: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// A store persisted under `dir` with an unbounded disk layer — see
    /// [`ResultStore::persistent_with_budget`].
    ///
    /// # Errors
    ///
    /// Propagates directory creation/listing failures.
    pub fn persistent(dir: impl Into<PathBuf>, capacity: usize) -> io::Result<ResultStore> {
        ResultStore::persistent_with_budget(dir, capacity, None)
    }

    /// A store persisted under `dir` (created if missing): existing
    /// entries are loaded into memory up to `capacity` (in sorted
    /// file-name order — deterministic), the rest stay reachable through
    /// the disk fallback. Corrupt files are skipped and counted, never
    /// fatal. When `budget_bytes` is set, the disk layer is bounded: any
    /// write (and the open itself) that finds the directory over budget
    /// deletes entry files oldest-first until it fits (see the module
    /// docs).
    ///
    /// # Errors
    ///
    /// Propagates directory creation/listing failures.
    pub fn persistent_with_budget(
        dir: impl Into<PathBuf>,
        capacity: usize,
        budget_bytes: Option<u64>,
    ) -> io::Result<ResultStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = ResultStore {
            dir: Some(dir.clone()),
            budget_bytes,
            ..ResultStore::in_memory(capacity)
        };
        // Sweep stale `.tmp-*` files first. A crash (or failed rename)
        // mid-[`ResultStore::put`] leaves one behind, and nothing else
        // ever would: temp files live only inside `put`'s disk lock, so
        // across opens they are always garbage. Left alone they
        // accumulate unboundedly *outside* the byte budget — both the
        // `disk_bytes` accounting and the GC listing filter on `.json`.
        for entry in std::fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let stale = entry.file_name().to_str().is_some_and(|n| n.starts_with(".tmp-"));
            if stale && std::fs::remove_file(entry.path()).is_ok() {
                store.tmp_swept.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        names.sort();
        let mut disk_bytes = 0u64;
        for path in &names {
            disk_bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        }
        {
            let mut inner = store.inner.lock().expect("store lock poisoned");
            for path in names {
                if inner.entries.len() >= store.capacity {
                    break; // remaining entries stay disk-only
                }
                match read_entry_file(&path) {
                    Some((digest, key, result)) => {
                        inner.order.push_back(digest.clone());
                        inner.entries.insert(digest, MemEntry { key, result });
                    }
                    None => {
                        store.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        {
            let mut disk = store.disk.lock().expect("store disk lock poisoned");
            *disk = disk_bytes;
            // A directory inherited over budget (budget lowered between
            // runs) is trimmed at open, before any traffic.
            if let Some(budget) = store.budget_bytes {
                if *disk > budget {
                    store.gc_oldest_first(&dir, None, budget, &mut disk);
                }
            }
        }
        Ok(store)
    }

    /// Whether this store persists entries to disk.
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// The stored result for `key` (whose digest the caller already
    /// computed), from memory or disk. Verifies the full key on either
    /// path; `None` on a miss or a (counted) verification failure.
    pub fn get(&self, digest: &str, key: &str) -> Option<String> {
        {
            let inner = self.inner.lock().expect("store lock poisoned");
            if let Some(entry) = inner.entries.get(digest) {
                if entry.key == key {
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry.result.clone());
                }
                // Digest collision: treat as a miss (the store never
                // serves bytes for a different key).
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        if let Some(dir) = &self.dir {
            match read_entry_file(&entry_path(dir, digest)) {
                Some((_, stored_key, result)) if stored_key == key => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(result);
                }
                Some(_) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                None => {} // missing or corrupt: fall through to a miss
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `result` under `key`/`digest` in memory (evicting FIFO
    /// beyond capacity) and, when persistent, on disk via an atomic
    /// temp-file + rename. Concurrent writers of the same address write
    /// the same bytes, so the last rename winning is harmless.
    ///
    /// # Errors
    ///
    /// Propagates disk write failures (the memory layer is already
    /// updated — the store stays servable).
    pub fn put(&self, digest: &str, key: &str, result: &str) -> io::Result<()> {
        {
            let mut inner = self.inner.lock().expect("store lock poisoned");
            if !inner.entries.contains_key(digest) {
                while inner.entries.len() >= self.capacity {
                    if let Some(oldest) = inner.order.pop_front() {
                        inner.entries.remove(&oldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break;
                    }
                }
                inner.order.push_back(digest.to_owned());
            }
            inner.entries.insert(
                digest.to_owned(),
                MemEntry { key: key.to_owned(), result: result.to_owned() },
            );
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.dir {
            let doc = Json::Obj(vec![
                ("schema".into(), Json::str(STORE_SCHEMA)),
                ("digest".into(), Json::str(digest)),
                ("key".into(), Json::str(key)),
                ("result".into(), Json::str(result)),
            ]);
            let text = doc.render();
            let unique = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
            let tmp = dir.join(format!(".tmp-{}-{}-{digest}", std::process::id(), unique));
            let target = entry_path(dir, digest);
            // The disk lock serializes write + accounting + GC, so the
            // byte count stays exact under concurrent writers.
            let mut disk = self.disk.lock().expect("store disk lock poisoned");
            std::fs::write(&tmp, &text)?;
            let replaced = std::fs::metadata(&target).map(|m| m.len()).unwrap_or(0);
            std::fs::rename(&tmp, &target)?;
            *disk = disk.saturating_sub(replaced) + text.len() as u64;
            if let Some(budget) = self.budget_bytes {
                if *disk > budget {
                    self.gc_oldest_first(dir, Some(digest), budget, &mut disk);
                }
            }
        }
        Ok(())
    }

    /// Deletes entry files oldest-first until the directory fits
    /// `budget`, never touching `protect` (the entry just written).
    /// The eviction order is **fully deterministic**: modification time
    /// first, ties broken by the entry's digest (its file stem). Coarse
    /// filesystem timestamp granularity routinely stamps a burst of
    /// writes with one mtime — without the digest tie-break, which
    /// entry dies would depend on directory iteration order, and two
    /// daemons GC-ing identical stores could diverge. Best-effort: a
    /// file that vanishes mid-GC (a racing GC in another process, a
    /// concurrent writer's rename) is simply skipped — the next write
    /// re-runs the check. Caller holds the disk lock.
    fn gc_oldest_first(&self, dir: &Path, protect: Option<&str>, budget: u64, disk: &mut u64) {
        let Ok(listing) = std::fs::read_dir(dir) else { return };
        let mut files: Vec<(std::time::SystemTime, String, PathBuf, u64)> = listing
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let path = e.path();
                let digest = path.file_stem()?.to_str()?.to_owned();
                if protect == Some(digest.as_str()) {
                    return None;
                }
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, digest, path, meta.len()))
            })
            .collect();
        files.sort();
        for (_, _, path, len) in files {
            if *disk <= budget {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                *disk = disk.saturating_sub(len);
                self.gc_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Claims the in-flight slot for `key`: [`InflightClaim::Owner`] when
    /// no identical computation is running (the caller must compute,
    /// [`ResultStore::put`], then [`ResultStore::complete`]), or
    /// [`InflightClaim::Waiter`] carrying a receiver for the owner's
    /// result. Keyed by the full canonical key — a digest collision can
    /// never coalesce two different requests.
    pub fn claim(&self, key: &str) -> InflightClaim {
        let mut inflight = self.inflight.lock().expect("store inflight lock poisoned");
        match inflight.get_mut(key) {
            Some(waiters) => {
                let (tx, rx) = mpsc::channel();
                waiters.push(tx);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                InflightClaim::Waiter(rx)
            }
            None => {
                inflight.insert(key.to_owned(), Vec::new());
                InflightClaim::Owner
            }
        }
    }

    /// Releases the in-flight slot for `key`, sending `result` to every
    /// waiter that attached while the owner computed. The owner must call
    /// this *after* [`ResultStore::put`], so a request arriving between
    /// the two either waits here or hits the store — never recomputes
    /// unnecessarily, and never misses the result.
    pub fn complete(&self, key: &str, result: &Result<String, String>) {
        let waiters = self
            .inflight
            .lock()
            .expect("store inflight lock poisoned")
            .remove(key)
            .unwrap_or_default();
        for tx in waiters {
            // A gone waiter (client disconnected) is fine.
            let _ = tx.send(result.clone());
        }
    }

    /// The stored `(key, result)` under a content address, from memory
    /// or disk. Unlike [`ResultStore::get`] the caller knows only the
    /// digest, so no independent key verification is possible — the disk
    /// path still runs the file's own digest/schema checks. Read-only:
    /// never counted as a hit or a miss (it is an inspection, not
    /// traffic). This is the lookup behind the daemon's `lookup` op and
    /// `relim viz`.
    pub fn lookup_digest(&self, digest: &str) -> Option<(String, String)> {
        {
            let inner = self.inner.lock().expect("store lock poisoned");
            if let Some(entry) = inner.entries.get(digest) {
                return Some((entry.key.clone(), entry.result.clone()));
            }
        }
        let dir = self.dir.as_ref()?;
        read_entry_file(&entry_path(dir, digest)).map(|(_, key, result)| (key, result))
    }

    /// A snapshot of the store counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_skipped: self.corrupt_skipped.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            gc_evictions: self.gc_evictions.load(Ordering::Relaxed),
            tmp_swept: self.tmp_swept.load(Ordering::Relaxed),
            disk_bytes: *self.disk.lock().expect("store disk lock poisoned"),
            mem_entries: self.inner.lock().expect("store lock poisoned").entries.len(),
        }
    }
}

fn entry_path(dir: &Path, digest: &str) -> PathBuf {
    dir.join(format!("{digest}.json"))
}

/// Reads one stored entry directly from a store directory, without
/// opening a [`ResultStore`] — and therefore without the open-time side
/// effects (temp-file sweep, budget GC) that would be hostile to a
/// directory a live daemon is serving from. The read-only path `relim
/// viz --store` uses. `None` for missing or corrupt entries.
pub fn read_stored_entry(dir: &Path, digest: &str) -> Option<(String, String)> {
    read_entry_file(&entry_path(dir, digest)).map(|(_, key, result)| (key, result))
}

/// Reads and fully verifies one store file: parses, checks the schema
/// tag, re-digests the key and compares it to both the recorded digest
/// and the file name. `None` for missing or corrupt files.
fn read_entry_file(path: &Path) -> Option<(String, String, String)> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("schema").and_then(Json::as_str) != Some(STORE_SCHEMA) {
        return None;
    }
    let digest = doc.get("digest").and_then(Json::as_str)?.to_owned();
    let key = doc.get("key").and_then(Json::as_str)?.to_owned();
    let result = doc.get("result").and_then(Json::as_str)?.to_owned();
    if digest_of(&key) != digest {
        return None;
    }
    if path.file_stem().and_then(|s| s.to_str()) != Some(digest.as_str()) {
        return None;
    }
    Some((digest, key, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relim-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_round_trip_and_verified_hits() {
        let store = ResultStore::in_memory(8);
        let key = "relim-store/1\nop=test\n";
        let digest = digest_of(key);
        assert_eq!(store.get(&digest, key), None);
        store.put(&digest, key, "the result\nbytes").unwrap();
        assert_eq!(store.get(&digest, key).as_deref(), Some("the result\nbytes"));
        // A forged digest with a different key is a miss, never a hit.
        assert_eq!(store.get(&digest, "some other key"), None);
        let stats = store.stats();
        assert_eq!((stats.mem_hits, stats.misses, stats.stores), (1, 2, 1));
    }

    #[test]
    fn fifo_eviction_is_bounded_and_counted() {
        let store = ResultStore::in_memory(2);
        let keys: Vec<String> = (0..4).map(|i| format!("key-{i}")).collect();
        for key in &keys {
            store.put(&digest_of(key), key, key).unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.mem_entries, 2);
        assert_eq!(stats.evictions, 2);
        // Newest two survive, oldest two are gone (memory-only store).
        assert_eq!(store.get(&digest_of(&keys[3]), &keys[3]).as_deref(), Some("key-3"));
        assert_eq!(store.get(&digest_of(&keys[0]), &keys[0]), None);
    }

    #[test]
    fn persistent_store_survives_reopen_byte_identically() {
        let dir = tmp_dir("reopen");
        let key = "relim-store/1\nop=test\nproblem:\nN (degree 3):\nM M M\n";
        let digest = digest_of(key);
        let result = "line one\nline \"two\" with ünïcode\n";
        {
            let store = ResultStore::persistent(&dir, 8).unwrap();
            store.put(&digest, key, result).unwrap();
        }
        let reopened = ResultStore::persistent(&dir, 8).unwrap();
        assert_eq!(reopened.get(&digest, key).as_deref(), Some(result));
        assert_eq!(reopened.stats().mem_hits, 1, "reopen loads into memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_falls_back_to_disk() {
        let dir = tmp_dir("fallback");
        let store = ResultStore::persistent(&dir, 1).unwrap();
        let (k1, k2) = ("first key", "second key");
        store.put(&digest_of(k1), k1, "first result").unwrap();
        store.put(&digest_of(k2), k2, "second result").unwrap(); // evicts k1 from memory
        assert_eq!(store.stats().mem_entries, 1);
        assert_eq!(store.get(&digest_of(k1), k1).as_deref(), Some("first result"));
        assert_eq!(store.stats().disk_hits, 1, "evicted entry served from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_coalesces_waiters_until_complete() {
        let store = ResultStore::in_memory(8);
        let key = "relim-store/1\nop=test\ncoalesce\n";
        assert!(matches!(store.claim(key), InflightClaim::Owner));
        let InflightClaim::Waiter(rx1) = store.claim(key) else {
            panic!("second claim must coalesce")
        };
        let InflightClaim::Waiter(rx2) = store.claim(key) else {
            panic!("third claim must coalesce")
        };
        // A *different* key is its own computation, never coalesced.
        assert!(matches!(store.claim("another key"), InflightClaim::Owner));
        assert_eq!(store.stats().coalesced, 2);

        store.complete(key, &Ok("the bytes".to_owned()));
        assert_eq!(rx1.recv().unwrap().unwrap(), "the bytes");
        assert_eq!(rx2.recv().unwrap().unwrap(), "the bytes");
        // The slot is free again: the next identical request owns it.
        assert!(matches!(store.claim(key), InflightClaim::Owner));
        store.complete(key, &Err("boom".to_owned()));
        store.complete("another key", &Ok(String::new()));
    }

    #[test]
    fn budget_gc_deletes_oldest_first_and_reput_repersists() {
        let dir = tmp_dir("gc");
        // Each entry file is ~130 bytes; a 300-byte budget holds two.
        let store = ResultStore::persistent_with_budget(&dir, 1, Some(300)).unwrap();
        let keys: Vec<String> = (0..3).map(|i| format!("gc key {i}")).collect();
        for key in &keys {
            store.put(&digest_of(key), key, "result payload").unwrap();
            // Distinct mtimes even on coarse-grained filesystems.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let stats = store.stats();
        assert!(stats.gc_evictions >= 1, "{stats:?}");
        assert!(stats.disk_bytes <= 300, "{stats:?}");
        // The newest entry is never the GC victim.
        assert!(dir.join(format!("{}.json", digest_of(&keys[2]))).is_file());
        // The oldest was collected; with mem capacity 1 it is a full miss.
        assert!(!dir.join(format!("{}.json", digest_of(&keys[0]))).is_file());
        assert_eq!(store.get(&digest_of(&keys[0]), &keys[0]), None);
        // Re-putting the collected entry re-persists it.
        store.put(&digest_of(&keys[0]), &keys[0], "result payload").unwrap();
        assert!(dir.join(format!("{}.json", digest_of(&keys[0]))).is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_gc_breaks_equal_mtime_ties_by_digest() {
        let dir = tmp_dir("gc-ties");
        // Entries written with budget off, then *forced* onto one
        // shared mtime — the coarse-filesystem burst scenario.
        let keys: Vec<String> = (0..4).map(|i| format!("tie key {i}")).collect();
        {
            let store = ResultStore::persistent(&dir, 8).unwrap();
            for key in &keys {
                store.put(&digest_of(key), key, "result payload").unwrap();
            }
        }
        let stamp = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        let mut digests: Vec<String> = keys.iter().map(|k| digest_of(k)).collect();
        for digest in &digests {
            let file = std::fs::File::options()
                .write(true)
                .open(dir.join(format!("{digest}.json")))
                .unwrap();
            file.set_modified(stamp).unwrap();
        }
        // Each entry file is ~130 bytes; a 300-byte budget keeps two.
        // With all mtimes equal, the victims must be exactly the two
        // smallest digests — insertion order is irrelevant.
        let store = ResultStore::persistent_with_budget(&dir, 8, Some(300)).unwrap();
        let stats = store.stats();
        assert_eq!(stats.gc_evictions, 2, "{stats:?}");
        digests.sort();
        assert!(!dir.join(format!("{}.json", digests[0])).is_file(), "smallest digest dies first");
        assert!(!dir.join(format!("{}.json", digests[1])).is_file());
        assert!(dir.join(format!("{}.json", digests[2])).is_file());
        assert!(dir.join(format!("{}.json", digests[3])).is_file(), "largest digest survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_gc_trims_an_inherited_directory_at_open() {
        let dir = tmp_dir("gc-open");
        {
            let unbounded = ResultStore::persistent(&dir, 8).unwrap();
            for i in 0..4 {
                let key = format!("open key {i}");
                unbounded.put(&digest_of(&key), &key, "result payload").unwrap();
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            assert_eq!(unbounded.stats().gc_evictions, 0, "no budget, no GC");
        }
        let store = ResultStore::persistent_with_budget(&dir, 8, Some(300)).unwrap();
        let stats = store.stats();
        assert!(stats.gc_evictions >= 1, "{stats:?}");
        assert!(stats.disk_bytes <= 300, "{stats:?}");
        // The newest entry survived the trim.
        assert!(dir.join(format!("{}.json", digest_of("open key 3"))).is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_temp_files_are_swept_at_open() {
        let dir = tmp_dir("tmp-sweep");
        let key = "crash key";
        let digest = digest_of(key);
        {
            let store = ResultStore::persistent(&dir, 8).unwrap();
            store.put(&digest, key, "survivor").unwrap();
        }
        // Simulate a crash mid-`put`: temp files written but never
        // renamed (one from this "process", one from an older pid).
        std::fs::write(dir.join(format!(".tmp-{}-7-{digest}", std::process::id())), "half")
            .unwrap();
        std::fs::write(dir.join(format!(".tmp-1-0-{digest}")), "older half").unwrap();
        let store = ResultStore::persistent(&dir, 8).unwrap();
        let stats = store.stats();
        assert_eq!(stats.tmp_swept, 2, "{stats:?}");
        assert_eq!(stats.corrupt_skipped, 0, "temp files never count as corrupt entries");
        let survivors: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().and_then(|e| e.file_name().to_str().map(str::to_owned)))
            .collect();
        assert_eq!(survivors, vec![format!("{digest}.json")], "only the real entry remains");
        // The byte accounting covers exactly the surviving entry.
        assert_eq!(store.get(&digest, key).as_deref(), Some("survivor"));
        let entry_len = std::fs::metadata(entry_path(&dir, &digest)).unwrap().len();
        assert_eq!(stats.disk_bytes, entry_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_lookup_reads_memory_and_disk_without_counting_traffic() {
        let dir = tmp_dir("lookup");
        let store = ResultStore::persistent(&dir, 1).unwrap();
        let (k1, k2) = ("lookup key 1", "lookup key 2");
        store.put(&digest_of(k1), k1, "r1").unwrap();
        store.put(&digest_of(k2), k2, "r2").unwrap(); // evicts k1 to disk-only
        let (key, result) = store.lookup_digest(&digest_of(k2)).unwrap();
        assert_eq!((key.as_str(), result.as_str()), (k2, "r2"), "memory path");
        let (key, result) = store.lookup_digest(&digest_of(k1)).unwrap();
        assert_eq!((key.as_str(), result.as_str()), (k1, "r1"), "disk path");
        assert_eq!(store.lookup_digest("0000"), None);
        let stats = store.stats();
        assert_eq!((stats.mem_hits, stats.disk_hits, stats.misses), (0, 0, 0), "{stats:?}");
        // The free-function form reads the same bytes with no store open.
        assert_eq!(read_stored_entry(&dir, &digest_of(k1)), Some((k1.to_owned(), "r1".to_owned())));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_skipped_and_overwritten() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let key = "a key";
        let digest = digest_of(key);
        // Three corruption flavors: garbage bytes, valid JSON with a
        // digest that does not match its key, and a wrong schema tag.
        std::fs::write(dir.join(format!("{digest}.json")), "not json {{{").unwrap();
        let lying = Json::Obj(vec![
            ("schema".into(), Json::str(STORE_SCHEMA)),
            ("digest".into(), Json::str(&digest)),
            ("key".into(), Json::str("a DIFFERENT key")),
            ("result".into(), Json::str("poison")),
        ]);
        std::fs::write(dir.join("lying.json"), lying.render()).unwrap();
        std::fs::write(dir.join("old.json"), "{\"schema\": \"relim-store/0\"}").unwrap();

        let store = ResultStore::persistent(&dir, 8).unwrap();
        assert_eq!(store.stats().corrupt_skipped, 3, "{:?}", store.stats());
        assert_eq!(store.get(&digest, key), None, "corrupt entry must read as a miss");
        // Recovery: the next put simply overwrites the bad file.
        store.put(&digest, key, "good result").unwrap();
        let reopened = ResultStore::persistent(&dir, 8).unwrap();
        assert_eq!(reopened.get(&digest, key).as_deref(), Some("good result"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
