//! A blocking client for the daemon's JSON-lines protocol.
//!
//! One TCP connection per call (the protocol allows pipelining on a kept
//! connection, but the CLI and the bench kernels are one-shot callers —
//! connection setup is nanoseconds next to a round-elimination job).

use crate::ops::OpRequest;
use crate::protocol::{self, PingInfo};
use crate::queue::Class;
use crate::trace::{TraceContext, TraceDump};
use relim_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client error: connection failures, protocol violations, or an
/// `ok: false` response (with the server's `error` text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ClientError {}

/// A successful job response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReply {
    /// Whether the result was served from the content-addressed store.
    pub cached: bool,
    /// The content address of the query.
    pub digest: String,
    /// The canonical result text — byte-identical to the same query run
    /// in-process.
    pub result: String,
}

/// A blocking protocol client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7341`), with a
    /// 10-minute I/O timeout (bulk sweeps are slow by design).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into(), timeout: Duration::from_secs(600) }
    }

    /// Overrides the per-call I/O timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Submits a job, optionally overriding its scheduling class.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures and server-side errors.
    pub fn submit(&self, op: &OpRequest, class: Option<Class>) -> Result<JobReply, ClientError> {
        self.submit_traced(op, class, None)
    }

    /// Like [`Client::submit`], optionally stamping the request with a
    /// trace context (see [`crate::trace`]). The response — and the
    /// served bytes — are identical with or without one.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures and server-side errors.
    pub fn submit_traced(
        &self,
        op: &OpRequest,
        class: Option<Class>,
        trace: Option<&TraceContext>,
    ) -> Result<JobReply, ClientError> {
        let doc = self.roundtrip(&protocol::render_job_request_traced(op, class, None, trace))?;
        let ok = doc.get("ok").and_then(Json::as_bool).unwrap_or(false);
        if !ok {
            let error = doc.get("error").and_then(Json::as_str).unwrap_or("unspecified error");
            return Err(ClientError(format!("server refused the job: {error}")));
        }
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ClientError(format!("response missing `{key}`")))
        };
        Ok(JobReply {
            cached: doc
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError("response missing `cached`".into()))?,
            digest: field("digest")?,
            result: field("result")?,
        })
    }

    /// Fetches the daemon counters (the `counters` object of a `status`
    /// response).
    ///
    /// # Errors
    ///
    /// Connection/protocol failures.
    pub fn status(&self) -> Result<Json, ClientError> {
        let doc = self.roundtrip(&protocol::render_admin_request("status", None))?;
        doc.get("counters")
            .cloned()
            .ok_or_else(|| ClientError("status response missing `counters`".into()))
    }

    /// Fetches the counters as Prometheus text exposition (the
    /// `metrics` string of a `metrics` response).
    ///
    /// # Errors
    ///
    /// Connection/protocol failures.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let doc = self.roundtrip(&protocol::render_admin_request("metrics", None))?;
        doc.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError("metrics response missing `metrics`".into()))
    }

    /// Fetches the scheduler event log: the timeline JSON object and its
    /// text-gantt rendering.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures.
    pub fn timeline(&self) -> Result<(Json, String), ClientError> {
        let doc = self.roundtrip(&protocol::render_admin_request("timeline", None))?;
        let timeline = doc
            .get("timeline")
            .cloned()
            .ok_or_else(|| ClientError("timeline response missing `timeline`".into()))?;
        let gantt = doc
            .get("gantt")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError("timeline response missing `gantt`".into()))?;
        Ok((timeline, gantt))
    }

    /// Fetches one stored entry by content address: its canonical key
    /// and result text. Errors when nothing is stored under `digest`.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures and unknown digests.
    pub fn lookup(&self, digest: &str) -> Result<(String, String), ClientError> {
        let doc = self.roundtrip(&protocol::render_lookup_request(digest, None))?;
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            let error = doc.get("error").and_then(Json::as_str).unwrap_or("unspecified error");
            return Err(ClientError(format!("lookup failed: {error}")));
        }
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ClientError(format!("lookup response missing `{key}`")))
        };
        Ok((field("key")?, field("result")?))
    }

    /// Fetches one stored entry the fleet way: `Some((key, result))`
    /// when the daemon has the digest, `None` for a clean miss (the
    /// `fetch` op never treats a cold cache as an error).
    ///
    /// # Errors
    ///
    /// Connection/protocol failures and server-refused requests.
    pub fn fetch(&self, digest: &str) -> Result<Option<(String, String)>, ClientError> {
        let doc = self.roundtrip(&protocol::render_fetch_request(digest, None))?;
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            let error = doc.get("error").and_then(Json::as_str).unwrap_or("unspecified error");
            return Err(ClientError(format!("fetch failed: {error}")));
        }
        if doc.get("found").and_then(Json::as_bool) != Some(true) {
            return Ok(None);
        }
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ClientError(format!("fetch response missing `{key}`")))
        };
        Ok(Some((field("key")?, field("result")?)))
    }

    /// Pings the daemon: `(uptime_ms, store_entries)` on a pong. The
    /// same exchange the fleet's breaker uses as its liveness probe.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures and pong-less responses.
    pub fn ping(&self) -> Result<(u64, u64), ClientError> {
        let doc = self.roundtrip(&protocol::render_admin_request("ping", None))?;
        if doc.get("pong").and_then(Json::as_bool) != Some(true) {
            return Err(ClientError(format!("{} answered ping without a pong", self.addr)));
        }
        let int = |key: &str| {
            doc.get(key)
                .and_then(Json::as_i64)
                .ok_or_else(|| ClientError(format!("ping response missing `{key}`")))
        };
        Ok((int("uptime_ms")?.max(0) as u64, int("store_entries")?.max(0) as u64))
    }

    /// Pings the daemon and returns the full pong: uptime, store size
    /// and the timeline/span window capacities with their drop counts —
    /// what `relim trace --peers` uses to warn about incomplete merges.
    /// Fields an older daemon does not send read as zero.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures and pong-less responses.
    pub fn ping_info(&self) -> Result<PingInfo, ClientError> {
        let doc = self.roundtrip(&protocol::render_admin_request("ping", None))?;
        if doc.get("pong").and_then(Json::as_bool) != Some(true) {
            return Err(ClientError(format!("{} answered ping without a pong", self.addr)));
        }
        Ok(PingInfo::from_json(&doc))
    }

    /// Dumps the daemon's recorded spans, optionally filtered to one
    /// trace id. A daemon running without `--trace` answers with an
    /// empty zero-window dump, not an error.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures and malformed dumps.
    pub fn trace_dump(&self, trace_id: Option<u64>) -> Result<TraceDump, ClientError> {
        let doc = self.roundtrip(&protocol::render_trace_request(trace_id, None))?;
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            let error = doc.get("error").and_then(Json::as_str).unwrap_or("unspecified error");
            return Err(ClientError(format!("trace dump failed: {error}")));
        }
        let trace =
            doc.get("trace").ok_or_else(|| ClientError("trace response missing `trace`".into()))?;
        TraceDump::parse(trace).map_err(ClientError)
    }

    /// Requests a graceful shutdown and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Connection/protocol failures.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let doc = self.roundtrip(&protocol::render_admin_request("shutdown", None))?;
        match doc.get("shutting_down").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => Err(ClientError("shutdown was not acknowledged".into())),
        }
    }

    /// Sends one raw line and parses the one-line response — the
    /// building block of the typed calls, exposed for protocol tests.
    ///
    /// # Errors
    ///
    /// Connection failures and unparsable responses.
    pub fn raw_roundtrip(&self, line: &str) -> Result<Json, ClientError> {
        self.roundtrip(line)
    }

    fn roundtrip(&self, line: &str) -> Result<Json, ClientError> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError(format!("cannot connect to {}: {e}", self.addr)))?;
        stream.set_read_timeout(Some(self.timeout)).map_err(|e| ClientError(e.to_string()))?;
        stream.set_write_timeout(Some(self.timeout)).map_err(|e| ClientError(e.to_string()))?;
        let mut writer = stream.try_clone().map_err(|e| ClientError(e.to_string()))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| ClientError(format!("write to {} failed: {e}", self.addr)))?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| ClientError(format!("read from {} failed: {e}", self.addr)))?;
        if n == 0 {
            return Err(ClientError(format!("{} closed the connection", self.addr)));
        }
        Json::parse(response.trim_end())
            .map_err(|e| ClientError(format!("unparsable response from {}: {e}", self.addr)))
    }
}
