//! Request-scoped distributed tracing across the fleet.
//!
//! A **trace context** — a `trace_id` plus the parent span id, both
//! 64-bit values spelled as 16-digit lowercase hex on the wire — is
//! minted at daemon ingress for every job request when tracing is
//! enabled (`relim serve --trace`), or adopted from the request's
//! optional `trace_id`/`parent_span` fields when a client (or an
//! upstream daemon) supplied one. The context is **propagated** on the
//! wire by the fleet's `fetch` calls, so one trace id follows a request
//! across daemons: the requester's per-attempt `peer-fetch` span is the
//! parent of the owner's `fetch-serve` span.
//!
//! Each daemon records its spans into a bounded, thread-safe
//! [`SpanLog`] modeled on [`crate::timeline::EventLog`]: a fixed
//! capacity window, the oldest spans dropped **and counted** beyond it,
//! so a long-lived daemon pays a fixed memory cost. Spans carry a name,
//! a start offset and duration in nanoseconds **on the recording
//! daemon's own monotonic clock**, and a flat list of string
//! attributes (retry numbers, breaker state, engine counter deltas).
//!
//! ## Clock model
//!
//! There is deliberately no cross-host clock: `start_ns` is an offset
//! from the recording daemon's `SpanLog` epoch and is meaningful only
//! relative to other spans of the *same* daemon. Cross-daemon structure
//! comes exclusively from the propagated ids (`trace_id` + parent span
//! links), never from comparing timestamps between hosts — the merged
//! renderings group and indent by parentage and label every span with
//! its daemon.
//!
//! ## Renderings
//!
//! A set of per-daemon dumps ([`TraceDump`], the payload of the
//! `{"op": "trace"}` protocol op) merges into a cross-daemon tree
//! ([`render_tree`]) — straight-line chains contracted onto one line,
//! the same readability idea `relim viz` applies to derivation DAGs —
//! or into Chrome trace-event JSON ([`render_chrome`], `"ph":"X"`
//! complete events, one process per daemon) loadable in Perfetto or
//! `chrome://tracing`.

use relim_json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The schema tag of the trace-dump JSON rendering.
pub const TRACE_SCHEMA: &str = "relim-trace/1";

/// The span window the server keeps by default.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// A trace id or span id as its wire spelling: 16 lowercase hex digits.
pub fn render_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire id: 1–16 hex digits (case-insensitive). `None` for
/// anything else — a malformed id is a protocol error, never a guess.
pub fn parse_id(text: &str) -> Option<u64> {
    if text.is_empty() || text.len() > 16 || !text.chars().all(|c| c.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// Mints a fresh trace id: wall-clock nanoseconds mixed with a
/// process-wide counter through splitmix64, so concurrent mints in one
/// process and mints across fleet members are distinct in practice.
/// Never zero (zero is reserved as "no id" in renderings).
pub fn mint_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seed = nanos
        .wrapping_add(COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(u64::from(std::process::id()));
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z.max(1)
}

/// The propagated wire context: which trace a request belongs to and
/// which remote span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this request belongs to.
    pub trace_id: u64,
    /// The causing span on the sending side, when there is one.
    pub parent: Option<u64>,
}

/// One recorded span: a named interval on the recording daemon's
/// monotonic clock, linked into its trace by `trace_id` and `parent`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's own id. Minted from a per-daemon counter seeded at a
    /// random base, so ids are unique across the fleet with overwhelming
    /// probability — cross-daemon parent links resolve by bare span id.
    pub span_id: u64,
    /// The causing span (possibly on another daemon), if any.
    pub parent: Option<u64>,
    /// What the span covers (`request`, `parse`, `queue-wait`,
    /// `compute`, `store-read`, `store-write`, `peer-fetch`,
    /// `fetch-serve`).
    pub name: String,
    /// Nanoseconds since the recording daemon's span-log epoch. Only
    /// comparable to other spans of the same daemon.
    pub start_ns: u64,
    /// The span's duration in nanoseconds.
    pub dur_ns: u64,
    /// Flat string attributes (attempt numbers, breaker state, engine
    /// counter deltas, outcomes).
    pub attrs: Vec<(String, String)>,
}

struct LogInner {
    spans: VecDeque<Span>,
    recorded: u64,
    dropped: u64,
}

/// A bounded, thread-safe span log (see the module docs). The daemon
/// owns one of these only when tracing is enabled — every recording
/// site is one branch on that `Option`, so the tracing-off path costs
/// nothing.
pub struct SpanLog {
    epoch: Instant,
    capacity: usize,
    next_id: AtomicU64,
    inner: Mutex<LogInner>,
}

impl SpanLog {
    /// An empty log retaining up to `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> SpanLog {
        SpanLog {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            // Seed at a random base: parent links cross daemons as bare
            // span ids, so two daemons both counting from 1 would alias
            // unrelated spans (and can even weave a parent cycle).
            next_id: AtomicU64::new(mint_trace_id()),
            inner: Mutex::new(LogInner { spans: VecDeque::new(), recorded: 0, dropped: 0 }),
        }
    }

    /// The window size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the log's epoch — the clock every span of this
    /// daemon is stamped on.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Allocates a fresh span id (never zero, monotone per daemon,
    /// fleet-unique whp thanks to the random base).
    pub fn next_span_id(&self) -> u64 {
        loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            if id != 0 {
                return id;
            }
        }
    }

    /// Appends one span, dropping (and counting) the oldest beyond the
    /// window.
    pub fn record(&self, span: Span) {
        let mut inner = self.inner.lock().expect("span log lock poisoned");
        inner.recorded += 1;
        if inner.spans.len() >= self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
    }

    /// `(recorded, dropped)` without copying the window — the cheap
    /// reading `status`, `ping` and the scrape surface use.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("span log lock poisoned");
        (inner.recorded, inner.dropped)
    }

    /// A consistent copy of the current window, optionally filtered to
    /// one trace id.
    pub fn snapshot(&self, trace_id: Option<u64>) -> TraceSnapshot {
        let inner = self.inner.lock().expect("span log lock poisoned");
        let spans = inner
            .spans
            .iter()
            .filter(|s| trace_id.is_none_or(|t| s.trace_id == t))
            .cloned()
            .collect();
        TraceSnapshot {
            window: self.capacity,
            recorded: inner.recorded,
            dropped: inner.dropped,
            spans,
        }
    }
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog").field("capacity", &self.capacity).finish_non_exhaustive()
    }
}

/// The recording hook the fleet layer threads through a peer fetch so
/// each attempt becomes a span and the outgoing wire request carries
/// the propagated context.
pub struct FetchTrace<'log> {
    /// The requester daemon's span log.
    pub log: &'log SpanLog,
    /// The trace the triggering request belongs to.
    pub trace_id: u64,
    /// The requester-side parent (the request's root span).
    pub parent: u64,
}

/// A point-in-time copy of a span window (the server side of a trace
/// dump).
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// The window size the log was configured with (0 only in the
    /// tracing-disabled placeholder, see [`TraceSnapshot::disabled`]).
    pub window: usize,
    /// Spans ever recorded (including dropped ones).
    pub recorded: u64,
    /// Spans dropped out of the window.
    pub dropped: u64,
    /// The retained (and possibly trace-filtered) spans, oldest first.
    pub spans: Vec<Span>,
}

impl TraceSnapshot {
    /// The dump a daemon with tracing disabled serves: window 0, no
    /// spans — `relim trace` reads the zero window as "this daemon
    /// records nothing", distinct from "recorded nothing yet".
    pub fn disabled() -> TraceSnapshot {
        TraceSnapshot { window: 0, recorded: 0, dropped: 0, spans: Vec::new() }
    }

    /// The JSON rendering (schema [`TRACE_SCHEMA`]); `daemon` is the
    /// serving daemon's address, so merged dumps stay attributable.
    pub fn to_json(&self, daemon: &str) -> Json {
        let spans: Vec<Json> = self.spans.iter().map(span_to_json).collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(TRACE_SCHEMA)),
            ("daemon".into(), Json::str(daemon)),
            ("window".into(), Json::Int(self.window as i64)),
            ("recorded".into(), Json::Int(self.recorded as i64)),
            ("dropped".into(), Json::Int(self.dropped as i64)),
            ("spans".into(), Json::Arr(spans)),
        ])
    }
}

fn span_to_json(span: &Span) -> Json {
    let mut fields = vec![
        ("trace_id".to_owned(), Json::str(render_id(span.trace_id))),
        ("span_id".to_owned(), Json::str(render_id(span.span_id))),
    ];
    if let Some(parent) = span.parent {
        fields.push(("parent".to_owned(), Json::str(render_id(parent))));
    }
    fields.push(("name".to_owned(), Json::str(&span.name)));
    fields.push(("start_ns".to_owned(), Json::Int(span.start_ns as i64)));
    fields.push(("dur_ns".to_owned(), Json::Int(span.dur_ns as i64)));
    fields.push((
        "attrs".to_owned(),
        Json::Obj(span.attrs.iter().map(|(k, v)| (k.clone(), Json::str(v))).collect()),
    ));
    Json::Obj(fields)
}

fn span_from_json(doc: &Json) -> Result<Span, String> {
    let id_field = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .and_then(parse_id)
            .ok_or_else(|| format!("span missing hex field `{key}`"))
    };
    let int_field = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_i64)
            .map(|v| v.max(0) as u64)
            .ok_or_else(|| format!("span missing integer field `{key}`"))
    };
    let parent = match doc.get("parent") {
        None => None,
        Some(v) => Some(
            v.as_str().and_then(parse_id).ok_or_else(|| "malformed span `parent`".to_owned())?,
        ),
    };
    let attrs = match doc.get("attrs") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| (k.clone(), v.as_str().unwrap_or_default().to_owned()))
            .collect(),
        _ => Vec::new(),
    };
    Ok(Span {
        trace_id: id_field("trace_id")?,
        span_id: id_field("span_id")?,
        parent,
        name: doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "span missing `name`".to_owned())?
            .to_owned(),
        start_ns: int_field("start_ns")?,
        dur_ns: int_field("dur_ns")?,
        attrs,
    })
}

/// One daemon's parsed trace dump — the client side of the
/// `{"op": "trace"}` response, ready for cross-daemon merging.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// The serving daemon's address.
    pub daemon: String,
    /// The daemon's span window (0 means tracing is disabled there).
    pub window: u64,
    /// Spans ever recorded on that daemon.
    pub recorded: u64,
    /// Spans dropped out of that daemon's window — a nonzero value
    /// means a merged trace may be incomplete.
    pub dropped: u64,
    /// The dumped spans.
    pub spans: Vec<Span>,
}

impl TraceDump {
    /// Parses the `trace` object of a trace response.
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn parse(doc: &Json) -> Result<TraceDump, String> {
        if doc.get("schema").and_then(Json::as_str) != Some(TRACE_SCHEMA) {
            return Err(format!("trace dump is not schema {TRACE_SCHEMA}"));
        }
        let int = |key: &str| doc.get(key).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        let spans = match doc.get("spans") {
            Some(Json::Arr(items)) => {
                items.iter().map(span_from_json).collect::<Result<Vec<_>, _>>()?
            }
            _ => return Err("trace dump missing `spans` array".to_owned()),
        };
        Ok(TraceDump {
            daemon: doc
                .get("daemon")
                .and_then(Json::as_str)
                .ok_or_else(|| "trace dump missing `daemon`".to_owned())?
                .to_owned(),
            window: int("window"),
            recorded: int("recorded"),
            dropped: int("dropped"),
            spans,
        })
    }
}

/// A span tagged with the index of the dump (daemon) it came from.
struct Tagged<'d> {
    daemon: usize,
    span: &'d Span,
}

/// The trace ids present across `dumps`, ascending.
fn trace_ids(dumps: &[TraceDump]) -> Vec<u64> {
    let mut ids: Vec<u64> = dumps.iter().flat_map(|d| d.spans.iter().map(|s| s.trace_id)).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Renders merged dumps as a cross-daemon text tree: one block per
/// trace id, spans indented under their parents (parent links may cross
/// daemons), straight-line chains — a span whose only child continues
/// the story — contracted onto one line with `->`, the readability idea
/// `relim viz` applies to derivation chains. Every span is labeled with
/// its daemon; durations are per-daemon monotonic readings and are
/// never compared across hosts.
pub fn render_tree(dumps: &[TraceDump]) -> String {
    let mut out = String::new();
    for trace_id in trace_ids(dumps) {
        let spans: Vec<Tagged<'_>> = dumps
            .iter()
            .enumerate()
            .flat_map(|(daemon, d)| {
                d.spans
                    .iter()
                    .filter(|s| s.trace_id == trace_id)
                    .map(move |span| Tagged { daemon, span })
            })
            .collect();
        let daemons: std::collections::BTreeSet<usize> = spans.iter().map(|t| t.daemon).collect();
        out.push_str(&format!(
            "trace {}: {} span(s) across {} daemon(s)\n",
            render_id(trace_id),
            spans.len(),
            daemons.len()
        ));
        // Children by parent span id; roots are spans whose parent is
        // absent or not in the merged set (e.g. dropped out of a
        // window).
        let present: std::collections::BTreeSet<u64> =
            spans.iter().map(|t| t.span.span_id).collect();
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].daemon, spans[i].span.start_ns, spans[i].span.span_id));
        let children_of = |parent: u64| -> Vec<usize> {
            order.iter().copied().filter(|&i| spans[i].span.parent == Some(parent)).collect()
        };
        let roots: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| spans[i].span.parent.is_none_or(|p| !present.contains(&p)))
            .collect();
        // The visited set makes rendering total: a malformed dump (e.g.
        // colliding span ids weaving a parent cycle) prints each span
        // once instead of recursing forever.
        let mut visited = vec![false; spans.len()];
        for root in roots {
            render_node(&spans, dumps, root, 0, &children_of, &mut visited, &mut out);
        }
        // Members of a rootless parent cycle were skipped above; render
        // them as degraded roots so no recorded span vanishes silently.
        for &i in &order {
            if !visited[i] {
                render_node(&spans, dumps, i, 0, &children_of, &mut visited, &mut out);
            }
        }
    }
    if out.is_empty() {
        out.push_str("no spans\n");
    }
    out
}

/// Renders one tree node, contracting single-child chains onto one
/// line, then recursing into the (multi-)children of the chain's tail.
/// Skips (and marks) already-visited nodes so id collisions between
/// daemons can never send the walk into a cycle.
fn render_node(
    spans: &[Tagged<'_>],
    dumps: &[TraceDump],
    node: usize,
    depth: usize,
    children_of: &dyn Fn(u64) -> Vec<usize>,
    visited: &mut [bool],
    out: &mut String,
) {
    if visited[node] {
        return;
    }
    visited[node] = true;
    let fresh = |visited: &[bool], ids: Vec<usize>| -> Vec<usize> {
        ids.into_iter().filter(|&i| !visited[i]).collect()
    };
    let mut segments = vec![node];
    let mut kids = fresh(visited, children_of(spans[node].span.span_id));
    while kids.len() == 1 {
        visited[kids[0]] = true;
        segments.push(kids[0]);
        kids = fresh(visited, children_of(spans[kids[0]].span.span_id));
    }
    let line: Vec<String> = segments
        .iter()
        .map(|&i| {
            let t = &spans[i];
            let attrs = if t.span.attrs.is_empty() {
                String::new()
            } else {
                let pairs: Vec<String> =
                    t.span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" {{{}}}", pairs.join(", "))
            };
            format!(
                "{} {} [{}]{attrs}",
                t.span.name,
                format_duration(t.span.dur_ns),
                dumps[t.daemon].daemon
            )
        })
        .collect();
    out.push_str(&format!("{}{}\n", "  ".repeat(depth + 1), line.join(" -> ")));
    for kid in kids {
        render_node(spans, dumps, kid, depth + 1, children_of, visited, out);
    }
}

/// A nanosecond duration for eyeballs: `ns`, `us`, `ms` or `s`.
fn format_duration(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Renders merged dumps as Chrome trace-event JSON (loadable in
/// Perfetto or `chrome://tracing`): one process per daemon (named via a
/// `"ph":"M"` `process_name` metadata event), one `"ph":"X"` complete
/// event per span with microsecond `ts`/`dur` on the daemon's own
/// clock. The format is built by hand (not via [`Json`]) so the output
/// is byte-predictable — `"ph":"X"` with no spaces — for machine
/// consumers and the CI grep.
pub fn render_chrome(dumps: &[TraceDump]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, dump) in dumps.iter().enumerate() {
        let pid = i + 1;
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            escape_json(&dump.daemon)
        ));
        for span in &dump.spans {
            let mut args = vec![
                format!("\"trace_id\":{}", escape_json(&render_id(span.trace_id))),
                format!("\"span_id\":{}", escape_json(&render_id(span.span_id))),
            ];
            if let Some(parent) = span.parent {
                args.push(format!("\"parent\":{}", escape_json(&render_id(parent))));
            }
            for (k, v) in &span.attrs {
                args.push(format!("{}:{}", escape_json(k), escape_json(v)));
            }
            events.push(format!(
                "{{\"name\":{},\"cat\":\"relim\",\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
                escape_json(&span.name),
                span.start_ns as f64 / 1_000.0,
                span.dur_ns as f64 / 1_000.0,
                args.join(",")
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

/// A JSON string literal (quotes included) for the hand-built Chrome
/// export.
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> Span {
        Span {
            trace_id: trace,
            span_id: id,
            parent,
            name: name.to_owned(),
            start_ns: start,
            dur_ns: dur,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn ids_round_trip_and_reject_garbage() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_id(&render_id(id)), Some(id));
        }
        assert_eq!(render_id(1).len(), 16);
        for bad in ["", "xyz", "0x12", "-1", "+1", "00000000000000000"] {
            assert_eq!(parse_id(bad), None, "{bad}");
        }
    }

    #[test]
    fn minted_trace_ids_are_nonzero_and_distinct() {
        let ids: Vec<u64> = (0..64).map(|_| mint_trace_id()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "64 consecutive mints must not collide");
    }

    #[test]
    fn window_drops_oldest_and_counts() {
        let log = SpanLog::new(2);
        for i in 0..5 {
            log.record(span(7, i + 1, None, "request", i * 10, 5));
        }
        let snap = log.snapshot(None);
        assert_eq!((snap.recorded, snap.dropped, snap.spans.len()), (5, 3, 2));
        assert_eq!(log.stats(), (5, 3));
        assert_eq!(snap.spans[0].span_id, 4, "oldest retained span");
    }

    #[test]
    fn snapshot_filters_by_trace_id() {
        let log = SpanLog::new(16);
        log.record(span(1, 10, None, "request", 0, 5));
        log.record(span(2, 11, None, "request", 1, 5));
        log.record(span(1, 12, Some(10), "parse", 2, 1));
        let snap = log.snapshot(Some(1));
        assert_eq!(snap.spans.len(), 2);
        assert!(snap.spans.iter().all(|s| s.trace_id == 1));
        assert_eq!(log.snapshot(Some(99)).spans.len(), 0);
    }

    #[test]
    fn dump_json_round_trips() {
        let log = SpanLog::new(8);
        let mut with_attrs = span(3, 21, Some(20), "peer-fetch", 100, 250);
        with_attrs.attrs =
            vec![("attempt".into(), "0".into()), ("breaker".into(), "closed".into())];
        log.record(span(3, 20, None, "request", 90, 400));
        log.record(with_attrs.clone());
        let rendered = log.snapshot(None).to_json("127.0.0.1:7341").render_compact();
        let dump = TraceDump::parse(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(dump.daemon, "127.0.0.1:7341");
        assert_eq!(dump.window, 8);
        assert_eq!(dump.spans.len(), 2);
        assert_eq!(dump.spans[1], with_attrs, "spans survive the wire byte-exactly");
    }

    #[test]
    fn tree_merges_across_daemons_and_contracts_chains() {
        // Requester: request -> peer-fetch. Owner: fetch-serve whose
        // parent is the requester's peer-fetch span.
        let requester = TraceDump {
            daemon: "127.0.0.1:7402".into(),
            window: 16,
            recorded: 2,
            dropped: 0,
            spans: vec![
                span(5, 1, None, "request", 0, 900),
                span(5, 2, Some(1), "peer-fetch", 100, 700),
            ],
        };
        let owner = TraceDump {
            daemon: "127.0.0.1:7401".into(),
            window: 16,
            recorded: 1,
            dropped: 0,
            spans: vec![span(5, 9, Some(2), "fetch-serve", 5000, 80)],
        };
        let tree = render_tree(&[requester, owner]);
        assert!(tree.contains("trace 0000000000000005: 3 span(s) across 2 daemon(s)"), "{tree}");
        // The single-child chain contracts: request -> peer-fetch ->
        // fetch-serve on one line, each segment tagged with its daemon.
        let chain = tree.lines().nth(1).expect("chain line");
        assert!(chain.contains("request"), "{tree}");
        assert!(chain.contains("-> peer-fetch"), "{tree}");
        assert!(chain.contains("-> fetch-serve"), "{tree}");
        assert!(chain.contains("[127.0.0.1:7402]") && chain.contains("[127.0.0.1:7401]"), "{tree}");
    }

    #[test]
    fn span_ids_are_seeded_randomly_and_never_zero() {
        let a = SpanLog::new(4);
        let b = SpanLog::new(4);
        let (ida, idb) = (a.next_span_id(), b.next_span_id());
        assert_ne!(ida, 0);
        assert_ne!(idb, 0);
        assert_ne!(ida, idb, "two logs must not both count from the same base");
        assert_eq!(a.next_span_id(), ida.wrapping_add(1), "monotone per daemon");
    }

    #[test]
    fn tree_survives_colliding_span_ids_that_form_a_cycle() {
        // Two daemons that both numbered spans from 1 (the pre-random-
        // base bug): the requester's root (id 1) collides with the
        // owner's fetch-serve (id 1), whose subtree loops back into the
        // requester's peer-fetch (parent 1) — a parent cycle. Rendering
        // must terminate and print every span exactly once.
        let requester = TraceDump {
            daemon: "127.0.0.1:7402".into(),
            window: 16,
            recorded: 2,
            dropped: 0,
            spans: vec![
                span(5, 1, None, "request", 0, 900),
                span(5, 2, Some(1), "peer-fetch", 100, 700),
            ],
        };
        let owner = TraceDump {
            daemon: "127.0.0.1:7401".into(),
            window: 16,
            recorded: 2,
            dropped: 0,
            spans: vec![
                span(5, 1, Some(2), "fetch-serve", 5000, 80),
                span(5, 3, Some(1), "store-read", 5010, 20),
            ],
        };
        let tree = render_tree(&[requester, owner]);
        assert!(tree.contains("4 span(s) across 2 daemon(s)"), "{tree}");
        for name in ["request", "peer-fetch", "fetch-serve", "store-read"] {
            assert_eq!(tree.matches(name).count(), 1, "{name} once: {tree}");
        }
    }

    #[test]
    fn tree_indents_siblings_under_their_parent() {
        let dump = TraceDump {
            daemon: "d".into(),
            window: 16,
            recorded: 3,
            dropped: 0,
            spans: vec![
                span(1, 1, None, "request", 0, 100),
                span(1, 2, Some(1), "parse", 1, 2),
                span(1, 3, Some(1), "store-read", 5, 10),
            ],
        };
        let tree = render_tree(&[dump]);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 4, "{tree}");
        assert!(lines[1].starts_with("  request"), "{tree}");
        assert!(lines[2].starts_with("    parse"), "{tree}");
        assert!(lines[3].starts_with("    store-read"), "{tree}");
    }

    #[test]
    fn chrome_export_is_parseable_and_carries_complete_events() {
        let dump = TraceDump {
            daemon: "127.0.0.1:7341".into(),
            window: 16,
            recorded: 1,
            dropped: 0,
            spans: vec![{
                let mut s = span(1, 1, None, "request", 1500, 2500);
                s.attrs = vec![("op".into(), "zero-round".into())];
                s
            }],
        };
        let chrome = render_chrome(&[dump]);
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"ph\":\"M\""), "{chrome}");
        assert!(chrome.contains("\"process_name\""), "{chrome}");
        assert!(chrome.contains("\"ts\":1.500"), "microsecond timestamps: {chrome}");
        let doc = Json::parse(chrome.trim_end()).expect("valid JSON");
        let Some(Json::Arr(events)) = doc.get("traceEvents") else { panic!("traceEvents") };
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("request"));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("op")).and_then(Json::as_str),
            Some("zero-round")
        );
    }

    #[test]
    fn escaped_strings_stay_valid_json() {
        let dump = TraceDump {
            daemon: "weird\"host\\name\n:1".into(),
            window: 1,
            recorded: 0,
            dropped: 0,
            spans: vec![],
        };
        let chrome = render_chrome(&[dump]);
        assert!(Json::parse(chrome.trim_end()).is_ok(), "{chrome}");
    }
}
