//! The servable round-elimination operations.
//!
//! Each [`OpRequest`] has three canonical faces:
//!
//! * a **canonical key** ([`OpRequest::canonical_key`]) — the full text
//!   the content-addressed store hashes and verifies: a format tag, the
//!   operation name, its parameters in a fixed order, and (for
//!   single-problem operations) the *parsed and re-rendered* problem, so
//!   two textual spellings of the same problem (`;` vs newline
//!   separators, condensed vs expanded configurations) address the same
//!   stored result;
//! * a **digest** ([`OpRequest::digest`]) — the 128-bit FNV-1a content
//!   address of that key (see [`relim_core::digest`]);
//! * a **canonical rendering** ([`OpRequest::execute`]) — the result
//!   text. The `relim` CLI's local `autolb` / `autoub` / `fixed-point` /
//!   `zeroround` / `sweep` subcommands render through these same
//!   functions, which is what makes a served result **byte-identical**
//!   to the same query run in-process at any thread count.
//!
//! The key deliberately excludes the engine's thread count and
//! memoization toggle: both are performance knobs with no effect on
//! output bytes (the differential suites pin this), so they must not
//! split the cache.

use relim_core::digest::fnv1a128_hex;
use relim_core::{autolb, autoub, zeroround, Engine, Problem};
use relim_json::Json;

/// A human-readable operation error (parse failures, invalid parameters,
/// engine errors), carried over the wire as the `error` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpError(pub String);

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for OpError {}

impl From<relim_core::RelimError> for OpError {
    fn from(e: relim_core::RelimError) -> OpError {
        OpError(e.to_string())
    }
}

/// The triviality criterion of an `autolb` search (mirrors
/// [`autolb::Triviality`], with a stable wire spelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Non-triviality even given a Δ-edge coloring (the paper's gadget
    /// criterion) — the default.
    Gadget,
    /// Bare port-numbering triviality.
    Universal,
}

impl Criterion {
    /// The wire spelling (`gadget` / `universal`).
    pub fn as_str(self) -> &'static str {
        match self {
            Criterion::Gadget => "gadget",
            Criterion::Universal => "universal",
        }
    }

    /// Parses the wire spelling.
    ///
    /// # Errors
    ///
    /// Rejects anything but `gadget` / `universal`.
    pub fn parse(s: &str) -> Result<Criterion, OpError> {
        match s {
            "gadget" => Ok(Criterion::Gadget),
            "universal" => Ok(Criterion::Universal),
            other => Err(OpError(format!("criterion must be gadget|universal, got `{other}`"))),
        }
    }

    fn triviality(self) -> autolb::Triviality {
        match self {
            Criterion::Gadget => autolb::Triviality::GadgetEdgeColoring,
            Criterion::Universal => autolb::Triviality::Universal,
        }
    }
}

/// Upper bound on the step-count parameters a served job may request —
/// the daemon refuses unbounded work instead of wedging the executor.
pub const MAX_STEPS_LIMIT: usize = 64;
/// Upper bound on label budgets / label limits (the engine itself caps
/// enumeration at 22 labels; anything above 64 is a typo, not a query).
pub const MAX_LABEL_LIMIT: usize = 64;
/// The `Δ` range a served sweep may ask for (Δ=9 is already hours of
/// work; beyond that the request is a denial of service, not a query).
pub const SWEEP_DELTA_RANGE: std::ops::RangeInclusive<u32> = 3..=9;

/// A servable round-elimination job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpRequest {
    /// Automatic lower-bound search (`relim autolb`).
    AutoLb {
        /// Node constraint text (`;` or newline separated lines).
        node: String,
        /// Edge constraint text.
        edge: String,
        /// Maximum round-elimination steps of the merge search.
        max_steps: usize,
        /// Label budget per step.
        labels: usize,
        /// Triviality criterion.
        criterion: Criterion,
    },
    /// Automatic upper-bound search (`relim autoub`).
    AutoUb {
        /// Node constraint text.
        node: String,
        /// Edge constraint text.
        edge: String,
        /// Maximum steps of the chain.
        max_steps: usize,
        /// Label budget per step.
        labels: usize,
        /// Optional proper vertex coloring given as input.
        coloring: Option<usize>,
    },
    /// Iterated `R̄(R(·))` fixed-point probe (`relim fixed-point`).
    Iterate {
        /// Node constraint text.
        node: String,
        /// Edge constraint text.
        edge: String,
        /// Maximum applications.
        max_steps: usize,
        /// Alphabet-size abort threshold.
        label_limit: usize,
    },
    /// Lemma verification sweep over all valid `(a, x)` at one `Δ`
    /// (`relim sweep`) — the bulk-class operation.
    Sweep {
        /// The degree Δ.
        delta: u32,
        /// Which lemma to verify (6 or 8).
        lemma: u32,
    },
    /// 0-round solvability analysis (`relim zeroround`).
    ZeroRound {
        /// Node constraint text.
        node: String,
        /// Edge constraint text.
        edge: String,
    },
}

/// Normalizes a constraint argument: `;` and literal `\n` both separate
/// configuration lines (same convention as the `relim` CLI).
pub fn constraint_text(raw: &str) -> String {
    raw.replace("\\n", "\n").replace(';', "\n")
}

impl OpRequest {
    /// An `autolb` request with the CLI's default search budget
    /// (6 steps, 6 labels, gadget criterion).
    ///
    /// # Errors
    ///
    /// Rejects unparsable constraint text.
    pub fn auto_lb(node: &str, edge: &str) -> Result<OpRequest, OpError> {
        let op = OpRequest::AutoLb {
            node: constraint_text(node),
            edge: constraint_text(edge),
            max_steps: 6,
            labels: 6,
            criterion: Criterion::Gadget,
        };
        op.validate()?;
        Ok(op)
    }

    /// An `autoub` request with the CLI's default budget (6 steps,
    /// 10 labels, no coloring).
    ///
    /// # Errors
    ///
    /// Rejects unparsable constraint text.
    pub fn auto_ub(node: &str, edge: &str) -> Result<OpRequest, OpError> {
        let op = OpRequest::AutoUb {
            node: constraint_text(node),
            edge: constraint_text(edge),
            max_steps: 6,
            labels: 10,
            coloring: None,
        };
        op.validate()?;
        Ok(op)
    }

    /// An `iterate` request with the CLI's default limits (5 steps,
    /// label limit 16).
    ///
    /// # Errors
    ///
    /// Rejects unparsable constraint text.
    pub fn iterate(node: &str, edge: &str) -> Result<OpRequest, OpError> {
        let op = OpRequest::Iterate {
            node: constraint_text(node),
            edge: constraint_text(edge),
            max_steps: 5,
            label_limit: 16,
        };
        op.validate()?;
        Ok(op)
    }

    /// A lemma-`lemma` sweep request at degree `delta`.
    ///
    /// # Errors
    ///
    /// Rejects lemmas other than 6/8 and out-of-range `Δ`.
    pub fn sweep(delta: u32, lemma: u32) -> Result<OpRequest, OpError> {
        let op = OpRequest::Sweep { delta, lemma };
        op.validate()?;
        Ok(op)
    }

    /// A `zero-round` analysis request.
    ///
    /// # Errors
    ///
    /// Rejects unparsable constraint text.
    pub fn zero_round(node: &str, edge: &str) -> Result<OpRequest, OpError> {
        let op = OpRequest::ZeroRound { node: constraint_text(node), edge: constraint_text(edge) };
        op.validate()?;
        Ok(op)
    }

    /// The wire name of the operation (`autolb`, `autoub`, `iterate`,
    /// `sweep`, `zero-round`).
    pub fn name(&self) -> &'static str {
        match self {
            OpRequest::AutoLb { .. } => "autolb",
            OpRequest::AutoUb { .. } => "autoub",
            OpRequest::Iterate { .. } => "iterate",
            OpRequest::Sweep { .. } => "sweep",
            OpRequest::ZeroRound { .. } => "zero-round",
        }
    }

    /// Whether the service schedules this operation as a bulk job by
    /// default (sweeps are; single-problem queries are interactive).
    pub fn is_bulk(&self) -> bool {
        matches!(self, OpRequest::Sweep { .. })
    }

    /// Validates parameters against the serving limits.
    ///
    /// # Errors
    ///
    /// Describes the first offending parameter or the constraint parse
    /// failure.
    pub fn validate(&self) -> Result<(), OpError> {
        let check_steps = |steps: usize| {
            if steps > MAX_STEPS_LIMIT {
                return Err(OpError(format!("max_steps {steps} exceeds limit {MAX_STEPS_LIMIT}")));
            }
            Ok(())
        };
        let check_labels = |labels: usize| {
            if labels > MAX_LABEL_LIMIT {
                return Err(OpError(format!("label bound {labels} exceeds {MAX_LABEL_LIMIT}")));
            }
            Ok(())
        };
        match self {
            OpRequest::AutoLb { max_steps, labels, .. }
            | OpRequest::AutoUb { max_steps, labels, .. } => {
                check_steps(*max_steps)?;
                check_labels(*labels)?;
            }
            OpRequest::Iterate { max_steps, label_limit, .. } => {
                check_steps(*max_steps)?;
                check_labels(*label_limit)?;
            }
            OpRequest::Sweep { delta, lemma } => {
                if !matches!(lemma, 6 | 8) {
                    return Err(OpError(format!("lemma must be 6|8, got {lemma}")));
                }
                if !SWEEP_DELTA_RANGE.contains(delta) {
                    return Err(OpError(format!(
                        "sweep delta {delta} outside the servable range {}..={}",
                        SWEEP_DELTA_RANGE.start(),
                        SWEEP_DELTA_RANGE.end()
                    )));
                }
            }
            OpRequest::ZeroRound { .. } => {}
        }
        self.problem().map(|_| ())
    }

    /// The parsed problem for single-problem operations (`None` for
    /// sweeps), canonicalizing the constraint text.
    ///
    /// # Errors
    ///
    /// Propagates the constraint parse failure.
    pub fn problem(&self) -> Result<Option<Problem>, OpError> {
        match self {
            OpRequest::AutoLb { node, edge, .. }
            | OpRequest::AutoUb { node, edge, .. }
            | OpRequest::Iterate { node, edge, .. }
            | OpRequest::ZeroRound { node, edge } => {
                Ok(Some(Problem::from_text(node, edge).map_err(OpError::from)?))
            }
            OpRequest::Sweep { .. } => Ok(None),
        }
    }

    /// The canonical key of this request — the full text the store
    /// hashes *and verifies on every hit* (so digest collisions degrade
    /// to misses, never to wrong answers). Includes a format-version tag
    /// and the engine semantics version; excludes thread count and
    /// memoization (no effect on output bytes).
    ///
    /// # Errors
    ///
    /// Propagates the constraint parse failure (an unparsable problem
    /// has no canonical form).
    pub fn canonical_key(&self) -> Result<String, OpError> {
        let mut key = format!("relim-store/1\nengine=v1\nop={}\n", self.name());
        match self {
            OpRequest::AutoLb { max_steps, labels, criterion, .. } => {
                key.push_str(&format!(
                    "criterion={}\nlabels={labels}\nmax_steps={max_steps}\n",
                    criterion.as_str()
                ));
            }
            OpRequest::AutoUb { max_steps, labels, coloring, .. } => {
                let coloring = coloring.map_or_else(|| "none".to_owned(), |c| c.to_string());
                key.push_str(&format!(
                    "coloring={coloring}\nlabels={labels}\nmax_steps={max_steps}\n"
                ));
            }
            OpRequest::Iterate { max_steps, label_limit, .. } => {
                key.push_str(&format!("label_limit={label_limit}\nmax_steps={max_steps}\n"));
            }
            OpRequest::Sweep { delta, lemma } => {
                key.push_str(&format!("delta={delta}\nlemma={lemma}\n"));
            }
            OpRequest::ZeroRound { .. } => {}
        }
        if let Some(problem) = self.problem()? {
            key.push_str("problem:\n");
            key.push_str(&problem.render());
            key.push('\n');
        }
        Ok(key)
    }

    /// The content address of this request: the 128-bit FNV-1a digest of
    /// [`OpRequest::canonical_key`], as 32 hex characters.
    ///
    /// # Errors
    ///
    /// Same as [`OpRequest::canonical_key`].
    pub fn digest(&self) -> Result<String, OpError> {
        Ok(fnv1a128_hex(self.canonical_key()?.as_bytes()))
    }

    /// Parses a stored canonical key back into its request — the
    /// inverse of [`OpRequest::canonical_key`], used by `relim viz` to
    /// re-run a stored certificate's query with lineage recording on.
    /// Strict: the reconstructed request must re-render **exactly** the
    /// input key (so a viz of digest `d` provably re-runs the query
    /// stored under `d`) — which also rejects corrupted or foreign keys.
    ///
    /// # Errors
    ///
    /// Malformed keys, unknown ops or parameters, and keys that fail
    /// the exact round-trip check.
    pub fn from_canonical_key(key: &str) -> Result<OpRequest, OpError> {
        let rest = key
            .strip_prefix("relim-store/1\nengine=v1\nop=")
            .ok_or_else(|| OpError("not a relim-store/1 canonical key".to_owned()))?;
        let (name, rest) =
            rest.split_once('\n').ok_or_else(|| OpError("truncated canonical key".to_owned()))?;
        let (params_text, problem_text) = match rest.split_once("problem:\n") {
            Some((params, problem)) => (params, Some(problem)),
            None => (rest, None),
        };
        let param = |key: &str| -> Result<&str, OpError> {
            params_text
                .lines()
                .find_map(|l| l.strip_prefix(key).and_then(|l| l.strip_prefix('=')))
                .ok_or_else(|| OpError(format!("canonical key missing parameter `{key}`")))
        };
        let number = |key: &str| -> Result<usize, OpError> {
            param(key)?
                .parse()
                .map_err(|_| OpError(format!("non-numeric `{key}` in canonical key")))
        };
        let constraints = || -> Result<(String, String), OpError> {
            let text = problem_text
                .ok_or_else(|| OpError(format!("op `{name}` requires a problem block")))?;
            // `Problem::render` shape: `N (degree d):\n…\n\nE:\n…`,
            // plus the key's own trailing newline.
            let text = text.strip_suffix('\n').unwrap_or(text);
            let (node_part, edge) = text
                .split_once("\n\nE:\n")
                .ok_or_else(|| OpError("problem block missing the edge constraint".to_owned()))?;
            let (_, node) = node_part
                .split_once('\n')
                .ok_or_else(|| OpError("problem block missing the node constraint".to_owned()))?;
            Ok((node.to_owned(), edge.to_owned()))
        };
        let op = match name {
            "autolb" => {
                let (node, edge) = constraints()?;
                OpRequest::AutoLb {
                    node,
                    edge,
                    max_steps: number("max_steps")?,
                    labels: number("labels")?,
                    criterion: Criterion::parse(param("criterion")?)?,
                }
            }
            "autoub" => {
                let (node, edge) = constraints()?;
                let coloring = match param("coloring")? {
                    "none" => None,
                    c => Some(c.parse().map_err(|_| {
                        OpError("non-numeric `coloring` in canonical key".to_owned())
                    })?),
                };
                OpRequest::AutoUb {
                    node,
                    edge,
                    max_steps: number("max_steps")?,
                    labels: number("labels")?,
                    coloring,
                }
            }
            "iterate" => {
                let (node, edge) = constraints()?;
                OpRequest::Iterate {
                    node,
                    edge,
                    max_steps: number("max_steps")?,
                    label_limit: number("label_limit")?,
                }
            }
            "sweep" => {
                OpRequest::Sweep { delta: number("delta")? as u32, lemma: number("lemma")? as u32 }
            }
            "zero-round" => {
                let (node, edge) = constraints()?;
                OpRequest::ZeroRound { node, edge }
            }
            other => return Err(OpError(format!("unknown op `{other}` in canonical key"))),
        };
        op.validate()?;
        if op.canonical_key()? != key {
            return Err(OpError(
                "canonical key does not round-trip (corrupted or foreign store entry)".to_owned(),
            ));
        }
        Ok(op)
    }

    /// Executes the operation through `engine` and returns the canonical
    /// result text. Byte-identical at any engine thread count and cache
    /// state; the serving layer stores exactly these bytes.
    ///
    /// # Errors
    ///
    /// Propagates parse, validation and engine errors.
    pub fn execute(&self, engine: &Engine) -> Result<String, OpError> {
        self.validate()?;
        match self {
            OpRequest::AutoLb { max_steps, labels, criterion, .. } => {
                let p = self.problem()?.expect("single-problem op");
                render_autolb(&p, *max_steps, *labels, *criterion, engine)
            }
            OpRequest::AutoUb { max_steps, labels, coloring, .. } => {
                let p = self.problem()?.expect("single-problem op");
                render_autoub(&p, *max_steps, *labels, *coloring, engine)
            }
            OpRequest::Iterate { max_steps, label_limit, .. } => {
                let p = self.problem()?.expect("single-problem op");
                Ok(render_iterate(&p, *max_steps, *label_limit, engine))
            }
            OpRequest::Sweep { delta, lemma } => render_sweep(*delta, *lemma, engine),
            OpRequest::ZeroRound { .. } => {
                let p = self.problem()?.expect("single-problem op");
                Ok(render_zeroround(&p))
            }
        }
    }

    /// The operation as the JSON fields of a protocol request (the `op`
    /// name plus its parameters).
    pub fn to_json_fields(&self) -> Vec<(String, Json)> {
        let mut fields = vec![("op".to_owned(), Json::str(self.name()))];
        match self {
            OpRequest::AutoLb { node, edge, max_steps, labels, criterion } => {
                fields.push(("node".into(), Json::str(node)));
                fields.push(("edge".into(), Json::str(edge)));
                fields.push(("max_steps".into(), Json::Int(*max_steps as i64)));
                fields.push(("labels".into(), Json::Int(*labels as i64)));
                fields.push(("criterion".into(), Json::str(criterion.as_str())));
            }
            OpRequest::AutoUb { node, edge, max_steps, labels, coloring } => {
                fields.push(("node".into(), Json::str(node)));
                fields.push(("edge".into(), Json::str(edge)));
                fields.push(("max_steps".into(), Json::Int(*max_steps as i64)));
                fields.push(("labels".into(), Json::Int(*labels as i64)));
                if let Some(c) = coloring {
                    fields.push(("coloring".into(), Json::Int(*c as i64)));
                }
            }
            OpRequest::Iterate { node, edge, max_steps, label_limit } => {
                fields.push(("node".into(), Json::str(node)));
                fields.push(("edge".into(), Json::str(edge)));
                fields.push(("max_steps".into(), Json::Int(*max_steps as i64)));
                fields.push(("label_limit".into(), Json::Int(*label_limit as i64)));
            }
            OpRequest::Sweep { delta, lemma } => {
                fields.push(("delta".into(), Json::Int(i64::from(*delta))));
                fields.push(("lemma".into(), Json::Int(i64::from(*lemma))));
            }
            OpRequest::ZeroRound { node, edge } => {
                fields.push(("node".into(), Json::str(node)));
                fields.push(("edge".into(), Json::str(edge)));
            }
        }
        fields
    }

    /// Parses the operation out of a protocol request object (missing
    /// numeric parameters take the CLI defaults).
    ///
    /// # Errors
    ///
    /// Describes the missing/ill-typed field or the parameter violation.
    pub fn from_json(obj: &Json) -> Result<OpRequest, OpError> {
        let str_field = |key: &str| -> Result<String, OpError> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(constraint_text)
                .ok_or_else(|| OpError(format!("missing or non-string field `{key}`")))
        };
        let num_field = |key: &str, default: usize| -> Result<usize, OpError> {
            match obj.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_i64()
                    .and_then(|i| usize::try_from(i).ok())
                    .ok_or_else(|| OpError(format!("field `{key}` must be a non-negative int"))),
            }
        };
        let op = match obj.get("op").and_then(Json::as_str) {
            None => return Err(OpError("missing or non-string field `op`".into())),
            Some(name) => name,
        };
        let parsed = match op {
            "autolb" => OpRequest::AutoLb {
                node: str_field("node")?,
                edge: str_field("edge")?,
                max_steps: num_field("max_steps", 6)?,
                labels: num_field("labels", 6)?,
                criterion: match obj.get("criterion").and_then(Json::as_str) {
                    None => Criterion::Gadget,
                    Some(s) => Criterion::parse(s)?,
                },
            },
            "autoub" => OpRequest::AutoUb {
                node: str_field("node")?,
                edge: str_field("edge")?,
                max_steps: num_field("max_steps", 6)?,
                labels: num_field("labels", 10)?,
                coloring: match obj.get("coloring") {
                    None => None,
                    Some(v) => {
                        Some(v.as_i64().and_then(|i| usize::try_from(i).ok()).ok_or_else(|| {
                            OpError("field `coloring` must be a non-negative int".into())
                        })?)
                    }
                },
            },
            "iterate" => OpRequest::Iterate {
                node: str_field("node")?,
                edge: str_field("edge")?,
                max_steps: num_field("max_steps", 5)?,
                label_limit: num_field("label_limit", 16)?,
            },
            "sweep" => {
                // Reject rather than wrap oversized values: a client-side
                // overflow must surface as an error, never as a sweep of
                // some accidentally-in-range truncated Δ.
                let u32_field = |key: &str, default: usize| -> Result<u32, OpError> {
                    u32::try_from(num_field(key, default)?)
                        .map_err(|_| OpError(format!("field `{key}` is out of range")))
                };
                OpRequest::Sweep { delta: u32_field("delta", 0)?, lemma: u32_field("lemma", 8)? }
            }
            "zero-round" | "zeroround" => {
                OpRequest::ZeroRound { node: str_field("node")?, edge: str_field("edge")? }
            }
            other => return Err(OpError(format!("unknown op `{other}`"))),
        };
        parsed.validate()?;
        Ok(parsed)
    }
}

/// The canonical `autolb` rendering — the exact bytes `relim autolb`
/// prints locally and the daemon serves.
fn render_autolb(
    p: &Problem,
    max_steps: usize,
    labels: usize,
    criterion: Criterion,
    engine: &Engine,
) -> Result<String, OpError> {
    let triviality = criterion.triviality();
    let opts = autolb::AutoLbOptions { max_steps, label_budget: labels, triviality };
    let outcome = engine.auto_lower_bound(p, &opts);
    let mut out = String::new();
    for (i, step) in outcome.steps.iter().enumerate() {
        out.push_str(&format!(
            "step {}: |Σ| {} -> {}",
            i + 1,
            step.raw.alphabet().len(),
            step.problem.alphabet().len()
        ));
        if !step.merges.is_empty() {
            let merges: Vec<String> =
                step.merges.iter().map(|(f, t)| format!("{f}->{t}")).collect();
            out.push_str(&format!("  merges: {}", merges.join(", ")));
        }
        out.push('\n');
    }
    out.push_str(&format!("stopped: {:?}\n", outcome.stopped));
    if outcome.unbounded() {
        out.push_str(
            "FIXED POINT: unbounded PN lower bound (⇒ Ω(log n) det / Ω(log log n) rand LOCAL)\n",
        );
    }
    out.push_str(&format!(
        "certified lower bound: {} rounds ({})\n",
        outcome.certified_rounds,
        match triviality {
            autolb::Triviality::GadgetEdgeColoring => "holds even given a Δ-edge coloring",
            autolb::Triviality::Universal => "bare PN model",
        }
    ));
    let replay = autolb::verify_chain(&outcome).map_err(OpError::from)?;
    out.push_str(&format!("certificate replay: OK ({replay} rounds)"));
    Ok(out)
}

/// The canonical `autoub` rendering (shared with `relim autoub`).
fn render_autoub(
    p: &Problem,
    max_steps: usize,
    labels: usize,
    coloring: Option<usize>,
    engine: &Engine,
) -> Result<String, OpError> {
    let opts = autoub::AutoUbOptions { max_steps, label_budget: labels, coloring };
    let outcome = engine.auto_upper_bound(p, &opts);
    let mut out = String::new();
    for (i, step) in outcome.steps.iter().enumerate() {
        out.push_str(&format!(
            "step {}: |Σ| {} -> {}",
            i + 1,
            step.raw.alphabet().len(),
            step.problem.alphabet().len()
        ));
        if !step.removals.is_empty() {
            out.push_str(&format!("  removed: {}", step.removals.join(", ")));
        }
        out.push('\n');
    }
    match (&outcome.bound, &outcome.failure) {
        (Some(b), _) => {
            let kind = match &b.kind {
                autoub::UbKind::Pn => "bare PN model".to_owned(),
                autoub::UbKind::EdgeColoring => "given a Δ-edge coloring".to_owned(),
                autoub::UbKind::VertexColoring { colors } => {
                    format!("given a proper {colors}-vertex coloring (+O(log* n) in LOCAL)")
                }
            };
            out.push_str(&format!("upper bound: {} rounds ({kind})\n", b.rounds));
        }
        (None, Some(f)) => out.push_str(&format!("no upper bound found: {f:?}\n")),
        (None, None) => unreachable!("outcome carries a bound or a failure"),
    }
    let replay = autoub::verify_ub(&outcome).map_err(OpError::from)?;
    out.push_str(&format!("certificate replay: OK ({replay:?})"));
    Ok(out)
}

/// The canonical `iterate` / fixed-point rendering (shared with
/// `relim fixed-point`).
fn render_iterate(p: &Problem, max_steps: usize, label_limit: usize, engine: &Engine) -> String {
    let outcome = engine.iterate_with_limits(p, max_steps, label_limit);
    let mut out = String::from("step  labels  |N|     |E|\n");
    for s in &outcome.stats {
        out.push_str(&format!(
            "{:<5} {:<7} {:<7} {:<7}\n",
            s.step, s.labels, s.node_configs, s.edge_configs
        ));
    }
    out.push_str(&format!("stopped: {:?}", outcome.stopped));
    out
}

/// The canonical `zero-round` rendering (shared with `relim zeroround`).
fn render_zeroround(p: &Problem) -> String {
    let report = zeroround::analyze(p);
    let mut out = format!(
        "deterministically 0-round solvable on the identified-ports gadget: {}\n",
        report.deterministically_solvable
    );
    match &report.witness {
        Some(w) => out.push_str(&format!("witness configuration: {}\n", w.display(p.alphabet()))),
        None => {
            out.push_str("per-configuration self-incompatible labels:\n");
            for (cfg, bad) in &report.bad_labels {
                let bad = bad.expect("no witness, so every configuration has one");
                out.push_str(&format!(
                    "  {}  ⇒  {} is not self-compatible\n",
                    cfg.display(p.alphabet()),
                    p.alphabet().name(bad)
                ));
            }
            out.push_str(&format!(
                "randomized failure probability ≥ {:.3e} (Lemma 15-style bound)\n",
                report.randomized_failure_lower_bound
            ));
        }
    }
    out.trim_end().to_owned()
}

/// The canonical sweep rendering (shared with `relim sweep`). Unlike the
/// pre-service CLI output it does **not** mention the thread count —
/// served bytes must not depend on the daemon's pool width.
fn render_sweep(delta: u32, lemma: u32, engine: &Engine) -> Result<String, OpError> {
    let mut out = String::new();
    match lemma {
        6 => {
            out.push_str(&format!(
                "Lemma 6 sweep at Δ={delta}:\n{:>3} {:>3} {:>14} {:>10}\n",
                "a", "x", "|N(R(Π))|", "verdict"
            ));
            for r in lb_family::lemma6::verify_sweep(delta, engine).map_err(OpError::from)? {
                out.push_str(&format!(
                    "{:>3} {:>3} {:>14} {:>10}\n",
                    r.params.a,
                    r.params.x,
                    r.node_config_count,
                    if r.matches_paper() { "VERIFIED" } else { "MISMATCH" }
                ));
            }
        }
        8 => {
            out.push_str(&format!(
                "Lemma 8 sweep at Δ={delta}:\n{:>3} {:>3} {:>7} {:>7} {:>10}\n",
                "a", "x", "|Σ''|", "|N''|", "verdict"
            ));
            for r in lb_family::lemma8::verify_sweep(delta, engine).map_err(OpError::from)? {
                out.push_str(&format!(
                    "{:>3} {:>3} {:>7} {:>7} {:>10}\n",
                    r.params.a,
                    r.params.x,
                    r.rr_label_count,
                    r.rr_node_config_count,
                    if r.matches_paper() { "VERIFIED" } else { "MISMATCH" }
                ));
            }
        }
        other => return Err(OpError(format!("lemma must be 6|8, got {other}"))),
    }
    Ok(out.trim_end().to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mis_op() -> OpRequest {
        OpRequest::auto_lb("M M M;P O O", "M [P O];O O").unwrap()
    }

    #[test]
    fn canonical_key_is_spelling_independent() {
        let a = mis_op();
        let b = OpRequest::auto_lb("M M M\\nP O O", "M [P O]\\nO O").unwrap();
        assert_eq!(a.canonical_key().unwrap(), b.canonical_key().unwrap());
        assert_eq!(a.digest().unwrap(), b.digest().unwrap());
        // A different op on the same problem addresses different content.
        let z = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        assert_ne!(a.digest().unwrap(), z.digest().unwrap());
    }

    #[test]
    fn canonical_key_round_trips_through_from_canonical_key() {
        let ops = [
            mis_op(),
            OpRequest::auto_ub("M M\nP O", "M [P O]\nO O").unwrap(),
            OpRequest::iterate("M M M;P O O", "M [P O];O O").unwrap(),
            OpRequest::sweep(4, 8).unwrap(),
            OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap(),
        ];
        for op in ops {
            let key = op.canonical_key().unwrap();
            let parsed = OpRequest::from_canonical_key(&key).unwrap();
            // The parsed op carries the *canonical* constraint spelling
            // (the key stores the re-rendered problem), so compare
            // content addresses, not constraint strings.
            assert_eq!(parsed.canonical_key().unwrap(), key);
            assert_eq!(parsed.digest().unwrap(), op.digest().unwrap(), "key:\n{key}");
            assert_eq!(parsed.name(), op.name());
        }
        // An autoub with an explicit coloring round-trips too.
        let OpRequest::AutoUb { node, edge, max_steps, labels, .. } =
            OpRequest::auto_ub("M M\nP O", "M [P O]\nO O").unwrap()
        else {
            unreachable!()
        };
        let colored = OpRequest::AutoUb { node, edge, max_steps, labels, coloring: Some(3) };
        let key = colored.canonical_key().unwrap();
        let parsed = OpRequest::from_canonical_key(&key).unwrap();
        assert_eq!(parsed.canonical_key().unwrap(), key);
        let OpRequest::AutoUb { coloring, .. } = parsed else { unreachable!() };
        assert_eq!(coloring, Some(3));
    }

    #[test]
    fn from_canonical_key_rejects_foreign_and_tampered_keys() {
        assert!(OpRequest::from_canonical_key("not a key").is_err());
        assert!(OpRequest::from_canonical_key("relim-store/1\nengine=v1\nop=nope\n").is_err());
        let key = mis_op().canonical_key().unwrap();
        // Tampering with the problem block fails the round-trip check
        // (an extra blank line the canonical rendering would not emit).
        let tampered = format!("{key}\n");
        assert!(OpRequest::from_canonical_key(&tampered).is_err());
        // Dropping a parameter line is caught as a missing parameter.
        let dropped = key.replace("criterion=gadget\n", "");
        let err = OpRequest::from_canonical_key(&dropped).unwrap_err();
        assert!(err.to_string().contains("criterion"), "{err}");
    }

    #[test]
    fn canonical_key_sees_parameters() {
        let base = mis_op();
        let OpRequest::AutoLb { node, edge, labels, criterion, .. } = base.clone() else {
            unreachable!()
        };
        let deeper = OpRequest::AutoLb { node, edge, max_steps: 7, labels, criterion };
        assert_ne!(base.digest().unwrap(), deeper.digest().unwrap());
        assert!(base.canonical_key().unwrap().contains("max_steps=6"));
        assert!(base.canonical_key().unwrap().contains("engine=v1"));
    }

    #[test]
    fn validation_rejects_abusive_parameters() {
        assert!(OpRequest::sweep(4, 7).is_err(), "lemma 7 does not exist");
        assert!(OpRequest::sweep(99, 8).is_err(), "delta way out of range");
        assert!(OpRequest::sweep(4, 8).is_ok());
        let bad = OpRequest::Iterate {
            node: "A A".into(),
            edge: "A A".into(),
            max_steps: 1000,
            label_limit: 16,
        };
        assert!(bad.validate().is_err());
        assert!(OpRequest::auto_lb("not a constraint ((", "M M").is_err());
    }

    #[test]
    fn json_round_trip() {
        for op in [
            mis_op(),
            OpRequest::auto_ub("M M;P O", "M [P O];O O").unwrap(),
            OpRequest::iterate("O I I", "[O I] I").unwrap(),
            OpRequest::sweep(4, 8).unwrap(),
            OpRequest::zero_round("A A", "A A").unwrap(),
        ] {
            let obj = Json::Obj(op.to_json_fields());
            let back = OpRequest::from_json(&obj).unwrap();
            assert_eq!(back, op, "round trip through {}", obj.render_compact());
        }
        assert!(OpRequest::from_json(&Json::Obj(vec![("op".into(), Json::str("nope"))])).is_err());
        assert!(OpRequest::from_json(&Json::Null).is_err());
    }

    #[test]
    fn execute_matches_engine_in_process_bytes() {
        // The determinism contract in miniature: executing through any
        // session width yields identical bytes.
        let op = OpRequest::iterate("O I I", "[O I] I").unwrap();
        let seq = op.execute(&Engine::sequential()).unwrap();
        assert!(seq.contains("stopped: FixedPoint"), "{seq}");
        for threads in [2, 8] {
            let par = op.execute(&Engine::builder().threads(threads).build()).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn sweep_rendering_is_thread_free() {
        let op = OpRequest::sweep(4, 8).unwrap();
        let out = op.execute(&Engine::sequential()).unwrap();
        assert!(out.starts_with("Lemma 8 sweep at Δ=4:"), "{out}");
        assert!(!out.contains("threads"), "{out}");
        assert!(out.contains("VERIFIED"), "{out}");
    }
}
