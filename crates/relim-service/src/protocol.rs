//! The wire protocol: JSON lines over TCP.
//!
//! **Framing.** Each message is one JSON object serialized compactly
//! ([`relim_json::Json::render_compact`] — string values escape their
//! newlines, so a message can never contain a raw `\n`) followed by a
//! single `\n`. Requests and responses alternate per connection; a
//! client may keep a connection open and pipeline further requests after
//! each response, or reconnect per request — the daemon is
//! thread-per-connection either way.
//!
//! **Requests.** A job request names its operation and parameters (see
//! [`OpRequest::from_json`]) plus two optional envelope fields: `id`
//! (an integer echoed verbatim in the response) and `priority`
//! (`interactive` / `bulk`, defaulting per operation — sweeps are bulk).
//! The admin requests are `{"op": "status"}`, `{"op": "metrics"}`
//! (Prometheus text exposition of the same counters), `{"op":
//! "timeline"}` (the scheduler event log), `{"op": "lookup", "digest":
//! …}` (a read-only fetch of one stored entry by content address),
//! `{"op": "fetch", "digest": …}` (the fleet's peer-to-peer store read
//! — like `lookup`, but a miss is an `ok` response with `found: false`
//! rather than an error, so a remote cold cache is not a fault),
//! `{"op": "ping"}` (liveness: uptime, store entry count and the
//! observability-window health a fleet prober wants — see [`PingInfo`]),
//! `{"op": "trace", "trace_id": …}` (a span dump, optionally filtered
//! to one trace) and `{"op": "shutdown"}`.
//!
//! **Trace propagation.** Job and fetch requests carry two further
//! optional envelope fields: `trace_id` and `parent_span`, both 16-digit
//! hex (see [`crate::trace`]). Absent fields mean "fresh trace" — a
//! daemon with tracing enabled mints its own context — so old clients
//! keep working unchanged; present-but-malformed ids are refused like
//! any other protocol error. Responses never grow trace fields: served
//! bytes stay byte-identical with tracing on or off.
//!
//! **Responses.** Every response carries `ok` (bool) and the echoed
//! `id` when one was given. Successful job responses add `cached`
//! (whether the result came from the store), `digest` (the content
//! address) and `result` (the canonical text — byte-identical to the
//! same query run in-process). Status responses carry a `counters`
//! object; metrics responses a `metrics` string (the exposition text);
//! timeline responses a `timeline` object plus a `gantt` string; lookup
//! responses `digest`/`key`/`result`; shutdown responses
//! `{"shutting_down": true}`. Failures carry `error`.

use crate::ops::OpRequest;
use crate::queue::Class;
use crate::trace::TraceContext;
use relim_json::Json;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echo token, when the client sent one.
    pub id: Option<i64>,
    /// What is being asked.
    pub body: RequestBody,
}

/// The request payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// A round-elimination job with its (possibly overridden) class.
    Job {
        /// The operation.
        op: OpRequest,
        /// Scheduling class: the `priority` field, or the operation's
        /// default ([`OpRequest::is_bulk`]).
        class: Class,
        /// The propagated trace context, when the client sent one.
        trace: Option<TraceContext>,
    },
    /// Counter snapshot request.
    Status,
    /// Prometheus text-exposition scrape of the same counters.
    Metrics,
    /// Scheduler event-log dump (JSON + text gantt).
    Timeline,
    /// Read-only fetch of one stored entry by content address.
    Lookup {
        /// The content address to look up.
        digest: String,
    },
    /// The fleet's peer-to-peer store read: the stored entry under a
    /// content address, or a non-error miss (`found: false`).
    Fetch {
        /// The content address to fetch.
        digest: String,
        /// The propagated trace context, when the requester sent one.
        trace: Option<TraceContext>,
    },
    /// Liveness probe: uptime, store entry count and window health.
    Ping,
    /// Span dump, optionally filtered to one trace id.
    Trace {
        /// Only spans of this trace, when given; the whole window
        /// otherwise.
        trace_id: Option<u64>,
    },
    /// Graceful shutdown request.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message (also suitable as the `error` field of the
/// failure response).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line.trim_end())?;
    let id = doc.get("id").and_then(Json::as_i64);
    let op_name = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing or non-string field `op`".to_owned())?;
    let body = match op_name {
        "status" => RequestBody::Status,
        "metrics" => RequestBody::Metrics,
        "timeline" => RequestBody::Timeline,
        "lookup" => {
            let digest = doc
                .get("digest")
                .and_then(Json::as_str)
                .ok_or_else(|| "lookup requires a string field `digest`".to_owned())?;
            RequestBody::Lookup { digest: digest.to_owned() }
        }
        "fetch" => {
            let digest = doc
                .get("digest")
                .and_then(Json::as_str)
                .ok_or_else(|| "fetch requires a string field `digest`".to_owned())?;
            RequestBody::Fetch { digest: digest.to_owned(), trace: parse_trace_context(&doc)? }
        }
        "ping" => RequestBody::Ping,
        "trace" => {
            let trace_id = match doc.get("trace_id") {
                None => None,
                Some(v) => Some(parse_hex_field(v, "trace_id")?),
            };
            RequestBody::Trace { trace_id }
        }
        "shutdown" => RequestBody::Shutdown,
        _ => {
            let op = OpRequest::from_json(&doc).map_err(|e| e.to_string())?;
            let class = match doc.get("priority").and_then(Json::as_str) {
                None => {
                    if op.is_bulk() {
                        Class::Bulk
                    } else {
                        Class::Interactive
                    }
                }
                Some(s) => Class::parse(s)?,
            };
            RequestBody::Job { op, class, trace: parse_trace_context(&doc)? }
        }
    };
    Ok(Request { id, body })
}

/// A hex id field; present-but-malformed is a protocol error.
fn parse_hex_field(value: &Json, key: &str) -> Result<u64, String> {
    value
        .as_str()
        .and_then(crate::trace::parse_id)
        .ok_or_else(|| format!("field `{key}` must be 1-16 hex digits"))
}

/// The optional propagated trace context of a job or fetch request:
/// `None` when `trace_id` is absent (fresh trace), an error when either
/// id field is present but malformed. A `parent_span` without a
/// `trace_id` is meaningless and refused.
fn parse_trace_context(doc: &Json) -> Result<Option<TraceContext>, String> {
    let trace_id = match doc.get("trace_id") {
        None => {
            if doc.get("parent_span").is_some() {
                return Err("`parent_span` requires a `trace_id`".to_owned());
            }
            return Ok(None);
        }
        Some(v) => parse_hex_field(v, "trace_id")?,
    };
    let parent = match doc.get("parent_span") {
        None => None,
        Some(v) => Some(parse_hex_field(v, "parent_span")?),
    };
    Ok(Some(TraceContext { trace_id, parent }))
}

/// The optional `trace_id`/`parent_span` wire fields of an outgoing
/// request.
fn trace_fields(trace: Option<&TraceContext>) -> Vec<(String, Json)> {
    let mut fields = Vec::new();
    if let Some(ctx) = trace {
        fields.push(("trace_id".to_owned(), Json::str(crate::trace::render_id(ctx.trace_id))));
        if let Some(parent) = ctx.parent {
            fields.push(("parent_span".to_owned(), Json::str(crate::trace::render_id(parent))));
        }
    }
    fields
}

/// Renders a request line for a job (the client side of
/// [`parse_request`]).
pub fn render_job_request(op: &OpRequest, class: Option<Class>, id: Option<i64>) -> String {
    render_job_request_traced(op, class, id, None)
}

/// [`render_job_request`] carrying a propagated trace context.
pub fn render_job_request_traced(
    op: &OpRequest,
    class: Option<Class>,
    id: Option<i64>,
    trace: Option<&TraceContext>,
) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.extend(op.to_json_fields());
    if let Some(class) = class {
        fields.push(("priority".to_owned(), Json::str(class.as_str())));
    }
    fields.extend(trace_fields(trace));
    Json::Obj(fields).render_compact()
}

/// Renders an admin request line (`status` / `shutdown`).
pub fn render_admin_request(op: &str, id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("op".to_owned(), Json::str(op)));
    Json::Obj(fields).render_compact()
}

/// Renders a successful job response line.
pub fn render_job_response(id: Option<i64>, cached: bool, digest: &str, result: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("cached".to_owned(), Json::Bool(cached)));
    fields.push(("digest".to_owned(), Json::str(digest)));
    fields.push(("result".to_owned(), Json::str(result)));
    Json::Obj(fields).render_compact()
}

/// Renders a lookup request line (the client side of the `lookup` op).
pub fn render_lookup_request(digest: &str, id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("op".to_owned(), Json::str("lookup")));
    fields.push(("digest".to_owned(), Json::str(digest)));
    Json::Obj(fields).render_compact()
}

/// Renders a metrics response line around the exposition text.
pub fn render_metrics_response(id: Option<i64>, metrics: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("metrics".to_owned(), Json::str(metrics)));
    Json::Obj(fields).render_compact()
}

/// Renders a timeline response line around the event-log JSON and its
/// gantt rendering.
pub fn render_timeline_response(id: Option<i64>, timeline: Json, gantt: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("timeline".to_owned(), timeline));
    fields.push(("gantt".to_owned(), Json::str(gantt)));
    Json::Obj(fields).render_compact()
}

/// Renders a successful lookup response line.
pub fn render_lookup_response(id: Option<i64>, digest: &str, key: &str, result: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("digest".to_owned(), Json::str(digest)));
    fields.push(("key".to_owned(), Json::str(key)));
    fields.push(("result".to_owned(), Json::str(result)));
    Json::Obj(fields).render_compact()
}

/// Renders a fetch request line (the client side of the `fetch` op).
pub fn render_fetch_request(digest: &str, id: Option<i64>) -> String {
    render_fetch_request_traced(digest, id, None)
}

/// [`render_fetch_request`] carrying a propagated trace context, so the
/// owner's `fetch-serve` span links under the requester's per-attempt
/// `peer-fetch` span.
pub fn render_fetch_request_traced(
    digest: &str,
    id: Option<i64>,
    trace: Option<&TraceContext>,
) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("op".to_owned(), Json::str("fetch")));
    fields.push(("digest".to_owned(), Json::str(digest)));
    fields.extend(trace_fields(trace));
    Json::Obj(fields).render_compact()
}

/// Renders a trace-dump request line (the client side of the `trace`
/// op).
pub fn render_trace_request(trace_id: Option<u64>, id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("op".to_owned(), Json::str("trace")));
    if let Some(trace_id) = trace_id {
        fields.push(("trace_id".to_owned(), Json::str(crate::trace::render_id(trace_id))));
    }
    Json::Obj(fields).render_compact()
}

/// Renders a trace response line around a span-dump object (see
/// [`crate::trace::TraceSnapshot::to_json`]).
pub fn render_trace_response(id: Option<i64>, trace: Json) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("trace".to_owned(), trace));
    Json::Obj(fields).render_compact()
}

/// Renders a fetch response line: `found: true` with the stored key and
/// result, or `found: false` for a miss — both `ok`, because a peer's
/// cold cache is an answer, not a fault.
pub fn render_fetch_response(id: Option<i64>, digest: &str, entry: Option<(&str, &str)>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("digest".to_owned(), Json::str(digest)));
    match entry {
        Some((key, result)) => {
            fields.push(("found".to_owned(), Json::Bool(true)));
            fields.push(("key".to_owned(), Json::str(key)));
            fields.push(("result".to_owned(), Json::str(result)));
        }
        None => fields.push(("found".to_owned(), Json::Bool(false))),
    }
    Json::Obj(fields).render_compact()
}

/// The payload of a ping response: liveness plus the cheap health
/// readings a prober (or `relim trace --peers`) wants — uptime, store
/// entry count, and the capacities and dropped counts of the daemon's
/// bounded observability windows. A zero `span_window` means tracing is
/// disabled on that daemon; a nonzero dropped count means dumps from
/// that window are known-incomplete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PingInfo {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Entries in the result store.
    pub store_entries: u64,
    /// The timeline event-log capacity.
    pub timeline_window: u64,
    /// Timeline events dropped out of the window.
    pub timeline_dropped: u64,
    /// The span-log capacity (0 when tracing is disabled).
    pub span_window: u64,
    /// Spans dropped out of the window.
    pub span_dropped: u64,
}

impl PingInfo {
    /// Parses the fields back out of a ping response document. Fields
    /// an older daemon does not send read as zero.
    pub fn from_json(doc: &Json) -> PingInfo {
        let int = |key: &str| doc.get(key).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        PingInfo {
            uptime_ms: int("uptime_ms"),
            store_entries: int("store_entries"),
            timeline_window: int("timeline_window"),
            timeline_dropped: int("timeline_dropped"),
            span_window: int("span_window"),
            span_dropped: int("span_dropped"),
        }
    }
}

/// Renders a ping response line (see [`PingInfo`]).
pub fn render_ping_response(id: Option<i64>, info: &PingInfo) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("pong".to_owned(), Json::Bool(true)));
    fields.push(("uptime_ms".to_owned(), Json::Int(info.uptime_ms as i64)));
    fields.push(("store_entries".to_owned(), Json::Int(info.store_entries as i64)));
    fields.push(("timeline_window".to_owned(), Json::Int(info.timeline_window as i64)));
    fields.push(("timeline_dropped".to_owned(), Json::Int(info.timeline_dropped as i64)));
    fields.push(("span_window".to_owned(), Json::Int(info.span_window as i64)));
    fields.push(("span_dropped".to_owned(), Json::Int(info.span_dropped as i64)));
    Json::Obj(fields).render_compact()
}

/// Renders a status response line around a `counters` object.
pub fn render_status_response(id: Option<i64>, counters: Json) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("counters".to_owned(), counters));
    Json::Obj(fields).render_compact()
}

/// Renders a shutdown acknowledgement line.
pub fn render_shutdown_response(id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("shutting_down".to_owned(), Json::Bool(true)));
    Json::Obj(fields).render_compact()
}

/// Renders a failure response line.
pub fn render_error_response(id: Option<i64>, error: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(false)));
    fields.push(("error".to_owned(), Json::str(error)));
    Json::Obj(fields).render_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_round_trip_with_defaults() {
        let op = OpRequest::auto_lb("M M M;P O O", "M [P O];O O").unwrap();
        let line = render_job_request(&op, None, Some(7));
        assert!(!line.contains('\n'));
        let req = parse_request(&line).unwrap();
        assert_eq!(req.id, Some(7));
        match req.body {
            RequestBody::Job { op: parsed, class, trace } => {
                assert_eq!(parsed, op);
                assert_eq!(class, Class::Interactive, "autolb defaults to interactive");
                assert_eq!(trace, None, "no trace fields means a fresh trace");
            }
            other => panic!("not a job: {other:?}"),
        }
    }

    #[test]
    fn sweep_defaults_to_bulk_and_priority_overrides() {
        let op = OpRequest::sweep(4, 8).unwrap();
        let line = render_job_request(&op, None, None);
        let RequestBody::Job { class, .. } = parse_request(&line).unwrap().body else {
            panic!("not a job")
        };
        assert_eq!(class, Class::Bulk);
        let line = render_job_request(&op, Some(Class::Interactive), None);
        let RequestBody::Job { class, .. } = parse_request(&line).unwrap().body else {
            panic!("not a job")
        };
        assert_eq!(class, Class::Interactive);
    }

    #[test]
    fn admin_requests_parse() {
        assert_eq!(
            parse_request(&render_admin_request("status", None)).unwrap().body,
            RequestBody::Status
        );
        assert_eq!(
            parse_request(&render_admin_request("metrics", None)).unwrap().body,
            RequestBody::Metrics
        );
        assert_eq!(
            parse_request(&render_admin_request("timeline", None)).unwrap().body,
            RequestBody::Timeline
        );
        assert_eq!(
            parse_request(&render_lookup_request("abc123", Some(9))).unwrap(),
            Request { id: Some(9), body: RequestBody::Lookup { digest: "abc123".into() } }
        );
        assert!(
            parse_request(&render_admin_request("lookup", None)).unwrap_err().contains("digest"),
            "lookup without a digest is refused"
        );
        assert_eq!(
            parse_request(&render_admin_request("shutdown", Some(3))).unwrap(),
            Request { id: Some(3), body: RequestBody::Shutdown }
        );
    }

    #[test]
    fn trace_context_round_trips_and_rejects_garbage() {
        let op = OpRequest::auto_lb("M M M;P O O", "M [P O];O O").unwrap();
        let ctx = TraceContext { trace_id: 0xdead_beef, parent: Some(7) };
        let line = render_job_request_traced(&op, None, None, Some(&ctx));
        let RequestBody::Job { trace, .. } = parse_request(&line).unwrap().body else {
            panic!("not a job")
        };
        assert_eq!(trace, Some(ctx), "the context survives the wire");

        let line = render_fetch_request_traced("abc123", None, Some(&ctx));
        let RequestBody::Fetch { trace, .. } = parse_request(&line).unwrap().body else {
            panic!("not a fetch")
        };
        assert_eq!(trace, Some(ctx));

        // The trace-dump op, filtered and unfiltered.
        assert_eq!(
            parse_request(&render_trace_request(Some(0xabc), Some(4))).unwrap(),
            Request { id: Some(4), body: RequestBody::Trace { trace_id: Some(0xabc) } }
        );
        assert_eq!(
            parse_request(&render_trace_request(None, None)).unwrap().body,
            RequestBody::Trace { trace_id: None }
        );

        // Present-but-malformed ids are protocol errors, not guesses.
        for bad in [
            "{\"op\": \"zero-round\", \"node\": \"A A\", \"edge\": \"A A\", \"trace_id\": \"zz\"}",
            "{\"op\": \"zero-round\", \"node\": \"A A\", \"edge\": \"A A\", \
             \"trace_id\": \"1\", \"parent_span\": \"\"}",
            "{\"op\": \"zero-round\", \"node\": \"A A\", \"edge\": \"A A\", \
             \"parent_span\": \"1\"}",
            "{\"op\": \"fetch\", \"digest\": \"abc\", \"trace_id\": \"not hex\"}",
            "{\"op\": \"trace\", \"trace_id\": \"xyz\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn fleet_requests_parse_and_render() {
        assert_eq!(
            parse_request(&render_fetch_request("abc123", Some(2))).unwrap(),
            Request {
                id: Some(2),
                body: RequestBody::Fetch { digest: "abc123".into(), trace: None }
            }
        );
        assert!(
            parse_request(&render_admin_request("fetch", None)).unwrap_err().contains("digest"),
            "fetch without a digest is refused"
        );
        assert_eq!(
            parse_request(&render_admin_request("ping", Some(8))).unwrap(),
            Request { id: Some(8), body: RequestBody::Ping }
        );
        let hit = render_fetch_response(None, "abc", Some(("the\nkey", "the\nresult")));
        let doc = Json::parse(&hit).unwrap();
        assert_eq!(doc.get("found").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("key").and_then(Json::as_str), Some("the\nkey"));
        let miss = render_fetch_response(Some(1), "abc", None);
        let doc = Json::parse(&miss).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "a miss is not a fault");
        assert_eq!(doc.get("found").and_then(Json::as_bool), Some(false));
        assert!(doc.get("result").is_none());
        let info = PingInfo {
            uptime_ms: 1234,
            store_entries: 7,
            timeline_window: 1024,
            timeline_dropped: 2,
            span_window: 4096,
            span_dropped: 0,
        };
        let pong = Json::parse(&render_ping_response(None, &info)).unwrap();
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
        assert_eq!(pong.get("uptime_ms").and_then(Json::as_i64), Some(1234));
        assert_eq!(pong.get("store_entries").and_then(Json::as_i64), Some(7));
        assert_eq!(pong.get("span_window").and_then(Json::as_i64), Some(4096));
        assert_eq!(PingInfo::from_json(&pong), info, "the health readings round-trip");
        // An old daemon's pong (no window fields) parses with zeros.
        let old = Json::parse("{\"ok\": true, \"pong\": true, \"uptime_ms\": 5}").unwrap();
        assert_eq!(PingInfo::from_json(&old).timeline_window, 0);
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").unwrap_err().contains("op"));
        assert!(parse_request("{\"op\": \"autolb\"}").unwrap_err().contains("node"));
        let err = parse_request(
            "{\"op\": \"zero-round\", \"node\": \"A A\", \"edge\": \"A A\", \
             \"priority\": \"urgent\"}",
        )
        .unwrap_err();
        assert!(err.contains("interactive|bulk"), "{err}");
        // Two requests framed into one line violate the protocol.
        let op = OpRequest::zero_round("A A", "A A").unwrap();
        let doubled = format!("{} {}", render_job_request(&op, None, None), "{\"op\":\"status\"}");
        assert!(parse_request(&doubled).unwrap_err().contains("trailing content"));
    }

    #[test]
    fn responses_render_one_line_and_echo_ids() {
        for line in [
            render_job_response(Some(1), true, "abc", "multi\nline\nresult"),
            render_status_response(None, Json::Obj(vec![("x".into(), Json::Int(1))])),
            render_metrics_response(Some(4), "# TYPE relim_x counter\nrelim_x 1\n"),
            render_timeline_response(None, Json::Obj(vec![]), "timeline: 0 events\n"),
            render_lookup_response(Some(5), "abc", "key\ntext", "result\ntext"),
            render_fetch_response(Some(6), "abc", Some(("key\ntext", "result\ntext"))),
            render_fetch_response(None, "abc", None),
            render_ping_response(
                Some(7),
                &PingInfo { uptime_ms: 99, store_entries: 3, ..PingInfo::default() },
            ),
            render_trace_request(Some(0xfeed), Some(8)),
            render_trace_response(
                None,
                crate::trace::TraceSnapshot::disabled().to_json("127.0.0.1:7341"),
            ),
            render_shutdown_response(Some(2)),
            render_error_response(None, "boom"),
        ] {
            assert!(!line.contains('\n'), "{line}");
            assert!(Json::parse(&line).is_ok(), "{line}");
        }
        let doc = Json::parse(&render_job_response(Some(1), true, "abc", "r")).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
    }
}
