//! The wire protocol: JSON lines over TCP.
//!
//! **Framing.** Each message is one JSON object serialized compactly
//! ([`relim_json::Json::render_compact`] — string values escape their
//! newlines, so a message can never contain a raw `\n`) followed by a
//! single `\n`. Requests and responses alternate per connection; a
//! client may keep a connection open and pipeline further requests after
//! each response, or reconnect per request — the daemon is
//! thread-per-connection either way.
//!
//! **Requests.** A job request names its operation and parameters (see
//! [`OpRequest::from_json`]) plus two optional envelope fields: `id`
//! (an integer echoed verbatim in the response) and `priority`
//! (`interactive` / `bulk`, defaulting per operation — sweeps are bulk).
//! The admin requests are `{"op": "status"}`, `{"op": "metrics"}`
//! (Prometheus text exposition of the same counters), `{"op":
//! "timeline"}` (the scheduler event log), `{"op": "lookup", "digest":
//! …}` (a read-only fetch of one stored entry by content address),
//! `{"op": "fetch", "digest": …}` (the fleet's peer-to-peer store read
//! — like `lookup`, but a miss is an `ok` response with `found: false`
//! rather than an error, so a remote cold cache is not a fault),
//! `{"op": "ping"}` (liveness: uptime and store entry count) and
//! `{"op": "shutdown"}`.
//!
//! **Responses.** Every response carries `ok` (bool) and the echoed
//! `id` when one was given. Successful job responses add `cached`
//! (whether the result came from the store), `digest` (the content
//! address) and `result` (the canonical text — byte-identical to the
//! same query run in-process). Status responses carry a `counters`
//! object; metrics responses a `metrics` string (the exposition text);
//! timeline responses a `timeline` object plus a `gantt` string; lookup
//! responses `digest`/`key`/`result`; shutdown responses
//! `{"shutting_down": true}`. Failures carry `error`.

use crate::ops::OpRequest;
use crate::queue::Class;
use relim_json::Json;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echo token, when the client sent one.
    pub id: Option<i64>,
    /// What is being asked.
    pub body: RequestBody,
}

/// The request payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// A round-elimination job with its (possibly overridden) class.
    Job {
        /// The operation.
        op: OpRequest,
        /// Scheduling class: the `priority` field, or the operation's
        /// default ([`OpRequest::is_bulk`]).
        class: Class,
    },
    /// Counter snapshot request.
    Status,
    /// Prometheus text-exposition scrape of the same counters.
    Metrics,
    /// Scheduler event-log dump (JSON + text gantt).
    Timeline,
    /// Read-only fetch of one stored entry by content address.
    Lookup {
        /// The content address to look up.
        digest: String,
    },
    /// The fleet's peer-to-peer store read: the stored entry under a
    /// content address, or a non-error miss (`found: false`).
    Fetch {
        /// The content address to fetch.
        digest: String,
    },
    /// Liveness probe: uptime and store entry count.
    Ping,
    /// Graceful shutdown request.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message (also suitable as the `error` field of the
/// failure response).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line.trim_end())?;
    let id = doc.get("id").and_then(Json::as_i64);
    let op_name = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing or non-string field `op`".to_owned())?;
    let body = match op_name {
        "status" => RequestBody::Status,
        "metrics" => RequestBody::Metrics,
        "timeline" => RequestBody::Timeline,
        "lookup" => {
            let digest = doc
                .get("digest")
                .and_then(Json::as_str)
                .ok_or_else(|| "lookup requires a string field `digest`".to_owned())?;
            RequestBody::Lookup { digest: digest.to_owned() }
        }
        "fetch" => {
            let digest = doc
                .get("digest")
                .and_then(Json::as_str)
                .ok_or_else(|| "fetch requires a string field `digest`".to_owned())?;
            RequestBody::Fetch { digest: digest.to_owned() }
        }
        "ping" => RequestBody::Ping,
        "shutdown" => RequestBody::Shutdown,
        _ => {
            let op = OpRequest::from_json(&doc).map_err(|e| e.to_string())?;
            let class = match doc.get("priority").and_then(Json::as_str) {
                None => {
                    if op.is_bulk() {
                        Class::Bulk
                    } else {
                        Class::Interactive
                    }
                }
                Some(s) => Class::parse(s)?,
            };
            RequestBody::Job { op, class }
        }
    };
    Ok(Request { id, body })
}

/// Renders a request line for a job (the client side of
/// [`parse_request`]).
pub fn render_job_request(op: &OpRequest, class: Option<Class>, id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.extend(op.to_json_fields());
    if let Some(class) = class {
        fields.push(("priority".to_owned(), Json::str(class.as_str())));
    }
    Json::Obj(fields).render_compact()
}

/// Renders an admin request line (`status` / `shutdown`).
pub fn render_admin_request(op: &str, id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("op".to_owned(), Json::str(op)));
    Json::Obj(fields).render_compact()
}

/// Renders a successful job response line.
pub fn render_job_response(id: Option<i64>, cached: bool, digest: &str, result: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("cached".to_owned(), Json::Bool(cached)));
    fields.push(("digest".to_owned(), Json::str(digest)));
    fields.push(("result".to_owned(), Json::str(result)));
    Json::Obj(fields).render_compact()
}

/// Renders a lookup request line (the client side of the `lookup` op).
pub fn render_lookup_request(digest: &str, id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("op".to_owned(), Json::str("lookup")));
    fields.push(("digest".to_owned(), Json::str(digest)));
    Json::Obj(fields).render_compact()
}

/// Renders a metrics response line around the exposition text.
pub fn render_metrics_response(id: Option<i64>, metrics: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("metrics".to_owned(), Json::str(metrics)));
    Json::Obj(fields).render_compact()
}

/// Renders a timeline response line around the event-log JSON and its
/// gantt rendering.
pub fn render_timeline_response(id: Option<i64>, timeline: Json, gantt: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("timeline".to_owned(), timeline));
    fields.push(("gantt".to_owned(), Json::str(gantt)));
    Json::Obj(fields).render_compact()
}

/// Renders a successful lookup response line.
pub fn render_lookup_response(id: Option<i64>, digest: &str, key: &str, result: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("digest".to_owned(), Json::str(digest)));
    fields.push(("key".to_owned(), Json::str(key)));
    fields.push(("result".to_owned(), Json::str(result)));
    Json::Obj(fields).render_compact()
}

/// Renders a fetch request line (the client side of the `fetch` op).
pub fn render_fetch_request(digest: &str, id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("op".to_owned(), Json::str("fetch")));
    fields.push(("digest".to_owned(), Json::str(digest)));
    Json::Obj(fields).render_compact()
}

/// Renders a fetch response line: `found: true` with the stored key and
/// result, or `found: false` for a miss — both `ok`, because a peer's
/// cold cache is an answer, not a fault.
pub fn render_fetch_response(id: Option<i64>, digest: &str, entry: Option<(&str, &str)>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("digest".to_owned(), Json::str(digest)));
    match entry {
        Some((key, result)) => {
            fields.push(("found".to_owned(), Json::Bool(true)));
            fields.push(("key".to_owned(), Json::str(key)));
            fields.push(("result".to_owned(), Json::str(result)));
        }
        None => fields.push(("found".to_owned(), Json::Bool(false))),
    }
    Json::Obj(fields).render_compact()
}

/// Renders a ping response line: liveness plus the two cheap health
/// readings a prober wants (uptime, store entry count).
pub fn render_ping_response(id: Option<i64>, uptime_ms: u64, store_entries: u64) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("pong".to_owned(), Json::Bool(true)));
    fields.push(("uptime_ms".to_owned(), Json::Int(uptime_ms as i64)));
    fields.push(("store_entries".to_owned(), Json::Int(store_entries as i64)));
    Json::Obj(fields).render_compact()
}

/// Renders a status response line around a `counters` object.
pub fn render_status_response(id: Option<i64>, counters: Json) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("counters".to_owned(), counters));
    Json::Obj(fields).render_compact()
}

/// Renders a shutdown acknowledgement line.
pub fn render_shutdown_response(id: Option<i64>) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(true)));
    fields.push(("shutting_down".to_owned(), Json::Bool(true)));
    Json::Obj(fields).render_compact()
}

/// Renders a failure response line.
pub fn render_error_response(id: Option<i64>, error: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), Json::Int(id)));
    }
    fields.push(("ok".to_owned(), Json::Bool(false)));
    fields.push(("error".to_owned(), Json::str(error)));
    Json::Obj(fields).render_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_round_trip_with_defaults() {
        let op = OpRequest::auto_lb("M M M;P O O", "M [P O];O O").unwrap();
        let line = render_job_request(&op, None, Some(7));
        assert!(!line.contains('\n'));
        let req = parse_request(&line).unwrap();
        assert_eq!(req.id, Some(7));
        match req.body {
            RequestBody::Job { op: parsed, class } => {
                assert_eq!(parsed, op);
                assert_eq!(class, Class::Interactive, "autolb defaults to interactive");
            }
            other => panic!("not a job: {other:?}"),
        }
    }

    #[test]
    fn sweep_defaults_to_bulk_and_priority_overrides() {
        let op = OpRequest::sweep(4, 8).unwrap();
        let line = render_job_request(&op, None, None);
        let RequestBody::Job { class, .. } = parse_request(&line).unwrap().body else {
            panic!("not a job")
        };
        assert_eq!(class, Class::Bulk);
        let line = render_job_request(&op, Some(Class::Interactive), None);
        let RequestBody::Job { class, .. } = parse_request(&line).unwrap().body else {
            panic!("not a job")
        };
        assert_eq!(class, Class::Interactive);
    }

    #[test]
    fn admin_requests_parse() {
        assert_eq!(
            parse_request(&render_admin_request("status", None)).unwrap().body,
            RequestBody::Status
        );
        assert_eq!(
            parse_request(&render_admin_request("metrics", None)).unwrap().body,
            RequestBody::Metrics
        );
        assert_eq!(
            parse_request(&render_admin_request("timeline", None)).unwrap().body,
            RequestBody::Timeline
        );
        assert_eq!(
            parse_request(&render_lookup_request("abc123", Some(9))).unwrap(),
            Request { id: Some(9), body: RequestBody::Lookup { digest: "abc123".into() } }
        );
        assert!(
            parse_request(&render_admin_request("lookup", None)).unwrap_err().contains("digest"),
            "lookup without a digest is refused"
        );
        assert_eq!(
            parse_request(&render_admin_request("shutdown", Some(3))).unwrap(),
            Request { id: Some(3), body: RequestBody::Shutdown }
        );
    }

    #[test]
    fn fleet_requests_parse_and_render() {
        assert_eq!(
            parse_request(&render_fetch_request("abc123", Some(2))).unwrap(),
            Request { id: Some(2), body: RequestBody::Fetch { digest: "abc123".into() } }
        );
        assert!(
            parse_request(&render_admin_request("fetch", None)).unwrap_err().contains("digest"),
            "fetch without a digest is refused"
        );
        assert_eq!(
            parse_request(&render_admin_request("ping", Some(8))).unwrap(),
            Request { id: Some(8), body: RequestBody::Ping }
        );
        let hit = render_fetch_response(None, "abc", Some(("the\nkey", "the\nresult")));
        let doc = Json::parse(&hit).unwrap();
        assert_eq!(doc.get("found").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("key").and_then(Json::as_str), Some("the\nkey"));
        let miss = render_fetch_response(Some(1), "abc", None);
        let doc = Json::parse(&miss).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "a miss is not a fault");
        assert_eq!(doc.get("found").and_then(Json::as_bool), Some(false));
        assert!(doc.get("result").is_none());
        let pong = Json::parse(&render_ping_response(None, 1234, 7)).unwrap();
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
        assert_eq!(pong.get("uptime_ms").and_then(Json::as_i64), Some(1234));
        assert_eq!(pong.get("store_entries").and_then(Json::as_i64), Some(7));
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").unwrap_err().contains("op"));
        assert!(parse_request("{\"op\": \"autolb\"}").unwrap_err().contains("node"));
        let err = parse_request(
            "{\"op\": \"zero-round\", \"node\": \"A A\", \"edge\": \"A A\", \
             \"priority\": \"urgent\"}",
        )
        .unwrap_err();
        assert!(err.contains("interactive|bulk"), "{err}");
        // Two requests framed into one line violate the protocol.
        let op = OpRequest::zero_round("A A", "A A").unwrap();
        let doubled = format!("{} {}", render_job_request(&op, None, None), "{\"op\":\"status\"}");
        assert!(parse_request(&doubled).unwrap_err().contains("trailing content"));
    }

    #[test]
    fn responses_render_one_line_and_echo_ids() {
        for line in [
            render_job_response(Some(1), true, "abc", "multi\nline\nresult"),
            render_status_response(None, Json::Obj(vec![("x".into(), Json::Int(1))])),
            render_metrics_response(Some(4), "# TYPE relim_x counter\nrelim_x 1\n"),
            render_timeline_response(None, Json::Obj(vec![]), "timeline: 0 events\n"),
            render_lookup_response(Some(5), "abc", "key\ntext", "result\ntext"),
            render_fetch_response(Some(6), "abc", Some(("key\ntext", "result\ntext"))),
            render_fetch_response(None, "abc", None),
            render_ping_response(Some(7), 99, 3),
            render_shutdown_response(Some(2)),
            render_error_response(None, "boom"),
        ] {
            assert!(!line.contains('\n'), "{line}");
            assert!(Json::parse(&line).is_ok(), "{line}");
        }
        let doc = Json::parse(&render_job_response(Some(1), true, "abc", "r")).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
    }
}
