//! The scheduling policy: batch-level priorities with aging.
//!
//! The daemon runs every job on **one** shared `Engine`, so ordering is
//! the whole scheduling story. Jobs carry a class:
//!
//! * **interactive** — single-problem queries (`autolb`, `autoub`,
//!   `iterate`, `zero-round`): a human (or a latency-sensitive caller)
//!   is waiting;
//! * **bulk** — sweeps: minutes of work whose caller expects to wait.
//!
//! [`JobQueue::pop`] serves interactive jobs first — *except* that every
//! time an interactive job overtakes a waiting bulk job, the bulk class
//! ages; once a bulk job has been bypassed [`JobQueue::aging_limit`]
//! times, the oldest bulk job runs next regardless of the interactive
//! backlog. The policy is therefore **starvation-free by construction**:
//! a bulk job waits for at most `aging_limit` interactive jobs plus the
//! bulk jobs ahead of it, whatever the arrival pattern (pinned by the
//! property test below). Within a class, order is strict FIFO.
//!
//! The queue is a *pure* data structure (no threads, no clocks) so the
//! policy itself is deterministically testable; the server wraps it in a
//! mutex + condvar.

use std::collections::VecDeque;

/// The aging limit the server uses: a waiting bulk job is bypassed by at
/// most this many interactive jobs before it is forced to the front.
pub const DEFAULT_AGING_LIMIT: u32 = 4;

/// The scheduling class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Latency-sensitive single queries — served first.
    Interactive,
    /// Throughput work (sweeps) — aged in, never starved.
    Bulk,
}

impl Class {
    /// The wire spelling (`interactive` / `bulk`).
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Bulk => "bulk",
        }
    }

    /// Parses the wire spelling.
    ///
    /// # Errors
    ///
    /// Describes the accepted spellings.
    pub fn parse(s: &str) -> Result<Class, String> {
        match s {
            "interactive" => Ok(Class::Interactive),
            "bulk" => Ok(Class::Bulk),
            other => Err(format!("priority must be interactive|bulk, got `{other}`")),
        }
    }
}

/// A two-class FIFO queue with aging (see the module docs).
#[derive(Debug)]
pub struct JobQueue<T> {
    interactive: VecDeque<T>,
    bulk: VecDeque<T>,
    aging_limit: u32,
    /// Interactive pops that overtook a waiting bulk job since the last
    /// bulk pop.
    bulk_bypasses: u32,
    promotions: u64,
    max_depth: usize,
}

impl<T> JobQueue<T> {
    /// An empty queue with the given aging limit, clamped to at least 1
    /// (so `1` — and the clamped `0` — means strict alternation while
    /// both classes wait; `0` must not invert the policy into
    /// bulk-first, which `bypasses >= 0` being vacuously true would do).
    pub fn new(aging_limit: u32) -> JobQueue<T> {
        JobQueue {
            interactive: VecDeque::new(),
            bulk: VecDeque::new(),
            aging_limit: aging_limit.max(1),
            bulk_bypasses: 0,
            promotions: 0,
            max_depth: 0,
        }
    }

    /// Enqueues a job under `class`.
    pub fn push(&mut self, class: Class, job: T) {
        match class {
            Class::Interactive => self.interactive.push_back(job),
            Class::Bulk => self.bulk.push_back(job),
        }
        self.max_depth = self.max_depth.max(self.len());
    }

    /// Dequeues the next job under the priority-with-aging policy.
    pub fn pop(&mut self) -> Option<(Class, T)> {
        let bulk_waiting = !self.bulk.is_empty();
        if bulk_waiting && self.bulk_bypasses >= self.aging_limit {
            self.bulk_bypasses = 0;
            self.promotions += 1;
            return self.bulk.pop_front().map(|j| (Class::Bulk, j));
        }
        if let Some(job) = self.interactive.pop_front() {
            if bulk_waiting {
                self.bulk_bypasses += 1;
            }
            return Some((Class::Interactive, job));
        }
        self.bulk_bypasses = 0;
        self.bulk.pop_front().map(|j| (Class::Bulk, j))
    }

    /// Jobs currently queued (both classes).
    pub fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.bulk.is_empty()
    }

    /// The effective aging limit (the constructor clamps 0 to 1).
    pub fn aging_limit(&self) -> u32 {
        self.aging_limit
    }

    /// Bulk jobs that were force-promoted past the interactive backlog.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_before_bulk_fifo_within_class() {
        let mut q = JobQueue::new(DEFAULT_AGING_LIMIT);
        q.push(Class::Bulk, "b1");
        q.push(Class::Interactive, "i1");
        q.push(Class::Interactive, "i2");
        q.push(Class::Bulk, "b2");
        assert_eq!(q.pop(), Some((Class::Interactive, "i1")));
        assert_eq!(q.pop(), Some((Class::Interactive, "i2")));
        assert_eq!(q.pop(), Some((Class::Bulk, "b1")));
        assert_eq!(q.pop(), Some((Class::Bulk, "b2")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 4);
        assert_eq!(q.promotions(), 0, "no aging needed when interactives drain first");
    }

    #[test]
    fn aging_promotes_a_waiting_bulk_job() {
        let mut q = JobQueue::new(2);
        q.push(Class::Bulk, "bulk");
        for i in 0..6 {
            q.push(Class::Interactive, ["i0", "i1", "i2", "i3", "i4", "i5"][i]);
        }
        // Two interactive pops bypass the bulk job; the third pop is the
        // aged-in bulk job, then interactives resume.
        assert_eq!(q.pop().unwrap().1, "i0");
        assert_eq!(q.pop().unwrap().1, "i1");
        assert_eq!(q.pop(), Some((Class::Bulk, "bulk")));
        assert_eq!(q.pop().unwrap().1, "i2");
        assert_eq!(q.promotions(), 1);
    }

    #[test]
    fn bypass_counter_resets_when_no_bulk_waits() {
        let mut q = JobQueue::new(1);
        q.push(Class::Interactive, "i0");
        assert_eq!(q.pop().unwrap().1, "i0"); // no bulk waiting: no bypass
        q.push(Class::Bulk, "b0");
        q.push(Class::Interactive, "i1");
        assert_eq!(q.pop().unwrap().1, "i1"); // first bypass of b0
        q.push(Class::Interactive, "i2");
        assert_eq!(q.pop(), Some((Class::Bulk, "b0")), "aged in after 1 bypass");
        assert_eq!(q.pop().unwrap().1, "i2");
    }

    #[test]
    fn starvation_freedom_under_adversarial_interactive_pressure() {
        // An adversary feeds an interactive job before every pop; the
        // bulk job must still be served within the effective aging
        // limit, and interactive jobs must still go first initially.
        for aging_limit in [0u32, 1, 3, DEFAULT_AGING_LIMIT, 9] {
            let mut q = JobQueue::new(aging_limit);
            q.push(Class::Bulk, usize::MAX);
            let mut served_at = None;
            for round in 0..100 {
                q.push(Class::Interactive, round);
                let (class, _) = q.pop().expect("non-empty");
                if round == 0 {
                    assert_eq!(
                        class,
                        Class::Interactive,
                        "aging_limit {aging_limit}: the first pop must stay interactive-first"
                    );
                }
                if class == Class::Bulk {
                    served_at = Some(round);
                    break;
                }
            }
            let served = served_at.expect("bulk job starved");
            assert!(
                served <= q.aging_limit() as usize,
                "aging_limit {aging_limit}: bulk served only at round {served}"
            );
        }
    }

    #[test]
    fn aging_limit_zero_clamps_to_alternation_not_bulk_first() {
        let mut q = JobQueue::new(0);
        assert_eq!(q.aging_limit(), 1);
        q.push(Class::Bulk, "b0");
        q.push(Class::Bulk, "b1");
        q.push(Class::Interactive, "i0");
        q.push(Class::Interactive, "i1");
        // Interactive still goes first; bulk ages in after one bypass.
        assert_eq!(q.pop(), Some((Class::Interactive, "i0")));
        assert_eq!(q.pop(), Some((Class::Bulk, "b0")));
        assert_eq!(q.pop(), Some((Class::Interactive, "i1")));
        assert_eq!(q.pop(), Some((Class::Bulk, "b1")));
    }
}
