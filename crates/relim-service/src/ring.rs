//! The deterministic consistent-hash ring over digest addresses.
//!
//! A fleet of daemons shares one logical certificate cache by agreeing,
//! without coordination, on which member *owns* each content address:
//! the ring hashes every member onto [`VNODES`] points of a `u64`
//! circle (virtual nodes smooth the load — with one point per member,
//! a single unlucky gap can own half the space), and an address belongs
//! to the first member point at or after its own hash position,
//! wrapping around at the top.
//!
//! Two properties make this usable as a *zero-coordination* routing
//! table:
//!
//! * **Order independence.** Members are sorted and deduplicated at
//!   construction, and every position is a pure function of the member
//!   name — so daemons configured with the same peer set in any order
//!   (each listing the *others* plus itself) build bit-identical rings
//!   and agree on every owner. There is no membership protocol to
//!   converge; the configuration *is* the agreement.
//! * **Stability under growth.** Adding one member moves only the
//!   addresses falling between the new member's points and their
//!   predecessors — about `1/n` of the space — and every moved address
//!   moves *to the new member*. Everything else keeps its owner, so a
//!   rolling fleet expansion invalidates almost none of the cache.
//!   (The ring proptests pin exactly this.)
//!
//! The position hash is [`relim_core::digest::fnv1a64`] — the same
//! dependency-free FNV-1a family as the content digest itself, so every
//! platform and build agrees on every position.

use relim_core::digest::fnv1a64;

/// Virtual nodes per member. 64 keeps the per-member load spread within
/// a few percent for small fleets while the whole ring stays a few
/// hundred entries — binary-searched, never a hot cost.
pub const VNODES: u32 = 64;

/// A deterministic consistent-hash ring over digest addresses (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted, deduplicated member names.
    members: Vec<String>,
    /// `(position, member index)` sorted by position — the circle.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring from member names (typically `host:port`
    /// addresses), in any order and with duplicates tolerated: the
    /// members are sorted and deduplicated first, so every permutation
    /// of the same set builds an identical ring.
    pub fn new<I, S>(members: I) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut members: Vec<String> = members.into_iter().map(Into::into).collect();
        members.sort();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * VNODES as usize);
        for (index, member) in members.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((vnode_position(member, vnode), index));
            }
        }
        // Position ties across members are broken by member index —
        // itself an artifact of the sorted member list, so still
        // order-independent. (Ties require a 64-bit hash collision;
        // the sort just makes even that case deterministic.)
        points.sort_unstable();
        Ring { members, points }
    }

    /// The sorted, deduplicated member names this ring was built from.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The member owning content address `digest` (any byte string —
    /// the store's 32-hex-char digests in practice), or `None` for an
    /// empty ring. A singleton ring owns everything.
    pub fn owner_of(&self, digest: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let position = mix64(fnv1a64(digest.as_bytes()));
        // First point at or after the address, wrapping to the start.
        let at = self.points.partition_point(|&(p, _)| p < position);
        let (_, index) = self.points[if at == self.points.len() { 0 } else { at }];
        Some(&self.members[index])
    }
}

/// The circle position of one virtual node: the member name and the
/// vnode ordinal hashed together, with a `\0` separator no `host:port`
/// address can contain (so `("ab", 1)` and `("a", "b1")`-style
/// concatenation ambiguities cannot alias).
fn vnode_position(member: &str, vnode: u32) -> u64 {
    let mut bytes = Vec::with_capacity(member.len() + 5);
    bytes.extend_from_slice(member.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&vnode.to_le_bytes());
    mix64(fnv1a64(&bytes))
}

/// The splitmix64 avalanche finalizer over the FNV stream. FNV-1a on
/// short, similar inputs (peer addresses differing in one port digit,
/// consecutive vnode ordinals) diffuses the high bits poorly, which
/// skews circle positions and with them the per-member load; one
/// multiply-xor-shift cascade restores the spread. Fixed constants, so
/// every build agrees on every position.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_owns_nothing_and_singleton_owns_everything() {
        let empty = Ring::new(Vec::<String>::new());
        assert_eq!(empty.owner_of("abc"), None);
        let one = Ring::new(["127.0.0.1:7401"]);
        for digest in ["", "a", "ffffffffffffffff", "relim"] {
            assert_eq!(one.owner_of(digest), Some("127.0.0.1:7401"));
        }
    }

    #[test]
    fn member_order_and_duplicates_do_not_matter() {
        let a = Ring::new(["host-a:1", "host-b:2", "host-c:3"]);
        let b = Ring::new(["host-c:3", "host-a:1", "host-b:2", "host-a:1"]);
        assert_eq!(a.members(), b.members());
        for i in 0..200 {
            let digest = format!("digest-{i}");
            assert_eq!(a.owner_of(&digest), b.owner_of(&digest));
        }
    }

    #[test]
    fn every_member_owns_a_reasonable_share() {
        let members = ["n0:1", "n1:1", "n2:1", "n3:1"];
        let ring = Ring::new(members);
        let mut counts = vec![0usize; members.len()];
        let total = 4000;
        for i in 0..total {
            let owner = ring.owner_of(&format!("share-{i}")).unwrap();
            counts[members.iter().position(|m| *m == owner).unwrap()] += 1;
        }
        for (member, count) in members.iter().zip(&counts) {
            // Perfect balance would be 1000 each; 64 vnodes keep every
            // member within a loose 2.5x band of it.
            assert!((400..=2500).contains(count), "{member} owns {count}/{total}");
        }
    }

    #[test]
    fn adding_a_member_only_moves_addresses_to_it() {
        let before = Ring::new(["n0:1", "n1:1", "n2:1"]);
        let after = Ring::new(["n0:1", "n1:1", "n2:1", "n3:1"]);
        let mut moved = 0;
        let total = 4000;
        for i in 0..total {
            let digest = format!("grow-{i}");
            let old = before.owner_of(&digest).unwrap();
            let new = after.owner_of(&digest).unwrap();
            if old != new {
                assert_eq!(new, "n3:1", "{digest} moved between existing members");
                moved += 1;
            }
        }
        // Expected share is 1/4 of the space; allow a wide band.
        assert!(moved > 0, "the new member must own something");
        assert!(moved < total / 2, "adding one member moved {moved}/{total}");
    }
}
