//! Ruling sets (paper §1, "Bounded (Out-)Degree Dominating Sets" intro and
//! §5 open problems).
//!
//! A `(α, β)`-ruling set has members pairwise at distance ≥ α with every
//! node within distance β of a member. MIS is the `(2, 1)` case; the other
//! classical relaxation of MIS (the one the paper contrasts its
//! k-outdegree dominating sets with) relaxes the domination radius.
//!
//! Construction: an MIS of the power graph `G^β` is a `(β+1, β)`-ruling set
//! of `G`. One round on `G^β` costs β rounds on `G`, so running Luby on the
//! power graph gives `O(β log n)` simulated `G`-rounds; the round report
//! accounts for the factor.

use crate::luby;
use local_sim::error::Result;
use local_sim::{checkers, Graph};

/// The outcome of [`ruling_set_power_mis`].
#[derive(Debug, Clone)]
pub struct RulingSetReport {
    /// Membership flags.
    pub in_set: Vec<bool>,
    /// Rounds on the power graph (Luby phases × 2).
    pub power_graph_rounds: usize,
    /// Equivalent rounds on the base graph (`power_graph_rounds × β`).
    pub simulated_rounds: usize,
}

/// Computes a `(β+1, β)`-ruling set of `graph` by running Luby's MIS on
/// `G^β`.
///
/// # Errors
///
/// Requires `β ≥ 1`; propagates simulation errors.
pub fn ruling_set_power_mis(graph: &Graph, beta: usize, seed: u64) -> Result<RulingSetReport> {
    if beta == 0 {
        return Err(local_sim::SimError::InvalidParameter {
            message: "ruling set radius beta must be >= 1".into(),
        });
    }
    let power = graph.power(beta);
    let rep = luby::luby_mis(&power, seed)?;
    debug_assert!(checkers::check_mis(&power, &rep.in_set).is_ok());
    Ok(RulingSetReport {
        in_set: rep.in_set,
        power_graph_rounds: rep.rounds,
        simulated_rounds: rep.rounds * beta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::trees;

    #[test]
    fn ruling_sets_on_regular_trees() {
        for beta in 1..=3 {
            let g = trees::complete_regular_tree(3, 4).unwrap();
            let rep = ruling_set_power_mis(&g, beta, 7).unwrap();
            checkers::check_ruling_set(&g, &rep.in_set, beta + 1, beta).unwrap();
        }
    }

    #[test]
    fn beta_one_is_mis() {
        let g = trees::random_tree(60, 4, 3).unwrap();
        let rep = ruling_set_power_mis(&g, 1, 3).unwrap();
        checkers::check_mis(&g, &rep.in_set).unwrap();
        checkers::check_ruling_set(&g, &rep.in_set, 2, 1).unwrap();
    }

    #[test]
    fn larger_beta_gives_sparser_sets() {
        let g = trees::path(200).unwrap();
        let s1 = ruling_set_power_mis(&g, 1, 5).unwrap();
        let s3 = ruling_set_power_mis(&g, 3, 5).unwrap();
        let count = |v: &[bool]| v.iter().filter(|&&b| b).count();
        assert!(count(&s3.in_set) < count(&s1.in_set));
        checkers::check_ruling_set(&g, &s3.in_set, 4, 3).unwrap();
    }

    #[test]
    fn rejects_beta_zero() {
        let g = trees::path(4).unwrap();
        assert!(ruling_set_power_mis(&g, 0, 0).is_err());
    }
}
