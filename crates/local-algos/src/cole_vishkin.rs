//! Cole–Vishkin color reduction on oriented paths and cycles.
//!
//! The classic `O(log* n)` symmetry-breaking algorithm \[Cole–Vishkin '86;
//! see also Linial '92\]: starting from unique identifiers, each node
//! repeatedly replaces its color by `2i + b`, where `i` is the lowest bit
//! position at which its color differs from its *predecessor's* color and
//! `b` is its own bit there. One iteration shrinks `B`-bit colors to
//! `O(log B)`-bit colors, so colors drop to the 6-color fixed point in
//! `O(log* n)` iterations; three final "shift-down" rounds remove colors
//! 5, 4 and 3.
//!
//! This is the `Ω(log* n)` side of the paper's history (§1.3: Linial's
//! lower bound was the first round-elimination argument) made executable:
//! together with the class sweep ([`crate::sweep`]) it yields the textbook
//! `O(log* n)`-round MIS on cycles, the baseline against which the paper's
//! `Ω(log Δ)`-type bounds for trees are contrasted.

use crate::sweep;
use local_sim::error::{Result, SimError};
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::Graph;
use rand::rngs::StdRng;

/// Per-node orientation input.
///
/// `forward` is the port toward the node's successor (`None` for the last
/// node of a path); the node's predecessor, if any, is behind any other
/// port (paths and cycles have degree ≤ 2, so the complement is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvInput {
    /// Port toward the successor, if the node has one.
    pub forward: Option<usize>,
}

/// One Cole–Vishkin step: the new color derived from `mine` and the
/// predecessor's color.
///
/// # Panics
///
/// Panics if `mine == pred` — the invariant "adjacent colors differ" is
/// maintained by the algorithm and violating it indicates corrupt input.
fn cv_step(mine: u64, pred: u64) -> u64 {
    assert_ne!(mine, pred, "Cole-Vishkin requires distinct adjacent colors");
    let i = (mine ^ pred).trailing_zeros() as u64;
    2 * i + ((mine >> i) & 1)
}

/// Number of iterations needed to bring `2^64`-bounded colors to at most 6
/// distinct values (the fixed point of `B ↦ 2·(bit positions of B) + 1`).
fn iterations_to_six_colors() -> usize {
    let mut max_value = u64::MAX;
    let mut iters = 0;
    while max_value > 5 {
        let bits = 64 - max_value.leading_zeros() as u64;
        max_value = 2 * (bits - 1) + 1;
        iters += 1;
    }
    iters
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CvPhase {
    /// Iterated bit tricks until ≤ 6 colors.
    Reduce { left: usize },
    /// Shift-down of color `c` into `{0, 1, 2}`.
    ShiftDown { c: u64 },
}

/// The Cole–Vishkin 3-coloring algorithm (LOCAL model — requires ids).
#[derive(Debug)]
pub struct ColeVishkin {
    color: u64,
    forward: Option<usize>,
    backward: Option<usize>,
    phase: CvPhase,
}

impl SyncAlgorithm for ColeVishkin {
    type Input = CvInput;
    type Message = u64;
    type Output = usize;

    fn init(info: &NodeInfo, input: &CvInput, _rng: &mut StdRng) -> Self {
        let id = info.id.expect("Cole-Vishkin runs in the LOCAL model");
        let backward = (0..info.degree).find(|&p| Some(p) != input.forward);
        ColeVishkin {
            color: id,
            forward: input.forward,
            backward,
            phase: CvPhase::Reduce { left: iterations_to_six_colors() },
        }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<u64> {
        // Colors go out on every port; receivers pick the side they need.
        vec![self.color; info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<u64>>,
        _rng: &mut StdRng,
    ) -> Status<usize> {
        let at = |p: Option<usize>| p.and_then(|p| incoming[p]);
        match self.phase {
            CvPhase::Reduce { left } => {
                self.color = match at(self.backward) {
                    Some(pred) => cv_step(self.color, pred),
                    // A path start has no predecessor: keep bit 0 (i = 0).
                    None => self.color & 1,
                };
                if left > 1 {
                    self.phase = CvPhase::Reduce { left: left - 1 };
                } else {
                    self.phase = CvPhase::ShiftDown { c: 5 };
                }
                Status::Continue
            }
            CvPhase::ShiftDown { c } => {
                if self.color == c {
                    let pred = at(self.backward);
                    let succ = at(self.forward);
                    self.color = (0u64..3)
                        .find(|&x| Some(x) != pred && Some(x) != succ)
                        .expect("degree <= 2 leaves a free color among {0,1,2}");
                }
                if c > 3 {
                    self.phase = CvPhase::ShiftDown { c: c - 1 };
                    Status::Continue
                } else {
                    Status::Done(self.color as usize)
                }
            }
        }
    }
}

/// The orientation of a path or cycle: per-node forward ports.
///
/// Orients each edge `v → (v+1) mod n` of the standard constructions
/// [`Graph::cycle`] and [`local_sim::trees::path`]; works for any graph of
/// maximum degree 2 whose node ids increase along each path/cycle segment
/// (ties broken by the wrap-around edge).
///
/// # Errors
///
/// Rejects graphs with a node of degree ≥ 3.
pub fn orient_by_index(graph: &Graph) -> Result<Vec<CvInput>> {
    if graph.max_degree() > 2 {
        return Err(SimError::InvalidParameter {
            message: format!("orient_by_index needs max degree 2, got {}", graph.max_degree()),
        });
    }
    let n = graph.n();
    Ok((0..n)
        .map(|v| {
            let forward = (0..graph.degree(v)).find(|&p| {
                let u = graph.neighbor(v, p);
                // Forward = next index, or the wrap-around edge of a cycle
                // (node n−1 has degree 2 exactly when the wrap edge exists).
                u == v + 1 || (v == n - 1 && u == 0 && graph.degree(v) == 2)
            });
            CvInput { forward }
        })
        .collect())
}

/// The result of a Cole–Vishkin run.
#[derive(Debug, Clone)]
pub struct CvReport {
    /// A proper 3-coloring (values in `{0, 1, 2}`).
    pub colors: Vec<usize>,
    /// Rounds used: `O(log* n)` reduction plus 3 shift-down rounds.
    pub rounds: usize,
}

/// Runs Cole–Vishkin 3-coloring on an oriented path or cycle.
///
/// # Errors
///
/// Propagates simulation errors; `orientation` must give a forward port
/// consistent with the graph (see [`orient_by_index`]).
pub fn cv_three_coloring(graph: &Graph, orientation: &[CvInput], seed: u64) -> Result<CvReport> {
    let config = RunConfig::local(graph, seed, 64);
    let report = run::<ColeVishkin>(graph, orientation, &config)?;
    Ok(CvReport { colors: report.outputs, rounds: report.rounds })
}

/// The textbook `O(log* n)` MIS on paths and cycles: Cole–Vishkin
/// 3-coloring followed by the greedy class sweep.
///
/// Returns the MIS membership and the `(coloring, sweep)` round counts.
///
/// # Errors
///
/// Propagates simulation errors from either phase.
pub fn cv_mis(graph: &Graph, seed: u64) -> Result<(Vec<bool>, (usize, usize))> {
    let orientation = orient_by_index(graph)?;
    let coloring = cv_three_coloring(graph, &orientation, seed)?;
    let (in_set, sweep_rounds) = sweep::class_sweep(graph, &coloring.colors, 3, seed)?;
    Ok((in_set, (coloring.rounds, sweep_rounds)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers;
    use local_sim::trees;

    #[test]
    fn cv_step_produces_distinct_adjacent_colors() {
        // Whenever u != v, cv_step(v, u) != cv_step(w, v) for the chain
        // u -> v -> w: exhaustive check over small values.
        for u in 0..32u64 {
            for v in 0..32 {
                for w in 0..32 {
                    if u == v || v == w {
                        continue;
                    }
                    assert_ne!(cv_step(v, u), cv_step(w, v), "chain {u} -> {v} -> {w}");
                }
            }
        }
    }

    #[test]
    fn iteration_schedule_is_log_star() {
        // u64 ids: 2^64 -> 127 -> 13 -> 7 -> 5; four iterations.
        assert_eq!(iterations_to_six_colors(), 4);
    }

    #[test]
    fn three_coloring_on_cycles() {
        for n in [3usize, 4, 5, 6, 17, 100, 101] {
            let g = Graph::cycle(n).unwrap();
            let orientation = orient_by_index(&g).unwrap();
            let rep = cv_three_coloring(&g, &orientation, 7).unwrap();
            assert!(rep.colors.iter().all(|&c| c < 3), "n = {n}");
            checkers::check_proper_coloring(&g, &rep.colors).unwrap();
            // 4 reduce + 3 shift-down rounds.
            assert_eq!(rep.rounds, 7, "n = {n}");
        }
    }

    #[test]
    fn three_coloring_on_paths() {
        for n in [2usize, 3, 10, 64] {
            let g = trees::path(n).unwrap();
            let orientation = orient_by_index(&g).unwrap();
            let rep = cv_three_coloring(&g, &orientation, 3).unwrap();
            checkers::check_proper_coloring(&g, &rep.colors).unwrap();
        }
    }

    #[test]
    fn orientation_matches_indices() {
        let g = Graph::cycle(5).unwrap();
        let orientation = orient_by_index(&g).unwrap();
        for (v, o) in orientation.iter().enumerate() {
            let f = o.forward.expect("cycles have successors everywhere");
            assert_eq!(g.neighbor(v, f), (v + 1) % 5);
        }
        // Path: the last node has no forward port.
        let p = trees::path(4).unwrap();
        let orientation = orient_by_index(&p).unwrap();
        assert!(orientation[3].forward.is_none());
        assert!(orientation[..3].iter().all(|o| o.forward.is_some()));
    }

    #[test]
    fn mis_on_cycles_and_paths() {
        for n in [3usize, 4, 9, 50] {
            let g = Graph::cycle(n).unwrap();
            let (in_set, (color_rounds, sweep_rounds)) = cv_mis(&g, 11).unwrap();
            checkers::check_mis(&g, &in_set).unwrap();
            assert_eq!(color_rounds, 7);
            assert!(sweep_rounds <= 5);
        }
        let p = trees::path(33).unwrap();
        let (in_set, _) = cv_mis(&p, 5).unwrap();
        checkers::check_mis(&p, &in_set).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Graph::cycle(40).unwrap();
        let a = cv_mis(&g, 9).unwrap();
        let b = cv_mis(&g, 9).unwrap();
        assert_eq!(a.0, b.0);
        let c = cv_mis(&g, 10).unwrap();
        // Different ids may change the set; validity is what matters.
        checkers::check_mis(&g, &c.0).unwrap();
    }

    #[test]
    fn rejects_high_degree_graphs() {
        let star = trees::star(3).unwrap();
        assert!(orient_by_index(&star).is_err());
    }
}
