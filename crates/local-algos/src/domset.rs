//! End-to-end pipelines: MIS, k-outdegree and k-degree dominating sets.
//!
//! These compose the phases of §1.1 of the paper with exact per-phase round
//! accounting, so the benches can reproduce the `O(Δ/k + log* n)` /
//! `O(min{Δ, (Δ/k)²} + log* n)` shapes:
//!
//! 1. **coloring** — Linial reduction to `poly(Δ)` colors in `O(log* n)`;
//! 2. **bucketing** — arbdefective (for k-ODS) or one-shot defective (for
//!    k-degree DS) coloring;
//! 3. **sweep** — greedy class sweep over the buckets.

use crate::arbdefective::arbdefective_coloring;
use crate::defective::defective_coloring;
use crate::linial::linial_coloring;
use crate::sweep::class_sweep;
use local_sim::error::Result;
use local_sim::{Graph, Orientation};

/// Exact round counts of a pipeline's phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRounds {
    /// Rounds of the Linial coloring phase (`O(log* n)`).
    pub coloring: usize,
    /// Rounds of the defective/arbdefective bucketing phase.
    pub bucketing: usize,
    /// Rounds of the greedy class sweep.
    pub sweep: usize,
}

impl PhaseRounds {
    /// Total rounds across phases.
    pub fn total(&self) -> usize {
        self.coloring + self.bucketing + self.sweep
    }
}

/// Result of the k-outdegree dominating set pipeline.
#[derive(Debug, Clone)]
pub struct KodsReport {
    /// Set membership.
    pub in_set: Vec<bool>,
    /// Orientation witnessing outdegree ≤ k inside the set.
    pub orientation: Orientation,
    /// Number of buckets used (`⌊Δ/(k+1)⌋ + 1` — the paper's `O(Δ/k)`).
    pub buckets: usize,
    /// Per-phase rounds.
    pub rounds: PhaseRounds,
}

/// Computes a k-outdegree dominating set in
/// `O(log* n) + O(Δ²) + (⌊Δ/(k+1)⌋ + O(1))` rounds: Linial coloring,
/// arbdefective bucketing (the `O(Δ²)` sequential class processing), then
/// the `O(Δ/k)`-round sweep whose length the paper's lower bound addresses.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn k_outdegree_domset(graph: &Graph, k: usize, seed: u64) -> Result<KodsReport> {
    let delta = graph.max_degree().max(1);
    let buckets = delta / (k + 1) + 1;
    let col = linial_coloring(graph, seed)?;
    let arb = arbdefective_coloring(graph, &col.colors, col.num_colors, buckets, seed)?;
    let (in_set, sweep_rounds) = class_sweep(graph, &arb.buckets, buckets, seed)?;
    Ok(KodsReport {
        in_set,
        orientation: arb.orientation,
        buckets,
        rounds: PhaseRounds { coloring: col.rounds, bucketing: arb.rounds, sweep: sweep_rounds },
    })
}

/// Result of the k-degree dominating set pipeline.
#[derive(Debug, Clone)]
pub struct KdegReport {
    /// Set membership.
    pub in_set: Vec<bool>,
    /// Number of defective colors used (`O((Δ/k)² polylog)`).
    pub defective_colors: usize,
    /// Per-phase rounds.
    pub rounds: PhaseRounds,
}

/// Computes a k-degree dominating set in
/// `O(log* n) + 1 + O((Δ/k)²)` rounds: Linial coloring, one-shot defective
/// coloring, then the sweep over the `O((Δ/k)²)` defective classes.
///
/// # Errors
///
/// Requires `k ≥ 1` (use [`mis_deterministic`] for `k = 0`).
pub fn k_degree_domset(graph: &Graph, k: usize, seed: u64) -> Result<KdegReport> {
    let col = linial_coloring(graph, seed)?;
    let def = defective_coloring(graph, &col.colors, col.num_colors, k, seed)?;
    let (in_set, sweep_rounds) = class_sweep(graph, &def.colors, def.num_colors, seed)?;
    Ok(KdegReport {
        in_set,
        defective_colors: def.num_colors,
        rounds: PhaseRounds { coloring: col.rounds, bucketing: def.rounds, sweep: sweep_rounds },
    })
}

/// Result of the deterministic MIS pipeline.
#[derive(Debug, Clone)]
pub struct MisReport {
    /// MIS membership.
    pub in_set: Vec<bool>,
    /// Number of proper colors swept.
    pub num_colors: usize,
    /// Per-phase rounds (bucketing = 0: the sweep runs directly on the
    /// Linial colors).
    pub rounds: PhaseRounds,
}

/// Deterministic MIS: Linial coloring followed by a sweep over its
/// `poly(Δ)` colors — `O(Δ² polylogΔ + log* n)` rounds (the simpler variant
/// of the paper's `O(Δ + log* n)` citation; see `DESIGN.md`).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn mis_deterministic(graph: &Graph, seed: u64) -> Result<MisReport> {
    let col = linial_coloring(graph, seed)?;
    let (in_set, sweep_rounds) = class_sweep(graph, &col.colors, col.num_colors, seed)?;
    Ok(MisReport {
        in_set,
        num_colors: col.num_colors,
        rounds: PhaseRounds { coloring: col.rounds, bucketing: 0, sweep: sweep_rounds },
    })
}

/// Deterministic MIS via Δ+1 colors: Linial, reduce to Δ+1, sweep. Slower
/// in total rounds (the reduction costs `O(Δ²)` classes) but the sweep
/// phase is exactly `Δ + O(1)` — the `O(Δ)`-shaped sweep the paper's MIS
/// bound concerns.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn mis_via_delta_plus_one(graph: &Graph, seed: u64) -> Result<MisReport> {
    let col = linial_coloring(graph, seed)?;
    let t = graph.max_degree() + 1;
    let (colors, reduce_rounds) =
        crate::color_reduce::reduce_colors(graph, &col.colors, col.num_colors, t, seed)?;
    let (in_set, sweep_rounds) = class_sweep(graph, &colors, t, seed)?;
    Ok(MisReport {
        in_set,
        num_colors: t,
        rounds: PhaseRounds { coloring: col.rounds, bucketing: reduce_rounds, sweep: sweep_rounds },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers;
    use local_sim::trees;

    #[test]
    fn kods_valid_and_bounded() {
        for (delta, k) in [(4usize, 1usize), (4, 2), (5, 1), (5, 4), (3, 0)] {
            let g = trees::complete_regular_tree(delta, 3).unwrap();
            let rep = k_outdegree_domset(&g, k, 11).unwrap();
            checkers::check_k_outdegree_domset(&g, &rep.in_set, &rep.orientation, k)
                .unwrap_or_else(|v| panic!("delta={delta}, k={k}: {v}"));
            assert_eq!(rep.buckets, delta / (k + 1) + 1);
        }
    }

    #[test]
    fn kods_sweep_rounds_track_delta_over_k() {
        // The sweep phase should take about buckets + 2 rounds.
        let g = trees::complete_regular_tree(6, 3).unwrap();
        let rep1 = k_outdegree_domset(&g, 1, 3).unwrap();
        let rep5 = k_outdegree_domset(&g, 5, 3).unwrap();
        assert!(rep1.rounds.sweep <= rep1.buckets + 2);
        assert!(rep5.rounds.sweep <= rep5.buckets + 2);
        assert!(rep5.buckets < rep1.buckets);
    }

    #[test]
    fn kdeg_valid() {
        for (delta, k) in [(4usize, 1usize), (5, 2), (6, 3)] {
            let g = trees::complete_regular_tree(delta, 3).unwrap();
            let rep = k_degree_domset(&g, k, 7).unwrap();
            checkers::check_k_degree_domset(&g, &rep.in_set, k)
                .unwrap_or_else(|v| panic!("delta={delta}, k={k}: {v}"));
        }
    }

    #[test]
    fn mis_pipelines_valid() {
        let g = trees::complete_regular_tree(4, 3).unwrap();
        let a = mis_deterministic(&g, 1).unwrap();
        checkers::check_mis(&g, &a.in_set).unwrap();
        let b = mis_via_delta_plus_one(&g, 1).unwrap();
        checkers::check_mis(&g, &b.in_set).unwrap();
        // The Δ+1 variant's sweep is short.
        assert!(b.rounds.sweep <= g.max_degree() + 3);
    }

    #[test]
    fn mis_on_random_trees() {
        for seed in 0..3 {
            let g = trees::random_tree(70, 5, seed).unwrap();
            let rep = mis_deterministic(&g, seed).unwrap();
            checkers::check_mis(&g, &rep.in_set).unwrap();
        }
    }

    #[test]
    fn kods_on_random_trees() {
        for seed in 0..3 {
            let g = trees::random_tree(70, 5, seed).unwrap();
            let rep = k_outdegree_domset(&g, 2, seed).unwrap();
            checkers::check_k_outdegree_domset(&g, &rep.in_set, &rep.orientation, 2).unwrap();
        }
    }
}
