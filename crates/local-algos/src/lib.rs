//! # local-algos — distributed algorithms in the LOCAL model
//!
//! The *upper bounds* discussed in §1.1 of Balliu–Brandt–Kuhn–Olivetti
//! (PODC 2021), implemented against the [`local_sim`] runner so that round
//! counts are **measured**, not asserted:
//!
//! * [`linial`] — Linial's color reduction: from identifiers to
//!   `O(Δ² log²Δ)`-ish colors in `O(log* n)` rounds (polynomial
//!   construction over `F_q`).
//! * [`color_reduce`] — standard one-class-per-round reduction to any
//!   target ≥ Δ+1 colors.
//! * [`sweep`] — the greedy color-class sweep: on a proper coloring it
//!   yields an MIS; on a k-defective / k-arbdefective coloring it yields a
//!   k-degree / k-outdegree dominating set (the paper's §1.1 reduction).
//! * [`luby`] — Luby's randomized MIS in `O(log n)` rounds w.h.p.
//! * [`defective`] — Kuhn-style one-shot k-defective `O((Δ/k)² polylog)`
//!   coloring.
//! * [`arbdefective`] — sequential-by-class k-arbdefective `⌈Δ/(k+1)⌉+1`
//!   coloring (Barenboim–Elkin–Goldenberg-flavored).
//! * [`domset`] — the end-to-end pipelines for MIS, k-outdegree and
//!   k-degree dominating sets, with per-phase round accounting.
//! * [`matching`] — maximal matching by edge-color sweep.
//! * [`cole_vishkin`] — the classic `O(log* n)` 3-coloring and MIS on
//!   oriented paths and cycles.
//! * [`tree_mis`] — Δ-independent MIS on trees via H-partitions
//!   (Barenboim–Elkin style), the §1.3 counterpoint to the Δ-dependent
//!   pipelines.
//! * [`sequential`] — centralized baselines for differential testing.
//!
//! ## Complexity yardsticks (paper §1.1)
//!
//! | problem | paper upper bound | this crate |
//! |---------|-------------------|------------|
//! | MIS | `O(Δ + log* n)` \[BEK14\] | sweep over Linial colors: `O(Δ² polylog Δ + log* n)` rounds (simpler color reduction; sweep phase is `O(#colors)`) |
//! | k-outdegree dominating set | `O(Δ/k + log* n)` | arbdefective + sweep: sweep phase exactly `⌈Δ/(k+1)⌉+1` rounds |
//! | k-degree dominating set | `O(min{Δ, (Δ/k)²} + log* n)` | defective + sweep: sweep phase `O((Δ/k)² polylog)` rounds |
//!
//! The *sweep phases* match the paper's `Δ/k`-type shape exactly; the
//! coloring substrate is the simpler `O(Δ² + log* n)` construction (see
//! `DESIGN.md` for the documented deviation).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbdefective;
pub mod b_matching;
pub mod cole_vishkin;
pub mod color_reduce;
pub mod defective;
pub mod domset;
pub mod linial;
pub mod luby;
pub mod matching;
pub mod ruling_set;
pub mod sequential;
pub mod sweep;
pub mod tree_mis;

pub use domset::{k_degree_domset, k_outdegree_domset, mis_deterministic, PhaseRounds};
