//! Linial's color reduction: `O(log* n)` rounds to `poly(Δ)` colors.
//!
//! One reduction step (Linial \[SIAM J. Comput. '92\]): with a proper
//! `m`-coloring in hand, interpret each color as the coefficient vector of a
//! polynomial of degree `< d` over `F_q` (where `d = ⌈log_q m⌉`). After
//! exchanging colors, node `v` picks an evaluation point `e ∈ F_q` such that
//! `f_v(e) ≠ f_u(e)` for every neighbor `u` — possible whenever
//! `q > (d−1)·Δ`, since two distinct polynomials of degree `< d` agree on at
//! most `d−1` points. The pair `(e, f_v(e))` is a proper `q²`-coloring.
//! Iterating shrinks `n³`-sized id spaces to `O(Δ² log² Δ)` colors in
//! `O(log* n)` rounds.

use local_sim::error::{Result, SimError};
use local_sim::runner::{run, NodeInfo, RunConfig, RunReport, Status, SyncAlgorithm};
use local_sim::Graph;
use rand::rngs::StdRng;

/// Smallest prime `≥ x` (trial division; inputs are small).
pub fn next_prime(x: u64) -> u64 {
    let mut candidate = x.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

/// Primality by trial division.
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Number of base-`q` digits needed for values in `[0, m)`.
fn digits(m: u64, q: u64) -> u32 {
    let mut d = 1u32;
    let mut cap = q;
    while cap < m {
        cap = cap.saturating_mul(q);
        d += 1;
    }
    d
}

/// The prime used for one Linial step from palette size `m` at degree Δ:
/// the smallest prime `q` with `q > (d−1)·Δ` for `d = digits(m, q)`.
pub fn linial_prime(m: u64, delta: u64) -> u64 {
    let mut q = 2u64;
    loop {
        q = next_prime(q);
        let d = digits(m, q) as u64;
        if q > (d - 1) * delta {
            return q;
        }
        q += 1;
    }
}

/// The full palette schedule `m₀ → m₁ → …` of iterated Linial steps,
/// stopping when a step no longer shrinks the palette. All nodes compute
/// this schedule locally from `(n, Δ)`, so they halt in the same round.
pub fn palette_schedule(m0: u64, delta: u64) -> Vec<u64> {
    let mut schedule = vec![m0];
    let mut m = m0;
    loop {
        let q = linial_prime(m, delta.max(1));
        let next = q * q;
        if next >= m {
            break;
        }
        schedule.push(next);
        m = next;
    }
    schedule
}

/// Evaluates the polynomial whose base-`q` digits are those of `color`
/// at point `e`, over `F_q` (public: reused by the H-partition tree MIS
/// for its within-layer degree-2 color reduction).
pub fn poly_eval(color: u64, q: u64, e: u64) -> u64 {
    let mut c = color;
    let mut acc = 0u64;
    let mut power = 1u64;
    loop {
        acc = (acc + (c % q) * power) % q;
        c /= q;
        if c == 0 {
            return acc;
        }
        power = (power * e) % q;
    }
}

/// The outcome of running [`linial_coloring`].
#[derive(Debug, Clone)]
pub struct ColoringReport {
    /// A proper coloring, one color per node.
    pub colors: Vec<usize>,
    /// Size of the final palette (colors are `< num_colors`).
    pub num_colors: usize,
    /// Rounds consumed.
    pub rounds: usize,
}

/// Per-node state of the iterated Linial algorithm.
#[derive(Debug)]
pub struct Linial {
    color: u64,
    schedule: Vec<u64>,
    step: usize,
}

impl SyncAlgorithm for Linial {
    type Input = ();
    type Message = u64;
    type Output = u64;

    fn init(info: &NodeInfo, _input: &(), _rng: &mut StdRng) -> Self {
        let n = info.n as u64;
        let m0 = n.pow(3) + 1; // identifier space 1..=n³
        let schedule = palette_schedule(m0, info.max_degree as u64);
        Linial { color: info.id.expect("Linial requires the LOCAL model (ids)"), schedule, step: 0 }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<u64> {
        vec![self.color; info.degree]
    }

    fn receive(
        &mut self,
        info: &NodeInfo,
        incoming: Vec<Option<u64>>,
        _rng: &mut StdRng,
    ) -> Status<u64> {
        if self.step + 1 >= self.schedule.len() {
            // Schedule exhausted (can happen for tiny graphs at step 0).
            return Status::Done(self.color);
        }
        let m = self.schedule[self.step];
        let q = linial_prime(m, info.max_degree.max(1) as u64);
        let neighbor_colors: Vec<u64> = incoming.into_iter().flatten().collect();
        // Pick the smallest evaluation point clashing with no neighbor.
        let e = (0..q)
            .find(|&e| {
                let mine = poly_eval(self.color, q, e);
                neighbor_colors.iter().all(|&c| poly_eval(c, q, e) != mine)
            })
            .expect("q > (d-1)Δ guarantees a good evaluation point");
        self.color = e * q + poly_eval(self.color, q, e);
        self.step += 1;
        if self.step + 1 >= self.schedule.len() {
            Status::Done(self.color)
        } else {
            Status::Continue
        }
    }
}

/// Runs iterated Linial color reduction in the LOCAL model.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn linial_coloring(graph: &Graph, seed: u64) -> Result<ColoringReport> {
    let config = RunConfig::local(graph, seed, graph.n() + 64);
    let inputs = vec![(); graph.n()];
    let report: RunReport<u64> = run::<Linial>(graph, &inputs, &config)?;
    let n = graph.n() as u64;
    let schedule = palette_schedule(n.pow(3) + 1, graph.max_degree() as u64);
    let num_colors = *schedule.last().expect("non-empty schedule");
    let colors: Vec<usize> = report.outputs.iter().map(|&c| c as usize).collect();
    if colors.iter().any(|&c| c as u64 >= num_colors) {
        return Err(SimError::InvalidParameter {
            message: "Linial produced a color outside the final palette".into(),
        });
    }
    Ok(ColoringReport { colors, num_colors: num_colors as usize, rounds: report.rounds })
}

/// `log*` with base-2 iterated logarithm (for reporting expectations).
pub fn log_star(mut x: f64) -> u32 {
    let mut it = 0;
    while x > 1.0 {
        x = x.log2();
        it += 1;
    }
    it
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers::check_proper_coloring;
    use local_sim::trees;

    #[test]
    fn primes() {
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(14), 17);
        assert!(is_prime(97));
        assert!(!is_prime(1));
        assert!(!is_prime(91)); // 7 * 13
    }

    #[test]
    fn digits_and_poly() {
        assert_eq!(digits(100, 10), 2);
        assert_eq!(digits(101, 10), 3);
        assert_eq!(digits(5, 7), 1);
        // color 23 base 5 = (3, 4): f(e) = 3 + 4e mod 5.
        assert_eq!(poly_eval(23, 5, 0), 3);
        assert_eq!(poly_eval(23, 5, 1), 2);
    }

    #[test]
    fn schedule_shrinks_fast() {
        let schedule = palette_schedule(1_000_000_000, 4);
        assert!(schedule.len() >= 2);
        assert!(schedule.windows(2).all(|w| w[1] < w[0]));
        // Final palette is poly(Δ): comfortably under 10_000 for Δ=4.
        assert!(*schedule.last().unwrap() < 10_000);
        // log* style growth: schedule length stays tiny even for huge m0.
        assert!(schedule.len() <= 8, "{schedule:?}");
    }

    #[test]
    fn coloring_proper_on_trees() {
        for (delta, depth) in [(3usize, 4usize), (4, 3), (5, 2)] {
            let g = trees::complete_regular_tree(delta, depth).unwrap();
            let rep = linial_coloring(&g, 42).unwrap();
            check_proper_coloring(&g, &rep.colors).unwrap();
            assert!(rep.num_colors < g.n().pow(3));
            assert!(rep.colors.iter().all(|&c| c < rep.num_colors), "colors within palette");
        }
    }

    #[test]
    fn rounds_grow_like_log_star() {
        // Rounds = schedule length - 1, independent of graph size beyond
        // the id-space; log*-ish small.
        let g = trees::random_tree(200, 5, 1).unwrap();
        let rep = linial_coloring(&g, 1).unwrap();
        assert!(rep.rounds <= 8, "rounds = {}", rep.rounds);
        check_proper_coloring(&g, &rep.colors).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let g = trees::random_tree(60, 4, 9).unwrap();
        let a = linial_coloring(&g, 5).unwrap();
        let b = linial_coloring(&g, 5).unwrap();
        assert_eq!(a.colors, b.colors);
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
    }
}
