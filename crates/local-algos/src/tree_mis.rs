//! Deterministic MIS on trees via H-partitions (Barenboim–Elkin style).
//!
//! Barenboim and Elkin \[Distributed Computing '10\] showed that graphs of
//! bounded arboricity — in particular trees — admit deterministic MIS
//! algorithms whose round complexity does not depend on Δ. The engine is
//! the *H-partition*: repeatedly peel all nodes of (remaining) degree ≤ 2;
//! on a forest at least a third of the nodes peel per iteration, so
//! `O(log n)` layers suffice, and by construction every node has at most 2
//! neighbors in its own or higher layers.
//!
//! This module implements the simple variant:
//!
//! 1. [`h_partition`] — distributed peeling, one round per layer;
//! 2. [`layered_mis`] — process layers from highest to lowest; within a
//!    layer the undecided nodes induce a subgraph of maximum degree ≤ 2,
//!    which is 3-colored by iterated Linial reduction at degree 2
//!    (`O(log* n)` rounds plus a constant-length shift-down) and swept
//!    greedily.
//!
//! Total: `O(log n · (log* n + K))` rounds for a constant `K` — slower
//! than Barenboim–Elkin's optimized `O(log n / log log n)` but with the
//! same headline property: **no Δ dependence**, making it the §1.1
//! counterpoint to the `O(Δ + log* n)`-type algorithms on high-degree
//! trees (paper §1.3 discusses exactly this trade-off).

use crate::linial::{linial_prime, palette_schedule, poly_eval};
use local_sim::error::{Result, SimError};
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::Graph;
use rand::rngs::StdRng;

/// The outcome of [`h_partition`].
#[derive(Debug, Clone)]
pub struct HPartition {
    /// `layers[v]` is the peeling iteration at which `v` left the graph.
    pub layers: Vec<usize>,
    /// `max(layers) + 1`.
    pub num_layers: usize,
    /// Rounds used (one per layer).
    pub rounds: usize,
}

/// Distributed peeling: one round per iteration.
#[derive(Debug)]
struct Peel {
    round: usize,
}

impl SyncAlgorithm for Peel {
    type Input = ();
    type Message = ();
    type Output = usize;

    fn init(_info: &NodeInfo, _input: &(), _rng: &mut StdRng) -> Self {
        Peel { round: 0 }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<()> {
        vec![(); info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<()>>,
        _rng: &mut StdRng,
    ) -> Status<usize> {
        // Neighbors still running this round = not yet peeled before it.
        let active = incoming.iter().flatten().count();
        if active <= 2 {
            return Status::Done(self.round);
        }
        self.round += 1;
        Status::Continue
    }
}

/// Computes the H-partition of a forest (2-degenerate peeling).
///
/// Works on any graph, but the `O(log n)` layer guarantee needs arboricity
/// ≤ 1 + ε; on dense graphs the peeling may never terminate, in which case
/// the round budget trips.
///
/// # Errors
///
/// Propagates simulation errors (including the round budget for
/// non-degenerate inputs).
pub fn h_partition(graph: &Graph, seed: u64) -> Result<HPartition> {
    let budget = 4 * ((graph.n() as f64).log2().ceil() as usize + 2);
    let config = RunConfig::port_numbering(seed, budget);
    let inputs = vec![(); graph.n()];
    let report = run::<Peel>(graph, &inputs, &config)?;
    let num_layers = report.outputs.iter().copied().max().unwrap_or(0) + 1;
    Ok(HPartition { layers: report.outputs, num_layers, rounds: report.rounds })
}

/// Checks the defining property of an H-partition: every node has at most
/// 2 neighbors in its own or higher layers.
pub fn check_h_partition(graph: &Graph, layers: &[usize]) -> bool {
    (0..graph.n()).all(|v| {
        let up = graph.neighbors(v).filter(|&u| layers[u] >= layers[v]).count();
        up <= 2
    })
}

/// Per-node input of the layered sweep.
#[derive(Debug, Clone, Copy)]
pub struct LayerInput {
    /// The node's H-partition layer.
    pub layer: usize,
    /// Total number of layers.
    pub num_layers: usize,
}

/// Messages of the layered sweep: full state each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayeredMsg {
    /// Whether the sender has joined the MIS.
    in_s: bool,
    /// Whether the sender participates in the current layer block.
    participating: bool,
    /// The sender's current within-layer color.
    color: u64,
}

impl local_sim::congest::MessageSize for LayeredMsg {
    fn size_bits(&self) -> usize {
        // Two flags plus the color, which is an id (≤ n³) initially and a
        // small palette value later; we charge the conservative 64 bits.
        2 + 64
    }
}

/// The layered MIS sweep over an H-partition.
///
/// All nodes follow one global schedule of `num_layers` blocks of equal
/// length `B = (reduction rounds) + (K − 3) + 3`, processing layers from
/// highest to lowest; see the module docs for the invariants.
#[derive(Debug)]
pub struct LayeredSweep {
    layer: usize,
    num_layers: usize,
    in_s: Option<bool>,
    color: u64,
    participating: bool,
    /// Palette schedule of the degree-2 Linial reduction.
    schedule: Vec<u64>,
    /// Final palette size `K`.
    k: u64,
    /// Absolute round counter.
    round: usize,
}

impl LayeredSweep {
    fn block_len(&self) -> usize {
        // One participation-announcement round, then reduction rounds,
        // shift-down of classes K−1 … 3, and 3 sweep rounds.
        1 + (self.schedule.len() - 1) + (self.k as usize - 3) + 3
    }
}

impl SyncAlgorithm for LayeredSweep {
    type Input = LayerInput;
    type Message = LayeredMsg;
    type Output = bool;

    fn init(info: &NodeInfo, input: &LayerInput, _rng: &mut StdRng) -> Self {
        let n = info.n as u64;
        let schedule = palette_schedule(n.pow(3) + 1, 2);
        let k = *schedule.last().expect("non-empty schedule");
        LayeredSweep {
            layer: input.layer,
            num_layers: input.num_layers,
            in_s: None,
            color: info.id.expect("layered MIS runs in the LOCAL model"),
            participating: false,
            schedule,
            k: k.max(3),
            round: 0,
        }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<LayeredMsg> {
        let msg = LayeredMsg {
            in_s: self.in_s == Some(true),
            participating: self.participating,
            color: self.color,
        };
        vec![msg; info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<LayeredMsg>>,
        _rng: &mut StdRng,
    ) -> Status<bool> {
        let b = self.block_len();
        let block = self.round / b;
        let pos = self.round % b;
        let processed_layer = self.num_layers - 1 - block;
        let reduction_rounds = self.schedule.len() - 1;

        let s_neighbor = incoming.iter().flatten().any(|m| m.in_s);
        let peer_colors: Vec<u64> =
            incoming.iter().flatten().filter(|m| m.participating).map(|m| m.color).collect();

        if pos == 0 {
            // Freeze this block's participants: my layer's turn, still
            // undecided, not dominated. The updated `participating` flag
            // goes out with next round's messages, so the reduction steps
            // below see exactly the frozen participant set.
            self.participating =
                self.layer == processed_layer && self.in_s.is_none() && !s_neighbor;
            if self.layer == processed_layer && self.in_s.is_none() && s_neighbor {
                self.in_s = Some(false);
            }
        } else if self.participating {
            if pos - 1 < reduction_rounds {
                // One Linial reduction step at degree 2: peers are my
                // participating (same-layer, ≤ 2) neighbors.
                let m = self.schedule[pos - 1];
                let q = linial_prime(m, 2);
                let e = (0..q)
                    .find(|&e| {
                        let mine = poly_eval(self.color, q, e);
                        peer_colors.iter().all(|&c| poly_eval(c, q, e) != mine)
                    })
                    .expect("q > (d-1)*2 guarantees an evaluation point");
                self.color = e * q + poly_eval(self.color, q, e);
            } else if pos - 1 < reduction_rounds + (self.k as usize - 3) {
                // Shift-down of class K−1−(pos−1−reduction_rounds).
                let class = self.k - 1 - (pos - 1 - reduction_rounds) as u64;
                if self.color == class {
                    self.color = (0u64..3)
                        .find(|c| !peer_colors.contains(c))
                        .expect("degree <= 2 leaves a free color among {0,1,2}");
                }
            } else {
                // Sweep rounds: class `pos − 1 − reduction − (K−3)` joins
                // if undominated.
                let class = (pos - 1 - reduction_rounds - (self.k as usize - 3)) as u64;
                if self.color == class && self.in_s.is_none() {
                    if s_neighbor {
                        self.in_s = Some(false);
                    } else {
                        self.in_s = Some(true);
                    }
                    self.participating = false;
                }
                if pos + 1 == b && self.in_s.is_none() {
                    // Defensive: participants always decide within their
                    // block (colors are < K and within {0,1,2} by now).
                    self.in_s = Some(false);
                }
            }
        }

        self.round += 1;
        if self.round == self.num_layers * b {
            return Status::Done(self.in_s == Some(true));
        }
        Status::Continue
    }
}

/// Round counts of the two phases of [`tree_mis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeMisRounds {
    /// H-partition peeling rounds (= number of layers).
    pub h_partition: usize,
    /// Layered sweep rounds (`num_layers × block length`).
    pub layered: usize,
}

impl TreeMisRounds {
    /// Total rounds across both phases.
    pub fn total(&self) -> usize {
        self.h_partition + self.layered
    }
}

/// The outcome of [`tree_mis`].
#[derive(Debug, Clone)]
pub struct TreeMisReport {
    /// MIS membership per node.
    pub in_set: Vec<bool>,
    /// The H-partition used.
    pub layers: Vec<usize>,
    /// Number of layers.
    pub num_layers: usize,
    /// Per-phase round counts.
    pub rounds: TreeMisRounds,
}

/// Runs the layered sweep on a precomputed H-partition.
///
/// # Errors
///
/// Propagates simulation errors; `layers` must come from a valid
/// H-partition of `graph` (see [`check_h_partition`]).
pub fn layered_mis(graph: &Graph, partition: &HPartition, seed: u64) -> Result<(Vec<bool>, usize)> {
    if !check_h_partition(graph, &partition.layers) {
        return Err(SimError::InvalidParameter {
            message: "layers do not form an H-partition (some node has > 2 up-neighbors)".into(),
        });
    }
    let inputs: Vec<LayerInput> = partition
        .layers
        .iter()
        .map(|&layer| LayerInput { layer, num_layers: partition.num_layers })
        .collect();
    let n = graph.n() as u64;
    let schedule = palette_schedule(n.pow(3) + 1, 2);
    let k = (*schedule.last().expect("non-empty")).max(3) as usize;
    let block = 1 + (schedule.len() - 1) + (k - 3) + 3;
    let budget = partition.num_layers * block + 4;
    let config = RunConfig::local(graph, seed, budget);
    let report = run::<LayeredSweep>(graph, &inputs, &config)?;
    Ok((report.outputs, report.rounds))
}

/// Deterministic MIS on a tree/forest with no Δ dependence: H-partition
/// peeling followed by the layered degree-2 sweep.
///
/// # Errors
///
/// Propagates simulation errors from either phase.
pub fn tree_mis(graph: &Graph, seed: u64) -> Result<TreeMisReport> {
    let partition = h_partition(graph, seed)?;
    let (in_set, layered_rounds) = layered_mis(graph, &partition, seed)?;
    Ok(TreeMisReport {
        in_set,
        num_layers: partition.num_layers,
        layers: partition.layers,
        rounds: TreeMisRounds { h_partition: partition.rounds, layered: layered_rounds },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers::check_mis;
    use local_sim::trees;

    #[test]
    fn h_partition_on_paths_is_single_layer() {
        let g = trees::path(20).unwrap();
        let hp = h_partition(&g, 0).unwrap();
        assert_eq!(hp.num_layers, 1);
        assert!(hp.layers.iter().all(|&l| l == 0));
        assert!(check_h_partition(&g, &hp.layers));
    }

    #[test]
    fn h_partition_layers_logarithmic_on_trees() {
        for seed in 0..3 {
            let g = trees::random_tree(300, 8, seed).unwrap();
            let hp = h_partition(&g, seed).unwrap();
            assert!(check_h_partition(&g, &hp.layers));
            // Peeling removes ≥ 1/3 of a forest per round.
            let cap = ((300f64).ln() / (1.5f64).ln()).ceil() as usize + 1;
            assert!(hp.num_layers <= cap, "layers = {}", hp.num_layers);
        }
    }

    #[test]
    fn h_partition_star_two_layers() {
        // Star with many leaves: leaves peel first, then the center.
        let g = trees::star(10).unwrap();
        let hp = h_partition(&g, 0).unwrap();
        assert_eq!(hp.layers[0], 1); // center (node 0) peels second
        assert!(hp.layers[1..].iter().all(|&l| l == 0));
        assert!(check_h_partition(&g, &hp.layers));
    }

    #[test]
    fn tree_mis_valid_on_regular_trees() {
        for (delta, depth) in [(3usize, 4usize), (5, 3), (8, 2)] {
            let g = trees::complete_regular_tree(delta, depth).unwrap();
            let rep = tree_mis(&g, 7).unwrap();
            check_mis(&g, &rep.in_set).unwrap();
        }
    }

    #[test]
    fn tree_mis_valid_on_random_trees() {
        for seed in 0..4 {
            let g = trees::random_tree(150, 10, seed).unwrap();
            let rep = tree_mis(&g, seed).unwrap();
            check_mis(&g, &rep.in_set).unwrap();
        }
    }

    #[test]
    fn tree_mis_valid_on_paths_and_stars() {
        let p = trees::path(40).unwrap();
        let rep = tree_mis(&p, 1).unwrap();
        check_mis(&p, &rep.in_set).unwrap();

        let s = trees::star(25).unwrap();
        let rep = tree_mis(&s, 1).unwrap();
        check_mis(&s, &rep.in_set).unwrap();
        // Star MIS: either the center alone dominates or all leaves join.
        assert!(rep.in_set[0] != rep.in_set[1]);
    }

    #[test]
    fn rounds_independent_of_delta() {
        // Same n, very different Δ: round counts should be comparable
        // (driven by #layers, not degree).
        let narrow = trees::complete_regular_tree(3, 5).unwrap(); // n = 94
        let wide = trees::star(93).unwrap(); // n = 94, Δ = 93
        let a = tree_mis(&narrow, 3).unwrap();
        let b = tree_mis(&wide, 3).unwrap();
        check_mis(&narrow, &a.in_set).unwrap();
        check_mis(&wide, &b.in_set).unwrap();
        // The wide tree has *fewer* layers; its rounds must not blow up
        // with Δ.
        assert!(b.rounds.total() <= a.rounds.total() + 5);
    }

    #[test]
    fn layered_mis_rejects_bogus_partition() {
        let g = trees::star(6).unwrap();
        // All nodes in one layer: center has 6 up-neighbors.
        let bogus = HPartition { layers: vec![0; g.n()], num_layers: 1, rounds: 1 };
        assert!(layered_mis(&g, &bogus, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = trees::random_tree(80, 6, 2).unwrap();
        let a = tree_mis(&g, 5).unwrap();
        let b = tree_mis(&g, 5).unwrap();
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(a.rounds, b.rounds);
    }
}
