//! The greedy class sweep (paper §1.1).
//!
//! Given a partition of the nodes into `c` classes (a proper or defective
//! coloring), iterate over the classes; when a class is processed, every
//! node of that class that does not yet have a neighbor in the set `S`
//! joins `S`. The paper's observation: starting from a k-defective
//! (k-arbdefective) coloring this produces a k-degree (k-outdegree)
//! dominating set, in `O(#classes)` rounds; from a proper coloring it
//! produces an MIS.

use local_sim::error::Result;
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::Graph;
use rand::rngs::StdRng;

/// Per-node input: the node's class and the total number of classes.
#[derive(Debug, Clone)]
pub struct SweepInput {
    /// The node's class (color).
    pub class: usize,
    /// Total number of classes.
    pub num_classes: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepState {
    Undecided,
    PendingAnnounce,
    Out,
}

/// The class-sweep algorithm. Message: `true` iff the sender has joined `S`.
#[derive(Debug)]
pub struct ClassSweep {
    class: usize,
    num_classes: usize,
    state: SweepState,
    round: usize,
}

impl SyncAlgorithm for ClassSweep {
    type Input = SweepInput;
    type Message = bool;
    type Output = bool;

    fn init(_info: &NodeInfo, input: &SweepInput, _rng: &mut StdRng) -> Self {
        ClassSweep {
            class: input.class,
            num_classes: input.num_classes,
            state: SweepState::Undecided,
            round: 0,
        }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<bool> {
        vec![self.state == SweepState::PendingAnnounce; info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<bool>>,
        _rng: &mut StdRng,
    ) -> Status<bool> {
        if self.state == SweepState::PendingAnnounce {
            // Joined last round and just announced it.
            return Status::Done(true);
        }
        let dominated = incoming.contains(&Some(true));
        if dominated {
            self.state = SweepState::Out;
            return Status::Done(false);
        }
        if self.round == self.class {
            // My class's turn and nobody dominates me: join, announce next
            // round.
            self.state = SweepState::PendingAnnounce;
        } else if self.round >= self.num_classes {
            // All classes processed; I stayed out (dominated earlier — or a
            // boundary case where my domination message raced my class).
            return Status::Done(false);
        }
        self.round += 1;
        Status::Continue
    }
}

/// Runs the class sweep; returns the selected set and the exact round
/// count (`≤ num_classes + 2`).
///
/// # Errors
///
/// Propagates simulation errors; `classes` must be `< num_classes`.
pub fn class_sweep(
    graph: &Graph,
    classes: &[usize],
    num_classes: usize,
    seed: u64,
) -> Result<(Vec<bool>, usize)> {
    if classes.iter().any(|&c| c >= num_classes) {
        return Err(local_sim::SimError::InvalidParameter {
            message: "class index out of range".into(),
        });
    }
    let inputs: Vec<SweepInput> =
        classes.iter().map(|&class| SweepInput { class, num_classes }).collect();
    let config = RunConfig::port_numbering(seed, num_classes + 4);
    let report = run::<ClassSweep>(graph, &inputs, &config)?;
    Ok((report.outputs, report.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers;
    use local_sim::trees;

    #[test]
    fn sweep_on_proper_coloring_gives_mis() {
        let g = trees::path(7).unwrap();
        let classes: Vec<usize> = (0..7).map(|v| v % 2).collect();
        let (in_set, rounds) = class_sweep(&g, &classes, 2, 0).unwrap();
        checkers::check_mis(&g, &in_set).unwrap();
        assert!(rounds <= 4);
    }

    #[test]
    fn sweep_gives_dominating_set_on_any_partition() {
        // Even a single class (everyone joins) dominates.
        let g = trees::complete_regular_tree(3, 3).unwrap();
        let classes = vec![0usize; g.n()];
        let (in_set, _) = class_sweep(&g, &classes, 1, 0).unwrap();
        checkers::check_dominating_set(&g, &in_set).unwrap();
        assert!(in_set.iter().all(|&b| b));
    }

    #[test]
    fn sweep_on_tree_with_proper_coloring() {
        for seed in 0..3 {
            let g = trees::random_tree(60, 4, seed).unwrap();
            let rep = crate::linial::linial_coloring(&g, seed).unwrap();
            let (in_set, rounds) = class_sweep(&g, &rep.colors, rep.num_colors, seed).unwrap();
            checkers::check_mis(&g, &in_set).unwrap();
            assert!(rounds <= rep.num_colors + 2);
        }
    }

    #[test]
    fn round_count_tracks_used_classes() {
        // All nodes in class 0 of 50 declared classes: everyone decides in
        // the first rounds; the runner stops as soon as all have halted.
        let g = trees::star(4).unwrap();
        let classes = vec![0usize; g.n()];
        let (_, rounds) = class_sweep(&g, &classes, 50, 0).unwrap();
        assert!(rounds <= 4, "rounds = {rounds}");
    }
}
