//! Maximal matching by edge-color sweep.
//!
//! Given a proper Δ-edge coloring (the input the paper's Lemma 9 also
//! exploits), sweep the color classes: in class `c`, every edge whose two
//! endpoints are both unmatched joins the matching — both endpoints see
//! each other's status, so the decision is symmetric and conflict-free
//! (a node has at most one edge per color). Runs in `#colors + O(1)`
//! rounds; maximal matchings in line-graph form are MIS relatives the paper
//! discusses via b-matchings (§1).

use local_sim::error::Result;
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::{EdgeColoring, Graph};
use rand::rngs::StdRng;

/// The matching sweep algorithm. Message: whether the sender is matched.
#[derive(Debug)]
pub struct MatchingSweep {
    num_colors: usize,
    round: usize,
    matched_port: Option<usize>,
}

impl SyncAlgorithm for MatchingSweep {
    type Input = usize; // number of edge colors
    type Message = bool;
    type Output = Option<usize>; // matched port

    fn init(_info: &NodeInfo, input: &usize, _rng: &mut StdRng) -> Self {
        MatchingSweep { num_colors: *input, round: 0, matched_port: None }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<bool> {
        vec![self.matched_port.is_some(); info.degree]
    }

    fn receive(
        &mut self,
        info: &NodeInfo,
        incoming: Vec<Option<bool>>,
        _rng: &mut StdRng,
    ) -> Status<Option<usize>> {
        if self.matched_port.is_none() {
            let colors = info.edge_colors.as_ref().expect("edge coloring required");
            if let Some(port) = colors.iter().position(|&c| c == self.round) {
                // The neighbor across this color-`round` port: unmatched and
                // alive iff it reported `false`.
                if incoming[port] == Some(false) {
                    self.matched_port = Some(port);
                }
            }
        } else if self.round > 0 {
            // Already matched and have announced it at least once.
            return Status::Done(self.matched_port);
        }
        self.round += 1;
        if self.round > self.num_colors {
            Status::Done(self.matched_port)
        } else {
            Status::Continue
        }
    }
}

/// The outcome of [`maximal_matching`].
#[derive(Debug, Clone)]
pub struct MatchingReport {
    /// Per-edge membership flags.
    pub in_matching: Vec<bool>,
    /// Rounds consumed.
    pub rounds: usize,
}

/// Computes a maximal matching from a proper edge coloring in
/// `#colors + O(1)` rounds.
///
/// # Errors
///
/// Requires a proper edge coloring.
pub fn maximal_matching(
    graph: &Graph,
    coloring: &EdgeColoring,
    seed: u64,
) -> Result<MatchingReport> {
    if !local_sim::edge_coloring::is_proper(graph, coloring) {
        return Err(local_sim::SimError::InvalidParameter {
            message: "maximal_matching requires a proper edge coloring".into(),
        });
    }
    let num_colors = coloring.num_colors();
    let config = RunConfig::port_numbering(seed, num_colors + 4)
        .with_edge_colors(coloring.as_slice().to_vec());
    let inputs = vec![num_colors; graph.n()];
    let report = run::<MatchingSweep>(graph, &inputs, &config)?;
    let mut in_matching = vec![false; graph.m()];
    for (v, matched) in report.outputs.iter().enumerate() {
        if let Some(port) = matched {
            in_matching[graph.port_target(v, *port).edge] = true;
        }
    }
    Ok(MatchingReport { in_matching, rounds: report.rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers::check_maximal_matching;
    use local_sim::edge_coloring::tree_edge_coloring;
    use local_sim::trees;

    #[test]
    fn matching_on_regular_trees() {
        for delta in 2..=5 {
            let g = trees::complete_regular_tree(delta, 3).unwrap();
            let col = tree_edge_coloring(&g).unwrap();
            let rep = maximal_matching(&g, &col, 0).unwrap();
            check_maximal_matching(&g, &rep.in_matching).unwrap();
            assert!(rep.rounds <= col.num_colors() + 3);
        }
    }

    #[test]
    fn matching_on_random_trees() {
        for seed in 0..3 {
            let g = trees::random_tree(60, 5, seed).unwrap();
            let col = tree_edge_coloring(&g).unwrap();
            let rep = maximal_matching(&g, &col, seed).unwrap();
            check_maximal_matching(&g, &rep.in_matching).unwrap();
        }
    }

    #[test]
    fn matching_consistent_both_sides() {
        let g = trees::path(5).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        let rep = maximal_matching(&g, &col, 1).unwrap();
        // Every node is covered at most once (already in the checker), and
        // matched flags correspond to symmetric decisions.
        let covered = rep.in_matching.iter().filter(|&&b| b).count();
        assert!(covered >= 1);
    }
}
