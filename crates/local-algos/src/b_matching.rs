//! Maximal b-matchings (paper §1, related work on line graphs).
//!
//! A *b-matching* is an edge set in which no node is covered more than `b`
//! times; the paper cites the `Ω(min{Δ/b, …})` lower bounds of
//! \[Balliu et al. FOCS'19, Brandt–Olivetti PODC'20\] for maximal
//! b-matchings as the general-graph counterpart of its tree bounds.
//! This module computes maximal b-matchings by an edge-color sweep: in the
//! round of color `c`, an edge joins if both endpoints still have residual
//! capacity — a symmetric decision since both endpoints see each other's
//! load. Runs in `#colors + O(1)` rounds.

use local_sim::error::Result;
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::{EdgeColoring, Graph};
use rand::rngs::StdRng;

/// The b-matching sweep. Message: the sender's current matched-edge count.
#[derive(Debug)]
pub struct BMatchingSweep {
    b: usize,
    num_colors: usize,
    round: usize,
    load: usize,
    matched_ports: Vec<usize>,
}

/// Per-node input: capacity `b` and the number of edge colors.
#[derive(Debug, Clone)]
pub struct BMatchingInput {
    /// Per-node capacity.
    pub b: usize,
    /// Number of edge colors.
    pub num_colors: usize,
}

impl SyncAlgorithm for BMatchingSweep {
    type Input = BMatchingInput;
    type Message = usize;
    type Output = Vec<usize>; // matched ports

    fn init(_info: &NodeInfo, input: &BMatchingInput, _rng: &mut StdRng) -> Self {
        BMatchingSweep {
            b: input.b,
            num_colors: input.num_colors,
            round: 0,
            load: 0,
            matched_ports: Vec::new(),
        }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<usize> {
        vec![self.load; info.degree]
    }

    fn receive(
        &mut self,
        info: &NodeInfo,
        incoming: Vec<Option<usize>>,
        _rng: &mut StdRng,
    ) -> Status<Vec<usize>> {
        if self.load < self.b {
            let colors = info.edge_colors.as_ref().expect("edge coloring required");
            if let Some(port) = colors.iter().position(|&c| c == self.round) {
                // Neighbor across the color-`round` edge: joins iff both
                // have residual capacity and the neighbor is still active.
                if let Some(neighbor_load) = incoming[port] {
                    if neighbor_load < self.b {
                        self.matched_ports.push(port);
                        self.load += 1;
                    }
                }
            }
        }
        self.round += 1;
        if self.round > self.num_colors {
            Status::Done(self.matched_ports.clone())
        } else {
            Status::Continue
        }
    }
}

/// The outcome of [`maximal_b_matching`].
#[derive(Debug, Clone)]
pub struct BMatchingReport {
    /// Per-edge membership flags.
    pub in_matching: Vec<bool>,
    /// Rounds consumed.
    pub rounds: usize,
}

/// Computes a maximal b-matching from a proper edge coloring in
/// `#colors + O(1)` rounds.
///
/// # Errors
///
/// Requires `b ≥ 1` and a proper edge coloring.
pub fn maximal_b_matching(
    graph: &Graph,
    coloring: &EdgeColoring,
    b: usize,
    seed: u64,
) -> Result<BMatchingReport> {
    if b == 0 {
        return Err(local_sim::SimError::InvalidParameter { message: "b must be >= 1".into() });
    }
    if !local_sim::edge_coloring::is_proper(graph, coloring) {
        return Err(local_sim::SimError::InvalidParameter {
            message: "maximal_b_matching requires a proper edge coloring".into(),
        });
    }
    let num_colors = coloring.num_colors();
    let config = RunConfig::port_numbering(seed, num_colors + 4)
        .with_edge_colors(coloring.as_slice().to_vec());
    let inputs = vec![BMatchingInput { b, num_colors }; graph.n()];
    let report = run::<BMatchingSweep>(graph, &inputs, &config)?;
    let mut in_matching = vec![false; graph.m()];
    for (v, ports) in report.outputs.iter().enumerate() {
        for &port in ports {
            in_matching[graph.port_target(v, port).edge] = true;
        }
    }
    Ok(BMatchingReport { in_matching, rounds: report.rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers::check_maximal_b_matching;
    use local_sim::edge_coloring::tree_edge_coloring;
    use local_sim::trees;

    #[test]
    fn b_matching_on_regular_trees() {
        for delta in 3..=5 {
            for b in 1..=delta {
                let g = trees::complete_regular_tree(delta, 3).unwrap();
                let col = tree_edge_coloring(&g).unwrap();
                let rep = maximal_b_matching(&g, &col, b, 0).unwrap();
                check_maximal_b_matching(&g, &rep.in_matching, b)
                    .unwrap_or_else(|v| panic!("delta={delta}, b={b}: {v}"));
            }
        }
    }

    #[test]
    fn b_one_is_maximal_matching() {
        let g = trees::random_tree(60, 5, 2).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        let rep = maximal_b_matching(&g, &col, 1, 0).unwrap();
        local_sim::checkers::check_maximal_matching(&g, &rep.in_matching).unwrap();
    }

    #[test]
    fn full_capacity_takes_all_edges() {
        // b = Δ: every edge joins (no endpoint ever saturates early enough
        // to block its color class).
        let g = trees::complete_regular_tree(3, 2).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        let rep = maximal_b_matching(&g, &col, 3, 0).unwrap();
        assert!(rep.in_matching.iter().all(|&e| e));
    }

    #[test]
    fn larger_b_more_edges() {
        let g = trees::random_tree(80, 5, 4).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        let count = |b: usize| {
            maximal_b_matching(&g, &col, b, 0).unwrap().in_matching.iter().filter(|&&e| e).count()
        };
        assert!(count(2) >= count(1));
        assert!(count(3) >= count(2));
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = trees::path(3).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        assert!(maximal_b_matching(&g, &col, 0, 0).is_err());
        let bad = local_sim::EdgeColoring::new(vec![0, 0]);
        assert!(maximal_b_matching(&g, &bad, 1, 0).is_err());
    }
}
