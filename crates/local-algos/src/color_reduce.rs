//! Standard color reduction: one color class per round.
//!
//! Given a proper `m`-coloring and a target palette `t ≥ Δ+1`, eliminate
//! colors `m−1, m−2, …, t` one round at a time: the nodes of the
//! highest remaining color simultaneously recolor to the smallest color in
//! `[t]` unused by their neighbors (they form an independent set, so the
//! result stays proper). Runs in exactly `max(0, m − t)` rounds.

use local_sim::error::Result;
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::Graph;
use rand::rngs::StdRng;

/// Per-node input for [`ColorReduce`]: current color and the palette
/// parameters.
#[derive(Debug, Clone)]
pub struct ReduceInput {
    /// The node's current (proper) color.
    pub color: usize,
    /// Current palette size `m`.
    pub m: usize,
    /// Target palette size `t` (must be ≥ Δ+1).
    pub t: usize,
}

/// The color reduction algorithm.
#[derive(Debug)]
pub struct ColorReduce {
    color: usize,
    m: usize,
    t: usize,
    round: usize,
}

impl SyncAlgorithm for ColorReduce {
    type Input = ReduceInput;
    type Message = usize;
    type Output = usize;

    fn init(_info: &NodeInfo, input: &ReduceInput, _rng: &mut StdRng) -> Self {
        ColorReduce { color: input.color, m: input.m, t: input.t, round: 0 }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<usize> {
        vec![self.color; info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<usize>>,
        _rng: &mut StdRng,
    ) -> Status<usize> {
        if self.m <= self.t {
            return Status::Done(self.color);
        }
        let eliminated = self.m - 1 - self.round;
        if self.color == eliminated {
            let used: std::collections::HashSet<usize> = incoming.into_iter().flatten().collect();
            self.color =
                (0..self.t).find(|c| !used.contains(c)).expect("t >= Δ+1 guarantees a free color");
        }
        self.round += 1;
        if eliminated == self.t {
            Status::Done(self.color)
        } else {
            Status::Continue
        }
    }
}

/// Reduces a proper `m`-coloring to `t` colors in `max(0, m − t)` rounds.
///
/// # Errors
///
/// Requires `t ≥ Δ+1` and a proper input coloring (enforced by debug
/// checks; violations surface as missing free colors).
pub fn reduce_colors(
    graph: &Graph,
    colors: &[usize],
    m: usize,
    t: usize,
    seed: u64,
) -> Result<(Vec<usize>, usize)> {
    if t < graph.max_degree() + 1 {
        return Err(local_sim::SimError::InvalidParameter {
            message: format!("target {t} below Δ+1 = {}", graph.max_degree() + 1),
        });
    }
    if m <= t {
        return Ok((colors.to_vec(), 0));
    }
    let inputs: Vec<ReduceInput> =
        colors.iter().map(|&color| ReduceInput { color, m, t }).collect();
    let config = RunConfig::port_numbering(seed, m + 2);
    let report = run::<ColorReduce>(graph, &inputs, &config)?;
    Ok((report.outputs, report.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial;
    use local_sim::checkers::check_proper_coloring;
    use local_sim::trees;

    #[test]
    fn reduce_to_delta_plus_one() {
        let g = trees::complete_regular_tree(3, 4).unwrap();
        let rep = linial::linial_coloring(&g, 3).unwrap();
        let (colors, rounds) = reduce_colors(&g, &rep.colors, rep.num_colors, 4, 0).unwrap();
        check_proper_coloring(&g, &colors).unwrap();
        assert!(colors.iter().all(|&c| c < 4));
        assert_eq!(rounds, rep.num_colors - 4);
    }

    #[test]
    fn noop_when_already_small() {
        let g = trees::path(4).unwrap();
        let colors = vec![0, 1, 0, 1];
        let (out, rounds) = reduce_colors(&g, &colors, 2, 3, 0).unwrap();
        assert_eq!(out, colors);
        assert_eq!(rounds, 0);
    }

    #[test]
    fn rejects_target_below_delta_plus_one() {
        let g = trees::star(5).unwrap();
        let colors: Vec<usize> = (0..g.n()).collect();
        assert!(reduce_colors(&g, &colors, g.n(), 3, 0).is_err());
    }

    #[test]
    fn reduction_on_random_trees() {
        for seed in 0..3 {
            let g = trees::random_tree(80, 4, seed).unwrap();
            let rep = linial::linial_coloring(&g, seed).unwrap();
            let t = g.max_degree() + 1;
            let (colors, _) = reduce_colors(&g, &rep.colors, rep.num_colors, t, seed).unwrap();
            check_proper_coloring(&g, &colors).unwrap();
            assert!(colors.iter().all(|&c| c < t));
        }
    }
}
