//! One-shot k-defective coloring (Kuhn \[SPAA'09\]-style).
//!
//! From a proper `m`-coloring, one round suffices to compute a k-defective
//! `q²`-coloring for a prime `q` with `(d−1)·Δ ≤ k·q` (`d = ⌈log_q m⌉`):
//! node `v` interprets its color as a degree-`< d` polynomial `f_v` over
//! `F_q` and picks the evaluation point `e` minimizing
//! `|{u ~ v : f_u(e) = f_v(e)}|`; summing agreements over all `e` shows the
//! minimum is at most `(d−1)Δ/q ≤ k`. The new color is `(e, f_v(e))`.
//! Conflicting neighbors in the new coloring must agree at `v`'s chosen
//! point, so the defect of `v` is bounded by its own minimum — one round,
//! no coordination.

use crate::linial::{is_prime, next_prime};
use local_sim::error::Result;
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::Graph;
use rand::rngs::StdRng;

/// Smallest prime `q` with `(d−1)·Δ ≤ k·q` where `d = ⌈log_q m⌉`.
pub fn defective_prime(m: u64, delta: u64, k: u64) -> u64 {
    assert!(k >= 1, "defective_prime requires k >= 1");
    let mut q = 2u64;
    loop {
        q = next_prime(q);
        let mut d = 1u64;
        let mut cap = q;
        while cap < m {
            cap = cap.saturating_mul(q);
            d += 1;
        }
        if (d - 1) * delta <= k * q {
            return q;
        }
        q += 1;
    }
}

/// Per-node input: proper color and global parameters.
#[derive(Debug, Clone)]
pub struct DefectiveInput {
    /// The node's proper color.
    pub color: u64,
    /// Palette size `m`.
    pub m: u64,
    /// Target defect `k`.
    pub k: u64,
}

/// The one-round defective coloring algorithm.
#[derive(Debug)]
pub struct Defective {
    color: u64,
    m: u64,
    k: u64,
}

fn poly_eval(mut c: u64, q: u64, e: u64) -> u64 {
    let mut acc = 0u64;
    let mut power = 1u64;
    loop {
        acc = (acc + (c % q) * power) % q;
        c /= q;
        if c == 0 {
            return acc;
        }
        power = (power * e) % q;
    }
}

impl SyncAlgorithm for Defective {
    type Input = DefectiveInput;
    type Message = u64;
    type Output = u64;

    fn init(_info: &NodeInfo, input: &DefectiveInput, _rng: &mut StdRng) -> Self {
        Defective { color: input.color, m: input.m, k: input.k }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<u64> {
        vec![self.color; info.degree]
    }

    fn receive(
        &mut self,
        info: &NodeInfo,
        incoming: Vec<Option<u64>>,
        _rng: &mut StdRng,
    ) -> Status<u64> {
        let q = defective_prime(self.m, info.max_degree.max(1) as u64, self.k);
        let neighbors: Vec<u64> = incoming.into_iter().flatten().collect();
        let e_best = (0..q)
            .min_by_key(|&e| {
                let mine = poly_eval(self.color, q, e);
                neighbors.iter().filter(|&&c| poly_eval(c, q, e) == mine).count()
            })
            .expect("q >= 2");
        Status::Done(e_best * q + poly_eval(self.color, q, e_best))
    }
}

/// The outcome of [`defective_coloring`].
#[derive(Debug, Clone)]
pub struct DefectiveReport {
    /// A k-defective coloring.
    pub colors: Vec<usize>,
    /// Palette size `q²`.
    pub num_colors: usize,
    /// Rounds consumed (always 1).
    pub rounds: usize,
}

/// Computes a k-defective `q²`-coloring from a proper `m`-coloring in one
/// round.
///
/// # Errors
///
/// Requires `k ≥ 1` (for `k = 0` use the proper coloring itself) and a
/// proper input coloring.
pub fn defective_coloring(
    graph: &Graph,
    colors: &[usize],
    m: usize,
    k: usize,
    seed: u64,
) -> Result<DefectiveReport> {
    if k == 0 {
        return Err(local_sim::SimError::InvalidParameter {
            message: "k = 0 defective coloring is just the proper coloring".into(),
        });
    }
    local_sim::checkers::check_proper_coloring(graph, colors).map_err(|v| {
        local_sim::SimError::InvalidParameter { message: format!("input not proper: {v}") }
    })?;
    let inputs: Vec<DefectiveInput> = colors
        .iter()
        .map(|&color| DefectiveInput { color: color as u64, m: m as u64, k: k as u64 })
        .collect();
    let config = RunConfig::port_numbering(seed, 4);
    let report = run::<Defective>(graph, &inputs, &config)?;
    let q = defective_prime(m as u64, graph.max_degree().max(1) as u64, k as u64);
    debug_assert!(is_prime(q));
    Ok(DefectiveReport {
        colors: report.outputs.iter().map(|&c| c as usize).collect(),
        num_colors: (q * q) as usize,
        rounds: report.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial;
    use local_sim::checkers::check_defective_coloring;
    use local_sim::trees;

    #[test]
    fn prime_condition() {
        let q = defective_prime(1000, 8, 2);
        // d = ceil(log_q 1000); condition (d-1)*8 <= 2q.
        let mut d = 1u64;
        let mut cap = q;
        while cap < 1000 {
            cap *= q;
            d += 1;
        }
        assert!((d - 1) * 8 <= 2 * q);
        assert!(is_prime(q));
    }

    #[test]
    fn defect_bound_holds() {
        for (delta, k) in [(4usize, 1usize), (4, 2), (5, 2), (6, 3)] {
            let g = trees::complete_regular_tree(delta, 3).unwrap();
            let rep = linial::linial_coloring(&g, 5).unwrap();
            let def = defective_coloring(&g, &rep.colors, rep.num_colors, k, 0).unwrap();
            check_defective_coloring(&g, &def.colors, k).unwrap();
            assert!(def.colors.iter().all(|&c| c < def.num_colors));
            assert_eq!(def.rounds, 1);
        }
    }

    #[test]
    fn palette_shrinks_for_large_k() {
        // Larger k permits a smaller prime, hence fewer colors.
        let g = trees::complete_regular_tree(6, 3).unwrap();
        let rep = linial::linial_coloring(&g, 2).unwrap();
        let small_k = defective_coloring(&g, &rep.colors, rep.num_colors, 1, 0).unwrap();
        let large_k = defective_coloring(&g, &rep.colors, rep.num_colors, 5, 0).unwrap();
        assert!(large_k.num_colors <= small_k.num_colors);
    }

    #[test]
    fn rejects_k_zero_and_improper() {
        let g = trees::path(3).unwrap();
        assert!(defective_coloring(&g, &[0, 1, 0], 2, 0, 0).is_err());
        assert!(defective_coloring(&g, &[0, 0, 0], 1, 1, 0).is_err());
    }
}
