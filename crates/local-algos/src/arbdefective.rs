//! k-arbdefective coloring by sequential class processing.
//!
//! From a proper `m`-coloring, process the color classes in order; each
//! node, on its turn, picks the bucket `j ∈ [t]` minimizing the number of
//! already-decided neighbors with bucket `j`, and orients the edges toward
//! those neighbors outward. Since at most `deg(v) ≤ Δ` neighbors have
//! decided, the best bucket has at most `⌊Δ/t⌋` of them, so the result is a
//! `⌊Δ/t⌋`-arbdefective `t`-coloring in `m + O(1)` rounds (paper §1.1,
//! after \[Barenboim–Elkin–Goldenberg PODC'18\]).

use local_sim::error::Result;
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::{Graph, Orientation};
use rand::rngs::StdRng;

/// Per-node input: proper color, palette size, bucket count.
#[derive(Debug, Clone)]
pub struct ArbInput {
    /// The node's proper color.
    pub color: usize,
    /// Number of proper colors `m`.
    pub num_colors: usize,
    /// Number of buckets `t`.
    pub buckets: usize,
}

/// Output: chosen bucket plus the ports oriented outward (toward
/// same-bucket neighbors that decided earlier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbOutput {
    /// The bucket (arbdefective color).
    pub bucket: usize,
    /// Ports whose edges the node orients outward.
    pub out_ports: Vec<usize>,
}

/// The sequential-by-class arbdefective coloring algorithm.
/// Message: my bucket, once decided.
#[derive(Debug)]
pub struct ArbDefective {
    color: usize,
    buckets: usize,
    round: usize,
    known: Vec<Option<usize>>, // per-port neighbor buckets
    decided: Option<ArbOutput>,
}

impl SyncAlgorithm for ArbDefective {
    type Input = ArbInput;
    type Message = Option<usize>;
    type Output = ArbOutput;

    fn init(info: &NodeInfo, input: &ArbInput, _rng: &mut StdRng) -> Self {
        ArbDefective {
            color: input.color,
            buckets: input.buckets,
            round: 0,
            known: vec![None; info.degree],
            decided: None,
        }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<Option<usize>> {
        let mine = self.decided.as_ref().map(|d| d.bucket);
        vec![mine; info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<Option<usize>>>,
        _rng: &mut StdRng,
    ) -> Status<ArbOutput> {
        if let Some(out) = &self.decided {
            // Announced my bucket this round; done.
            return Status::Done(out.clone());
        }
        for (p, msg) in incoming.into_iter().enumerate() {
            if let Some(Some(bucket)) = msg {
                self.known[p] = Some(bucket);
            }
        }
        if self.round == self.color {
            // My turn: pick the least-loaded bucket among decided neighbors.
            let mut load = vec![0usize; self.buckets];
            for b in self.known.iter().flatten() {
                load[*b] += 1;
            }
            let bucket = (0..self.buckets).min_by_key(|&j| load[j]).expect("buckets >= 1");
            let out_ports: Vec<usize> = self
                .known
                .iter()
                .enumerate()
                .filter_map(|(p, b)| (*b == Some(bucket)).then_some(p))
                .collect();
            self.decided = Some(ArbOutput { bucket, out_ports });
        }
        self.round += 1;
        Status::Continue
    }
}

/// The outcome of [`arbdefective_coloring`].
#[derive(Debug, Clone)]
pub struct ArbReport {
    /// Bucket per node (a `⌊Δ/t⌋`-arbdefective `t`-coloring).
    pub buckets: Vec<usize>,
    /// Orientation of all monochromatic edges witnessing the outdegree
    /// bound.
    pub orientation: Orientation,
    /// Rounds consumed.
    pub rounds: usize,
}

/// Computes a `⌊Δ/t⌋`-arbdefective `t`-coloring from a proper coloring.
///
/// # Errors
///
/// Requires `t ≥ 1` and a proper input coloring.
pub fn arbdefective_coloring(
    graph: &Graph,
    colors: &[usize],
    num_colors: usize,
    buckets: usize,
    seed: u64,
) -> Result<ArbReport> {
    if buckets == 0 {
        return Err(local_sim::SimError::InvalidParameter {
            message: "buckets must be >= 1".into(),
        });
    }
    local_sim::checkers::check_proper_coloring(graph, colors).map_err(|v| {
        local_sim::SimError::InvalidParameter { message: format!("input not proper: {v}") }
    })?;
    let inputs: Vec<ArbInput> =
        colors.iter().map(|&color| ArbInput { color, num_colors, buckets }).collect();
    let config = RunConfig::port_numbering(seed, num_colors + 4);
    let report = run::<ArbDefective>(graph, &inputs, &config)?;

    let bucket_of: Vec<usize> = report.outputs.iter().map(|o| o.bucket).collect();
    let mut orientation = Orientation::unoriented(graph.m());
    for v in 0..graph.n() {
        for &p in &report.outputs[v].out_ports {
            orientation.orient_out_of(graph, graph.port_target(v, p).edge, v);
        }
    }
    Ok(ArbReport { buckets: bucket_of, orientation, rounds: report.rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial;
    use local_sim::checkers::check_arbdefective_coloring;
    use local_sim::trees;

    #[test]
    fn arbdefective_bound_holds() {
        for (delta, buckets) in [(4usize, 2usize), (4, 5), (5, 3), (3, 1)] {
            let g = trees::complete_regular_tree(delta, 3).unwrap();
            let rep = linial::linial_coloring(&g, 7).unwrap();
            let arb = arbdefective_coloring(&g, &rep.colors, rep.num_colors, buckets, 0).unwrap();
            let k = delta / buckets;
            check_arbdefective_coloring(&g, &arb.buckets, &arb.orientation, k).unwrap();
            assert!(arb.buckets.iter().all(|&b| b < buckets));
        }
    }

    #[test]
    fn full_buckets_give_proper_coloring() {
        // t = Δ+1 buckets: 0-arbdefective = proper coloring.
        let g = trees::complete_regular_tree(3, 3).unwrap();
        let rep = linial::linial_coloring(&g, 1).unwrap();
        let arb = arbdefective_coloring(&g, &rep.colors, rep.num_colors, 4, 0).unwrap();
        check_arbdefective_coloring(&g, &arb.buckets, &arb.orientation, 0).unwrap();
        local_sim::checkers::check_proper_coloring(&g, &arb.buckets).unwrap();
    }

    #[test]
    fn rounds_bounded_by_num_colors() {
        let g = trees::random_tree(80, 4, 3).unwrap();
        let rep = linial::linial_coloring(&g, 3).unwrap();
        let arb = arbdefective_coloring(&g, &rep.colors, rep.num_colors, 2, 0).unwrap();
        assert!(arb.rounds <= rep.num_colors + 2);
        let k = g.max_degree() / 2;
        check_arbdefective_coloring(&g, &arb.buckets, &arb.orientation, k).unwrap();
    }

    #[test]
    fn rejects_improper_input() {
        let g = trees::path(3).unwrap();
        assert!(arbdefective_coloring(&g, &[0, 0, 1], 2, 2, 0).is_err());
    }
}
