//! Luby's randomized MIS (Luby \[SIAM J. Comput. '86\]).
//!
//! Each phase, every undecided node draws a random value and joins the set
//! if its value is strictly larger than all undecided neighbors'; neighbors
//! of joiners drop out. Terminates in `O(log n)` phases with high
//! probability. This is the randomized baseline of experiment E12 — its
//! round count is independent of Δ, unlike the deterministic sweep.

use local_sim::error::Result;
use local_sim::runner::{run, NodeInfo, RunConfig, Status, SyncAlgorithm};
use local_sim::Graph;
use rand::rngs::StdRng;
use rand::Rng;

/// Messages of the two-round phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyMsg {
    /// Phase first half: my lottery value (undecided nodes only).
    Value(u64),
    /// Phase second half: whether I joined the set this phase.
    Joined(bool),
}

impl local_sim::congest::MessageSize for LubyMsg {
    fn size_bits(&self) -> usize {
        1 + match self {
            LubyMsg::Value(_) => 64,
            LubyMsg::Joined(_) => 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LubyState {
    Undecided,
    PendingJoin,
}

/// Per-node state of Luby's algorithm.
#[derive(Debug)]
pub struct Luby {
    state: LubyState,
    value: u64,
    half: bool, // false: value half, true: join half
}

impl SyncAlgorithm for Luby {
    type Input = ();
    type Message = LubyMsg;
    type Output = bool;

    fn init(_info: &NodeInfo, _input: &(), rng: &mut StdRng) -> Self {
        Luby { state: LubyState::Undecided, value: rng.gen(), half: false }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<LubyMsg> {
        let msg = if self.half {
            LubyMsg::Joined(self.state == LubyState::PendingJoin)
        } else {
            LubyMsg::Value(self.value)
        };
        vec![msg; info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<LubyMsg>>,
        rng: &mut StdRng,
    ) -> Status<bool> {
        if !self.half {
            // Value half: am I the strict maximum among undecided neighbors?
            let max_neighbor = incoming
                .iter()
                .filter_map(|m| match m {
                    Some(LubyMsg::Value(v)) => Some(*v),
                    _ => None,
                })
                .max();
            if max_neighbor.is_none_or(|mv| self.value > mv) {
                self.state = LubyState::PendingJoin;
            }
            self.half = true;
            Status::Continue
        } else {
            // Join half.
            if self.state == LubyState::PendingJoin {
                return Status::Done(true);
            }
            let neighbor_joined = incoming.iter().any(|m| matches!(m, Some(LubyMsg::Joined(true))));
            if neighbor_joined {
                return Status::Done(false);
            }
            self.value = rng.gen();
            self.half = false;
            Status::Continue
        }
    }
}

/// The outcome of a Luby run.
#[derive(Debug, Clone)]
pub struct LubyReport {
    /// MIS membership per node.
    pub in_set: Vec<bool>,
    /// Total communication rounds (2 per phase).
    pub rounds: usize,
}

/// Runs Luby's MIS.
///
/// # Errors
///
/// Propagates simulation errors (including the round budget, set to
/// `64·(log₂ n + 2)` — astronomically conservative for Luby).
pub fn luby_mis(graph: &Graph, seed: u64) -> Result<LubyReport> {
    let budget = 64 * ((graph.n() as f64).log2().ceil() as usize + 2);
    let config = RunConfig::port_numbering(seed, budget);
    let inputs = vec![(); graph.n()];
    let report = run::<Luby>(graph, &inputs, &config)?;
    Ok(LubyReport { in_set: report.outputs, rounds: report.rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers::check_mis;
    use local_sim::trees;

    #[test]
    fn luby_valid_on_trees() {
        for seed in 0..5 {
            let g = trees::complete_regular_tree(3, 4).unwrap();
            let rep = luby_mis(&g, seed).unwrap();
            check_mis(&g, &rep.in_set).unwrap();
        }
    }

    #[test]
    fn luby_valid_on_random_trees() {
        for seed in 0..5 {
            let g = trees::random_tree(120, 6, seed).unwrap();
            let rep = luby_mis(&g, seed * 7 + 1).unwrap();
            check_mis(&g, &rep.in_set).unwrap();
        }
    }

    #[test]
    fn luby_rounds_logarithmic() {
        let g = trees::random_tree(300, 5, 2).unwrap();
        let rep = luby_mis(&g, 3).unwrap();
        // 2 rounds per phase; expect O(log n) phases. 60 is a loose cap.
        assert!(rep.rounds <= 60, "rounds = {}", rep.rounds);
    }

    #[test]
    fn luby_on_star_and_path() {
        let star = trees::star(10).unwrap();
        let rep = luby_mis(&star, 1).unwrap();
        check_mis(&star, &rep.in_set).unwrap();
        let path = trees::path(2).unwrap();
        let rep = luby_mis(&path, 1).unwrap();
        check_mis(&path, &rep.in_set).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let g = trees::random_tree(50, 4, 4).unwrap();
        let a = luby_mis(&g, 9).unwrap();
        let b = luby_mis(&g, 9).unwrap();
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(a.rounds, b.rounds);
    }
}
