//! Centralized baselines for differential testing.
//!
//! These are *not* distributed algorithms; they provide ground-truth
//! solutions (greedy MIS, greedy dominating sets, BFS orientations) that
//! the test suites compare distributed outputs against, and that the
//! benches use to normalize solution quality.

use local_sim::{Graph, Orientation};

/// Greedy MIS in the given node order (defaults to id order).
pub fn greedy_mis(graph: &Graph, order: Option<&[usize]>) -> Vec<bool> {
    let default: Vec<usize> = (0..graph.n()).collect();
    let order = order.unwrap_or(&default);
    let mut in_set = vec![false; graph.n()];
    let mut blocked = vec![false; graph.n()];
    for &v in order {
        if !blocked[v] {
            in_set[v] = true;
            blocked[v] = true;
            for u in graph.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    in_set
}

/// Greedy dominating set: add each node not yet dominated (in order).
/// The result is independent, hence also an MIS.
pub fn greedy_dominating_set(graph: &Graph) -> Vec<bool> {
    let mut in_set = vec![false; graph.n()];
    for v in 0..graph.n() {
        let dominated = in_set[v] || graph.neighbors(v).any(|u| in_set[u]);
        if !dominated {
            in_set[v] = true;
        }
    }
    in_set
}

/// The trivial k-outdegree dominating set "all nodes" on a tree, with every
/// non-root edge oriented toward the parent (outdegree ≤ 1).
///
/// # Panics
///
/// Panics if the graph is not a tree.
pub fn all_nodes_kods(graph: &Graph) -> (Vec<bool>, Orientation) {
    let (_, parent) = graph.tree_order(0).expect("tree required");
    let mut orientation = Orientation::unoriented(graph.m());
    for (v, &par) in parent.iter().enumerate() {
        if par != usize::MAX {
            let e = graph.ports(v).iter().find(|t| t.node == par).expect("parent adjacency").edge;
            orientation.orient_out_of(graph, e, v);
        }
    }
    (vec![true; graph.n()], orientation)
}

/// Size of a set given as flags.
pub fn set_size(in_set: &[bool]) -> usize {
    in_set.iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::checkers;
    use local_sim::trees;

    #[test]
    fn greedy_mis_valid() {
        for seed in 0..3 {
            let g = trees::random_tree(50, 4, seed).unwrap();
            let mis = greedy_mis(&g, None);
            checkers::check_mis(&g, &mis).unwrap();
        }
    }

    #[test]
    fn greedy_mis_respects_order() {
        let g = trees::path(3).unwrap();
        let a = greedy_mis(&g, Some(&[1, 0, 2]));
        assert_eq!(a, vec![false, true, false]);
        let b = greedy_mis(&g, Some(&[0, 1, 2]));
        assert_eq!(b, vec![true, false, true]);
    }

    #[test]
    fn greedy_dominating_is_mis() {
        let g = trees::random_tree(50, 5, 1).unwrap();
        let ds = greedy_dominating_set(&g);
        checkers::check_mis(&g, &ds).unwrap();
    }

    #[test]
    fn all_nodes_kods_valid() {
        let g = trees::complete_regular_tree(4, 3).unwrap();
        let (in_set, orientation) = all_nodes_kods(&g);
        checkers::check_k_outdegree_domset(&g, &in_set, &orientation, 1).unwrap();
        assert_eq!(set_size(&in_set), g.n());
    }
}
