//! `relim` — a command-line round eliminator.
//!
//! ```text
//! relim [--threads T] step        --node "M M M" --edge "M [P O];O O" [--steps N] [--condense]
//! relim [--threads T] diagram     --node ... --edge ... [--side node|edge] [--dot]
//! relim [--threads T] zeroround   --node ... --edge ...
//! relim [--threads T] fixed-point --node ... --edge ... [--max-steps N] [--label-limit L]
//! relim [--threads T] family      --delta D --a A --x X [--plus]
//! relim [--threads T] lemma6      --delta D --a A --x X
//! relim [--threads T] lemma8      --delta D --a A --x X
//! relim [--threads T] sweep       --delta D [--lemma 6|8]
//! relim [--threads T] chain       --delta D [--k K] [--exact]
//! relim [--threads T] bounds      --n N --delta D [--k K]
//! relim [--threads T] serve       [--addr A] [--store DIR] [--store-capacity N] [--aging-limit N]
//!                                 [--peers host:port,…] [--peer-timeout-ms N] [--trace]
//! relim submit      [--addr A] --op OP <op options> [--priority interactive|bulk] [--trace]
//! relim status      [--addr A]
//! relim ping        [--addr A]
//! relim metrics     [--addr A]
//! relim timeline    [--addr A] [--json]
//! relim trace       --trace-id T [--addr A] [--peers host:port,…] [--format tree|chrome]
//! relim viz         (--digest D [--addr A | --store DIR] | --op OP <op options>) [--full] [--json]
//! relim shutdown    [--addr A]
//! relim help
//! ```
//!
//! Constraint strings use the engine's text format; `;` or a literal `\n`
//! separates configuration lines.
//!
//! The `autolb`, `autoub`, `fixed-point`, `zeroround` and `sweep`
//! subcommands render through `relim_service::ops` — the same functions
//! the `relim serve` daemon uses — so a served result is byte-identical
//! to the local run of the same query.
//!
//! `--threads T` is a **global** flag (valid before or after the
//! subcommand): one round-elimination [`Engine`] session is built from it
//! (default: available parallelism, or the `RELIM_THREADS` environment
//! variable) and flows through every subcommand, so sweeps, repeated
//! steps and bound searches within one invocation share the session's
//! worker pool and sub-multiset index cache. Setting both `--threads` and
//! `RELIM_THREADS` to different values is an error, not a silent
//! preference. Output is byte-identical at any thread count.

mod args;

use args::{constraint_text, ArgError, Args};
use lb_family::family::{self, PiParams};
use lb_family::{bounds, lemma6, lemma8, sequence};
use relim_core::diagram::StrengthOrder;
use relim_core::engine::parse_threads;
use relim_core::{condense, zeroround, Engine, Problem};
use relim_service::ops::{Criterion, OpRequest};
use relim_service::queue::Class;
use relim_service::server::{Server, ServerConfig};
use relim_service::trace;
use relim_service::Client;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(output) => {
            // Write without the println! panic-on-error: a downstream
            // `relim status | grep -q …` closes the pipe as soon as it
            // matches, and a broken pipe is a clean exit, not a crash.
            use std::io::Write;
            let stdout = std::io::stdout();
            let mut stdout = stdout.lock();
            let _ = writeln!(stdout, "{output}");
            let _ = stdout.flush();
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `relim help` for usage");
            std::process::exit(1);
        }
    }
}

/// Dispatches a full invocation and returns the text to print.
fn run(raw: Vec<String>) -> Result<String, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let command = match args.command.as_deref() {
        Some("help") | None => return Ok(usage()),
        Some(command) => command,
    };
    // The service subcommands do not compute in this process: the
    // clients talk to a daemon, and `serve` hands the (resolved) thread
    // count to the daemon's own engine — so no CLI engine session is
    // built for any of them.
    match command {
        "serve" => return cmd_serve(&args),
        "submit" => return cmd_submit(&args),
        "status" => return cmd_status(&args),
        "ping" => return cmd_ping(&args),
        "metrics" => return cmd_metrics(&args),
        "timeline" => return cmd_timeline(&args),
        "trace" => return cmd_trace(&args),
        "shutdown" => return cmd_shutdown(&args),
        // `viz` computes locally, but with its own lineage-recording
        // session — the shared engine below stays recording-free so the
        // plain subcommands keep their zero-overhead path.
        "viz" => return cmd_viz(&args),
        _ => {}
    }
    // One session per invocation: every subcommand below shares its pool
    // handle and sub-multiset index cache.
    let engine = engine_from(&args)?;
    match command {
        "step" => cmd_step(&args, &engine),
        "bistep" => cmd_bistep(&args),
        "diagram" => cmd_diagram(&args),
        "zeroround" => cmd_zeroround(&args),
        "trivial" => cmd_trivial(&args),
        "autolb" => cmd_autolb(&args, &engine),
        "autoub" => cmd_autoub(&args, &engine),
        "fixed-point" => cmd_fixed_point(&args, &engine),
        "family" => cmd_family(&args),
        "lemma6" => cmd_lemma6(&args),
        "lemma8" => cmd_lemma8(&args, &engine),
        "sweep" => cmd_sweep(&args, &engine),
        "chain" => cmd_chain(&args, &engine),
        "bounds" => cmd_bounds(&args),
        other => Err(Box::new(ArgError(format!("unknown command `{other}`")))),
    }
}

fn usage() -> String {
    "relim — a command-line round eliminator (BBKO PODC 2021 reproduction)

USAGE: relim [--threads T] <command> ...

  relim step        --node <N> --edge <E> [--steps N] [--condense]
  relim bistep      --black <B> --white <W> [--steps N]
  relim diagram     --node <N> --edge <E> [--side node|edge] [--dot]
  relim zeroround   --node <N> --edge <E>
  relim trivial     --node <N> --edge <E> [--coloring C]
  relim autolb      --node <N> --edge <E> [--max-steps N] [--labels L] [--criterion gadget|universal]
  relim autoub      --node <N> --edge <E> [--max-steps N] [--labels L] [--coloring C]
  relim fixed-point --node <N> --edge <E> [--max-steps N] [--label-limit L]
  relim family      --delta D --a A --x X [--plus]
  relim lemma6      --delta D --a A --x X
  relim lemma8      --delta D --a A --x X
  relim sweep       --delta D [--lemma 6|8]
  relim chain       --delta D [--k K] [--exact]
  relim bounds      --n N --delta D [--k K]
  relim serve       [--addr A] [--store DIR] [--store-capacity N]
                    [--store-budget-bytes N] [--aging-limit N] [--executors N]
                    [--peers host:port,…] [--peer-timeout-ms N] [--trace]
  relim submit      [--addr A] --op autolb|autoub|iterate|sweep|zero-round
                    <op options> [--priority interactive|bulk] [--trace]
  relim status      [--addr A]
  relim ping        [--addr A]
  relim metrics     [--addr A]
  relim timeline    [--addr A] [--json]
  relim trace       --trace-id T [--addr A] [--peers host:port,…]
                    [--format tree|chrome]
  relim viz         --digest D [--addr A | --store DIR] [--full] [--json]
  relim viz         --op autolb|autoub|iterate|zero-round <op options> [--full] [--json]
  relim shutdown    [--addr A]

Constraints use the text format: one condensed configuration per line
(`;` or literal \\n separate lines), e.g. --node 'M M M;P O O'
--edge 'M [P O];O O'. `--threads T` is a global flag (before or after
the subcommand; also: RELIM_THREADS — setting both to different values
is an error): one engine session sized from it runs the whole
invocation, and output is byte-identical at any thread count.

`serve` runs the relim-service daemon (JSON-lines over TCP, default
addr 127.0.0.1:7341): jobs are scheduled interactive-before-bulk with
aging and drained by a pool of executor threads (--executors N or
RELIM_EXECUTORS, default min(4, cores); identical in-flight queries
coalesce onto one computation), results are memoized in a
content-addressed store (persistent when --store DIR is given —
restarts serve cached certificates instantly; --store-budget-bytes N
bounds the disk layer with oldest-first GC), and every served result is
byte-identical to the same query run locally at any executor count.
With --peers host:port,… the daemon joins a fleet: a deterministic
consistent-hash ring over the peer addresses plus its own partitions
the digest space, and a cold query owned by a remote peer is fetched
from it (verified against the full canonical key) before computing
locally. Every member lists the other members and binds the exact
address its peers dial. Peer calls run under --peer-timeout-ms N
(default 2000) with bounded retries and a circuit breaker; an
unreachable owner degrades to local compute — same bytes, counted.

`submit` sends one query and prints the result on stdout
(cached/digest metadata goes to stderr; with --trace a fresh trace id
is minted, propagated, and echoed on stderr — stdout bytes never
change); `status` prints the daemon counters; `ping` probes liveness
(uptime, store entry count, timeline/span window sizes and drop
counts — the same exchange the fleet breaker uses); `metrics` prints
the counters as Prometheus text exposition, including per-op latency
histograms; `timeline` prints the scheduler event log as a text gantt
(--json for the raw events); `shutdown` asks the daemon to drain its
queue and exit.

`trace` collects the spans of one trace id from a daemon (--addr) and
any number of its peers (--peers host:port,…), merges them, and
renders a cross-daemon tree — or, with --format chrome, a Chrome
trace-event JSON loadable in Perfetto / chrome://tracing. Daemons
record spans only when started with `serve --trace`; a daemon that
records none, or that dropped spans from its bounded window, is
called out on stderr so an incomplete merge is never mistaken for a
complete one.

`viz` renders the round-elimination derivation DAG behind one
certificate as Graphviz DOT: address a stored result by --digest D
(fetched from a daemon, or with --store DIR straight off a store
directory, no daemon needed) or give the query inline with --op. The
op is re-executed locally on a lineage-recording session; straight
R/R̄ chains are contracted unless --full is given, and --json emits
the lineage JSON instead of DOT."
        .to_owned()
}

/// The engine session for this invocation: one per run, sized from the
/// global `--threads N` flag or the `RELIM_THREADS` environment variable.
/// A malformed `RELIM_THREADS` (zero, empty, non-numeric) is a reported
/// error, not a silent fallback — and setting *both* the flag and the
/// variable to different values is rejected instead of silently
/// preferring the flag.
fn engine_from(args: &Args) -> Result<Engine, Box<dyn std::error::Error>> {
    Ok(Engine::builder().threads(threads_from(args)?).build())
}

/// The resolved pool width of this invocation (`0` = available
/// parallelism) without building an engine — `serve` passes it to the
/// daemon's own session instead of constructing an idle CLI pool.
fn threads_from(args: &Args) -> Result<usize, Box<dyn std::error::Error>> {
    let env = match std::env::var("RELIM_THREADS") {
        Ok(raw) => Some(raw),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => Some(raw.to_string_lossy().into_owned()),
    };
    Ok(resolve_threads(args.get_u64_opt("threads")?, env.as_deref())?)
}

/// The pure flag-vs-environment resolution behind [`engine_from`]:
/// returns the width to build the session with (`0` = available
/// parallelism), or the error describing a malformed or conflicting
/// configuration.
fn resolve_threads(flag: Option<u64>, env: Option<&str>) -> Result<usize, ArgError> {
    match (flag, env) {
        (None, None) => Ok(0),
        (None, Some(raw)) => parse_threads(raw).map_err(|e| ArgError(e.to_string())),
        (Some(n), None) => Ok(n as usize),
        (Some(n), Some(raw)) => {
            let env_threads = parse_threads(raw).map_err(|e| {
                ArgError(format!("--threads {n} conflicts with the environment: {e}"))
            })?;
            if env_threads as u64 != n {
                return Err(ArgError(format!(
                    "conflicting thread counts: --threads {n} vs RELIM_THREADS={env_threads}; \
                     unset one of them (they must agree when both are given)"
                )));
            }
            Ok(n as usize)
        }
    }
}

/// The executor-pool width of a `serve` invocation (`0` = the daemon
/// default, `min(4, cores)`) from the `--executors N` flag or the
/// `RELIM_EXECUTORS` environment variable, with the same loud-rejection
/// rules as [`resolve_threads`].
fn executors_from(args: &Args) -> Result<usize, Box<dyn std::error::Error>> {
    let env = match std::env::var("RELIM_EXECUTORS") {
        Ok(raw) => Some(raw),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => Some(raw.to_string_lossy().into_owned()),
    };
    Ok(resolve_executors(args.get_u64_opt("executors")?, env.as_deref())?)
}

/// The pure flag-vs-environment resolution behind [`executors_from`],
/// mirroring [`resolve_threads`]: a malformed `RELIM_EXECUTORS` (zero,
/// empty, non-numeric) is a reported error, and setting both the flag
/// and the variable to different values is rejected.
fn resolve_executors(flag: Option<u64>, env: Option<&str>) -> Result<usize, ArgError> {
    fn parse_env(raw: &str) -> Result<usize, ArgError> {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ArgError(format!(
                "RELIM_EXECUTORS must be a positive integer (e.g. 4), got `{raw}`; \
                 unset it to use the default (min(4, cores))"
            ))),
        }
    }
    match (flag, env) {
        (None, None) => Ok(0),
        (None, Some(raw)) => parse_env(raw),
        (Some(n), None) => Ok(n as usize),
        (Some(n), Some(raw)) => {
            let env_executors = parse_env(raw).map_err(|e| {
                ArgError(format!("--executors {n} conflicts with the environment: {e}"))
            })?;
            if env_executors as u64 != n {
                return Err(ArgError(format!(
                    "conflicting executor counts: --executors {n} vs RELIM_EXECUTORS={env_executors}; \
                     unset one of them (they must agree when both are given)"
                )));
            }
            Ok(n as usize)
        }
    }
}

fn load_problem(args: &Args) -> Result<Problem, Box<dyn std::error::Error>> {
    let node = constraint_text(args.require("node")?);
    let edge = constraint_text(args.require("edge")?);
    Ok(Problem::from_text(&node, &edge)?)
}

fn render_problem(p: &Problem, condensed: bool) -> String {
    if condensed {
        format!(
            "N (degree {}):\n{}\n\nE:\n{}",
            p.delta(),
            condense::render_condensed(p.node(), p.alphabet()),
            condense::render_condensed(p.edge(), p.alphabet()),
        )
    } else {
        p.render()
    }
}

fn cmd_step(args: &Args, engine: &Engine) -> Result<String, Box<dyn std::error::Error>> {
    let p = load_problem(args)?;
    let steps = args.get_u64("steps", 1)? as usize;
    let condensed = args.has_flag("condense");
    let mut out = String::new();
    let mut current = p;
    for i in 1..=steps {
        let (r, rr) = engine.rr_step(&current)?;
        out.push_str(&format!("=== step {i}: R(Π) ===\n"));
        out.push_str("labels: ");
        let names: Vec<String> =
            r.provenance.iter().map(|s| s.display(current.alphabet())).collect();
        out.push_str(&names.join(" "));
        out.push_str(&format!("\n\n=== step {i}: R̄(R(Π)) ===\n"));
        let (reduced, _) = rr.problem.drop_unused_labels();
        out.push_str(&render_problem(&reduced, condensed));
        out.push_str("\n\n");
        current = reduced;
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_bistep(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    use relim_core::biregular::{self, BiregularProblem};
    let black = constraint_text(args.require("black")?);
    let white = constraint_text(args.require("white")?);
    let p = BiregularProblem::from_text(&black, &white)?;
    let steps = args.get_u64("steps", 1)? as usize;
    let mut out = format!("(δ_B, δ_W) = {:?}\n\n=== input ===\n{}\n\n", p.degrees(), p.render());
    let mut current = p;
    for i in 1..=steps {
        let (_, b) = biregular::full_step(&current)?;
        out.push_str(&format!("=== after full step {i} ===\n{}\n", b.problem.render()));
        out.push_str(&format!(
            "trivial for black nodes: {}\n\n",
            biregular::trivial_black(&b.problem).is_some()
        ));
        current = b.problem;
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_diagram(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let p = load_problem(args)?;
    let side = args.get("side").unwrap_or("edge");
    let constraint = match side {
        "node" => p.node(),
        "edge" => p.edge(),
        other => return Err(Box::new(ArgError(format!("--side must be node|edge, got {other}")))),
    };
    let order = StrengthOrder::of_constraint(constraint, p.alphabet().len());
    if args.has_flag("dot") {
        return Ok(order.to_dot(p.alphabet(), &format!("{side} diagram")));
    }
    let mut out = format!("{side} diagram (a -> b means b is stronger):\n");
    for (a, b) in order.hasse_edges() {
        out.push_str(&format!("  {} -> {}\n", p.alphabet().name(a), p.alphabet().name(b)));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_zeroround(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    // Rendered by the serving layer's canonical op, so `relim zeroround`
    // and a served `zero-round` query return the same bytes.
    let op = OpRequest::ZeroRound {
        node: constraint_text(args.require("node")?),
        edge: constraint_text(args.require("edge")?),
    };
    Ok(op.execute(&Engine::sequential())?)
}

fn cmd_trivial(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let p = load_problem(args)?;
    let mut out = String::new();
    match zeroround::universal_witness(&p) {
        Some(w) => out.push_str(&format!(
            "bare PN model (trivial problem): SOLVABLE, witness {}\n",
            w.display(p.alphabet())
        )),
        None => out.push_str("bare PN model (trivial problem): not solvable\n"),
    }
    match zeroround::analyze(&p).witness {
        Some(w) => out.push_str(&format!(
            "given a Δ-edge coloring (gadget criterion): SOLVABLE, witness {}\n",
            w.display(p.alphabet())
        )),
        None => out.push_str("given a Δ-edge coloring (gadget criterion): not solvable\n"),
    }
    if let Some(c) = args.get_u64_opt("coloring")? {
        let c = c as usize;
        match zeroround::coloring_witness(&p, c) {
            Some(ws) => {
                out.push_str(&format!("given a proper {c}-vertex coloring: SOLVABLE\n"));
                for (i, w) in ws.iter().enumerate() {
                    out.push_str(&format!("  color {} -> {}\n", i + 1, w.display(p.alphabet())));
                }
            }
            None => out.push_str(&format!("given a proper {c}-vertex coloring: not solvable\n")),
        }
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_autolb(args: &Args, engine: &Engine) -> Result<String, Box<dyn std::error::Error>> {
    let op = OpRequest::AutoLb {
        node: constraint_text(args.require("node")?),
        edge: constraint_text(args.require("edge")?),
        max_steps: args.get_u64("max-steps", 6)? as usize,
        labels: args.get_u64("labels", 6)? as usize,
        criterion: Criterion::parse(args.get("criterion").unwrap_or("gadget"))
            .map_err(|e| ArgError(format!("--{e}")))?,
    };
    Ok(op.execute(engine)?)
}

fn cmd_autoub(args: &Args, engine: &Engine) -> Result<String, Box<dyn std::error::Error>> {
    let op = OpRequest::AutoUb {
        node: constraint_text(args.require("node")?),
        edge: constraint_text(args.require("edge")?),
        max_steps: args.get_u64("max-steps", 6)? as usize,
        labels: args.get_u64("labels", 10)? as usize,
        coloring: args.get_u64_opt("coloring")?.map(|c| c as usize),
    };
    Ok(op.execute(engine)?)
}

fn cmd_fixed_point(args: &Args, engine: &Engine) -> Result<String, Box<dyn std::error::Error>> {
    let op = OpRequest::Iterate {
        node: constraint_text(args.require("node")?),
        edge: constraint_text(args.require("edge")?),
        max_steps: args.get_u64("max-steps", 5)? as usize,
        label_limit: args.get_u64("label-limit", 16)? as usize,
    };
    Ok(op.execute(engine)?)
}

fn params_from(args: &Args) -> Result<PiParams, Box<dyn std::error::Error>> {
    Ok(PiParams {
        delta: args.require_u64("delta")? as u32,
        a: args.require_u64("a")? as u32,
        x: args.require_u64("x")? as u32,
    })
}

fn cmd_family(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let params = params_from(args)?;
    let p = if args.has_flag("plus") { family::pi_plus(&params)? } else { family::pi(&params)? };
    Ok(render_problem(&p, true))
}

fn cmd_lemma6(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let params = params_from(args)?;
    let report = lemma6::verify(&params)?;
    Ok(format!(
        "Lemma 6 at Δ={}, a={}, x={}:\n  provenance: {}\n  node constraint: {}\n  edge constraint: {}\n  Figure 5: {}\n  => {}",
        params.delta,
        params.a,
        params.x,
        report.provenance_matches,
        report.node_matches,
        report.edge_matches,
        report.figure5_matches,
        if report.matches_paper() { "VERIFIED" } else { "MISMATCH" }
    ))
}

fn cmd_lemma8(args: &Args, engine: &Engine) -> Result<String, Box<dyn std::error::Error>> {
    let params = params_from(args)?;
    let mach = lemma8::Lemma8Machinery::compute(&params, engine)?;
    let report = mach.verify();
    Ok(format!(
        "Lemma 8 at Δ={}, a={}, x={}:\n  |Σ''| = {}, |N''| = {}\n  all configurations relax to Π_rel: {}\n  Π_rel = Π⁺: {}\n  => {}",
        params.delta,
        params.a,
        params.x,
        report.rr_label_count,
        report.rr_node_config_count,
        report.all_node_configs_relax,
        report.pi_rel_equals_pi_plus,
        if report.matches_paper() { "VERIFIED" } else { "MISMATCH" }
    ))
}

fn cmd_sweep(args: &Args, engine: &Engine) -> Result<String, Box<dyn std::error::Error>> {
    // The canonical (service-shared) sweep rendering deliberately omits
    // the thread count: served bytes must not depend on the daemon's
    // pool width, and the local output matches the served output.
    let op =
        OpRequest::Sweep { delta: require_u32(args, "delta")?, lemma: get_u32(args, "lemma", 8)? };
    Ok(op.execute(engine)?)
}

/// A required option that must fit in `u32` (oversized values error
/// instead of wrapping into some accidentally-valid parameter).
fn require_u32(args: &Args, key: &str) -> Result<u32, ArgError> {
    u32::try_from(args.require_u64(key)?).map_err(|_| ArgError(format!("--{key} is out of range")))
}

/// A defaulted option that must fit in `u32`.
fn get_u32(args: &Args, key: &str, default: u64) -> Result<u32, ArgError> {
    u32::try_from(args.get_u64(key, default)?)
        .map_err(|_| ArgError(format!("--{key} is out of range")))
}

fn cmd_chain(args: &Args, engine: &Engine) -> Result<String, Box<dyn std::error::Error>> {
    let delta = args.require_u64("delta")? as u32;
    let k = args.get_u64("k", 0)? as u32;
    let chain = if args.has_flag("exact") {
        sequence::exact_chain(delta, k)
    } else {
        sequence::paper_chain(delta, k)
    };
    let mut out = format!(
        "lower-bound chain for Δ={delta}, k={k} ({}):\n",
        if args.has_flag("exact") { "exact recurrence" } else { "paper schedule" }
    );
    for (i, s) in chain.steps.iter().enumerate() {
        out.push_str(&format!("  Π_{i} = Π_Δ({}, {})\n", s.a, s.x));
    }
    out.push_str(&format!(
        "length t = {} transitions  (t/log₂Δ = {:.3}); PN-model lower bound ≥ {} rounds",
        chain.length(),
        chain.slope(),
        chain.pn_round_lower_bound()
    ));
    if args.has_flag("certify") {
        let mut cert = lb_family::certificate::ChainCertificate::build(delta, k)?;
        let ok = cert.verify(Some(engine))?;
        out.push_str("\n\n");
        out.push_str(&cert.render());
        out.push_str(&format!("\ncertificate verifies: {ok}"));
    }
    Ok(out)
}

fn cmd_bounds(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let n = args.require_u64("n")? as f64;
    let delta = args.require_u64("delta")? as u32;
    let k = args.get_u64("k", 0)? as u32;
    Ok(format!(
        "Theorem 1 at n={n:.0}, Δ={delta}, k={k}:\n  t(Δ,k) = {} (paper schedule), {} (exact)\n  deterministic LOCAL bound: min{{t, log_Δ n}} = {:.3}\n  randomized LOCAL bound: min{{t, log_Δ log n}} = {:.3}",
        bounds::pn_lower_bound(delta, k),
        bounds::pn_lower_bound_exact(delta, k),
        bounds::theorem1_det(n, delta, k),
        bounds::theorem1_rand(n, delta, k),
    ))
}

/// The default daemon address of `serve` / `submit` / `status` /
/// `shutdown`.
const DEFAULT_ADDR: &str = "127.0.0.1:7341";

/// Parses a `--peers` list: comma-separated `host:port` addresses,
/// blanks tolerated, duplicates rejected loudly (a duplicated peer is
/// always a configuration typo — the ring would silently dedup it, but
/// the operator meant something else).
fn peers_from(args: &Args) -> Result<Vec<String>, ArgError> {
    let Some(raw) = args.get("peers") else { return Ok(Vec::new()) };
    let mut peers = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if !part.contains(':') {
            return Err(ArgError(format!(
                "--peers entries must be host:port addresses, got `{part}`"
            )));
        }
        if peers.iter().any(|p| p == part) {
            return Err(ArgError(format!("--peers lists `{part}` twice")));
        }
        peers.push(part.to_owned());
    }
    Ok(peers)
}

fn cmd_serve(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let addr = args.get("addr").unwrap_or(DEFAULT_ADDR);
    let threads = threads_from(args)?;
    let executors = executors_from(args)?;
    let config = ServerConfig {
        threads,
        executors,
        store_dir: args.get("store").map(std::path::PathBuf::from),
        store_capacity: args.get_u64("store-capacity", 1024)? as usize,
        store_budget_bytes: args.get_u64_opt("store-budget-bytes")?,
        aging_limit: get_u32(
            args,
            "aging-limit",
            u64::from(relim_service::queue::DEFAULT_AGING_LIMIT),
        )?,
        peers: peers_from(args)?,
        peer_timeout_ms: args
            .get_u64("peer-timeout-ms", relim_service::server::DEFAULT_PEER_TIMEOUT_MS)?,
        trace: args.has_flag("trace"),
    };
    let store_desc = match &config.store_dir {
        Some(dir) => match config.store_budget_bytes {
            Some(budget) => format!("persistent at {} (budget {budget} bytes)", dir.display()),
            None => format!("persistent at {}", dir.display()),
        },
        None => "in-memory".to_owned(),
    };
    let fleet_desc = if config.peers.is_empty() {
        String::new()
    } else {
        format!(", fleet peers: {}", config.peers.join(" "))
    };
    let trace_desc = if config.trace { ", tracing on" } else { "" };
    let handle = Server::spawn(addr, config)?;
    // Announce readiness immediately (scripts poll `relim status`, but a
    // human watching the terminal wants the bound address).
    println!(
        "relim-service listening on {} (store: {store_desc}, engine threads: {}, \
         executors: {}{fleet_desc}{trace_desc})",
        handle.local_addr(),
        if threads == 0 { Engine::available_parallelism() } else { threads },
        relim_service::server::resolve_executors(executors),
    );
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let counters = handle.join_and_report();
    Ok(format!(
        "relim-service shut down gracefully; final counters:\n{}",
        counters.render().trim_end()
    ))
}

fn cmd_submit(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let client = Client::new(args.get("addr").unwrap_or(DEFAULT_ADDR));
    let obj = op_from_args(args)?;
    let class = match args.get("priority") {
        None => None,
        Some(p) => Some(Class::parse(p).map_err(ArgError)?),
    };
    // `--trace` mints a fresh trace id at this ingress and propagates it
    // with the request; the id is echoed on stderr so the operator can
    // feed it to `relim trace`. Stdout still carries exactly the result
    // bytes — tracing never changes what is served.
    let ctx = args
        .has_flag("trace")
        .then(|| trace::TraceContext { trace_id: trace::mint_trace_id(), parent: None });
    let reply = client.submit_traced(&obj, class, ctx.as_ref())?;
    // Metadata on stderr so stdout carries exactly the result bytes —
    // scripts can diff two submissions directly.
    match &ctx {
        Some(ctx) => eprintln!(
            "cached={} digest={} trace={}",
            reply.cached,
            reply.digest,
            trace::render_id(ctx.trace_id)
        ),
        None => eprintln!("cached={} digest={}", reply.cached, reply.digest),
    }
    Ok(reply.result)
}

/// Builds the operation of a `submit` invocation from `--op` plus the
/// same option names the local subcommands use.
fn op_from_args(args: &Args) -> Result<OpRequest, Box<dyn std::error::Error>> {
    let op = args.require("op")?;
    let node = || args.require("node").map(constraint_text);
    let edge = || args.require("edge").map(constraint_text);
    let built = match op {
        "autolb" => OpRequest::AutoLb {
            node: node()?,
            edge: edge()?,
            max_steps: args.get_u64("max-steps", 6)? as usize,
            labels: args.get_u64("labels", 6)? as usize,
            criterion: Criterion::parse(args.get("criterion").unwrap_or("gadget"))
                .map_err(|e| ArgError(format!("--{e}")))?,
        },
        "autoub" => OpRequest::AutoUb {
            node: node()?,
            edge: edge()?,
            max_steps: args.get_u64("max-steps", 6)? as usize,
            labels: args.get_u64("labels", 10)? as usize,
            coloring: args.get_u64_opt("coloring")?.map(|c| c as usize),
        },
        "iterate" | "fixed-point" => OpRequest::Iterate {
            node: node()?,
            edge: edge()?,
            max_steps: args.get_u64("max-steps", 5)? as usize,
            label_limit: args.get_u64("label-limit", 16)? as usize,
        },
        "sweep" => OpRequest::Sweep {
            delta: require_u32(args, "delta")?,
            lemma: get_u32(args, "lemma", 8)?,
        },
        "zero-round" | "zeroround" => OpRequest::ZeroRound { node: node()?, edge: edge()? },
        other => {
            return Err(Box::new(ArgError(format!(
                "--op must be autolb|autoub|iterate|sweep|zero-round, got `{other}`"
            ))))
        }
    };
    built.validate()?;
    Ok(built)
}

fn cmd_status(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let client = Client::new(args.get("addr").unwrap_or(DEFAULT_ADDR));
    let counters = client.status()?;
    Ok(counters.render().trim_end().to_owned())
}

fn cmd_ping(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let addr = args.get("addr").unwrap_or(DEFAULT_ADDR).to_owned();
    // A liveness probe should answer fast or fail fast — never sit on
    // the client's bulk-job default for ten minutes.
    let client = Client::new(&*addr).with_timeout(std::time::Duration::from_secs(5));
    let info = client.ping_info()?;
    let spans = if info.span_window == 0 {
        "tracing off".to_owned()
    } else {
        format!("span window {} ({} dropped)", info.span_window, info.span_dropped)
    };
    Ok(format!(
        "pong from {addr}: uptime {} ms, {} store entries, timeline window {} ({} dropped), {spans}",
        info.uptime_ms, info.store_entries, info.timeline_window, info.timeline_dropped
    ))
}

fn cmd_metrics(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let client = Client::new(args.get("addr").unwrap_or(DEFAULT_ADDR));
    Ok(client.metrics()?.trim_end().to_owned())
}

fn cmd_timeline(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let client = Client::new(args.get("addr").unwrap_or(DEFAULT_ADDR));
    let (timeline, gantt) = client.timeline()?;
    if args.has_flag("json") {
        return Ok(timeline.render().trim_end().to_owned());
    }
    Ok(gantt.trim_end().to_owned())
}

/// Collects the spans of one trace id from a daemon plus any number of
/// its peers, merges the per-daemon dumps, and renders the cross-daemon
/// tree (default) or a Chrome trace-event JSON (`--format chrome`,
/// loadable in Perfetto / chrome://tracing).
///
/// Completeness warnings go to stderr, never into the rendering: a
/// daemon whose span window is 0 runs without `serve --trace` and can
/// contribute nothing, and a daemon that has dropped spans out of its
/// bounded window may hold only part of the trace. Either way the merge
/// still renders — but the operator is told it may be incomplete.
fn cmd_trace(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let raw_id = args.require("trace-id")?;
    let trace_id = trace::parse_id(raw_id)
        .ok_or_else(|| ArgError(format!("--trace-id must be 1..=16 hex digits, got `{raw_id}`")))?;
    let format = args.get("format").unwrap_or("tree");
    if format != "tree" && format != "chrome" {
        return Err(Box::new(ArgError(format!("--format must be tree|chrome, got `{format}`"))));
    }
    let mut addrs = vec![args.get("addr").unwrap_or(DEFAULT_ADDR).to_owned()];
    for peer in peers_from(args)? {
        if !addrs.contains(&peer) {
            addrs.push(peer);
        }
    }
    let mut dumps = Vec::new();
    for addr in &addrs {
        let client = Client::new(&**addr).with_timeout(std::time::Duration::from_secs(5));
        let dump = client.trace_dump(Some(trace_id))?;
        if dump.window == 0 {
            eprintln!(
                "warning: {addr} records no spans (started without `serve --trace`); \
                 the merged trace may be incomplete"
            );
        } else if dump.dropped > 0 {
            eprintln!(
                "warning: {addr} dropped {} span(s) out of its window of {}; \
                 the merged trace may be incomplete",
                dump.dropped, dump.window
            );
        }
        dumps.push(dump);
    }
    let rendered = match format {
        "chrome" => trace::render_chrome(&dumps),
        _ => trace::render_tree(&dumps),
    };
    Ok(rendered.trim_end().to_owned())
}

/// Renders the derivation-lineage DAG of one certificate as Graphviz
/// DOT (default), uncontracted DOT (`--full`), or lineage JSON
/// (`--json`).
///
/// The certificate comes from either place a query can live: a stored
/// entry addressed by `--digest D` (read from a daemon via `--addr`, or
/// straight off a store directory via `--store DIR` — no daemon
/// needed), or a fresh query given inline with `--op` plus the usual op
/// options. Either way the op is **re-executed locally** on a
/// lineage-recording session: stored results carry only the canonical
/// result text, so the DAG is reconstructed by replaying the exact
/// query the digest addresses (the canonical key round-trips through
/// [`OpRequest::from_canonical_key`], which rejects tampered keys).
fn cmd_viz(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let op = match args.get("digest") {
        Some(digest) => {
            let key = match args.get("store") {
                Some(dir) => {
                    relim_service::store::read_stored_entry(std::path::Path::new(dir), digest)
                        .ok_or_else(|| {
                            ArgError(format!("no stored entry for digest {digest} in {dir}"))
                        })?
                        .0
                }
                None => {
                    let client = Client::new(args.get("addr").unwrap_or(DEFAULT_ADDR));
                    client.lookup(digest)?.0
                }
            };
            OpRequest::from_canonical_key(&key)?
        }
        None => op_from_args(args)?,
    };
    if op.problem()?.is_none() {
        return Err(Box::new(ArgError(format!(
            "`{}` spans many problems and has no single derivation DAG; \
             viz one of its member queries instead",
            op.name()
        ))));
    }
    let engine = Engine::builder().threads(threads_from(args)?).record_lineage(true).build();
    op.execute(&engine)?;
    let graph = engine.lineage().expect("a record_lineage(true) session always has a graph");
    if args.has_flag("json") {
        return Ok(graph.render_json().trim_end().to_owned());
    }
    let digest = op.digest()?;
    let title = format!("{} {}", op.name(), &digest[..12]);
    Ok(graph.to_dot(&title, !args.has_flag("full")).trim_end().to_owned())
}

fn cmd_shutdown(args: &Args) -> Result<String, Box<dyn std::error::Error>> {
    let addr = args.get("addr").unwrap_or(DEFAULT_ADDR).to_owned();
    let client = Client::new(&*addr);
    client.shutdown()?;
    Ok(format!("shutdown acknowledged by {addr} (queue drains, then the daemon exits)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[&str]) -> String {
        run(words.iter().map(|s| s.to_string()).collect()).expect("command succeeds")
    }

    /// A `--threads` value that cannot conflict with the ambient
    /// `RELIM_THREADS` (the CI determinism matrix sets it for the whole
    /// test run): the environment's value when set, else `preferred`.
    fn threads_value(preferred: &str) -> String {
        std::env::var("RELIM_THREADS").unwrap_or_else(|_| preferred.to_owned())
    }

    #[test]
    fn help_by_default() {
        assert!(run_words(&[]).contains("USAGE"));
        assert!(run_words(&["help"]).contains("relim step"));
    }

    #[test]
    fn step_on_mis() {
        let out = run_words(&["step", "--node", "M M M;P O O", "--edge", "M [P O];O O"]);
        assert!(out.contains("R̄(R(Π))"));
        assert!(out.contains("labels:"));
    }

    #[test]
    fn diagram_edge_and_dot() {
        let out = run_words(&["diagram", "--node", "M M M;P O O", "--edge", "M [P O];O O"]);
        assert!(out.contains("P -> O"));
        let dot =
            run_words(&["diagram", "--node", "M M M;P O O", "--edge", "M [P O];O O", "--dot"]);
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn zeroround_mis() {
        let out = run_words(&["zeroround", "--node", "M M M;P O O", "--edge", "M [P O];O O"]);
        assert!(out.contains("false"));
        assert!(out.contains("not self-compatible"));
    }

    #[test]
    fn fixed_point_so() {
        let out = run_words(&["fixed-point", "--node", "O I I", "--edge", "[O I] I"]);
        assert!(out.contains("FixedPoint"), "{out}");
    }

    #[test]
    fn family_and_lemmas() {
        let fam = run_words(&["family", "--delta", "5", "--a", "3", "--x", "1"]);
        assert!(fam.contains("N (degree 5)"));
        let l6 = run_words(&["lemma6", "--delta", "4", "--a", "3", "--x", "1"]);
        assert!(l6.contains("VERIFIED"));
        let l8 = run_words(&["lemma8", "--delta", "3", "--a", "2", "--x", "0"]);
        assert!(l8.contains("VERIFIED"));
    }

    #[test]
    fn sweep_subcommand() {
        // Thread counts must not change the output bytes — since the
        // service-shared rendering, not even in the header (the sweep
        // runs at whatever width the ambient environment permits).
        let t = threads_value("1");
        let one = run_words(&["sweep", "--delta", "4", "--threads", &t]);
        assert!(one.contains("Lemma 8 sweep at Δ=4:"), "{one}");
        assert!(!one.contains("threads"), "{one}");
        assert!(one.contains("VERIFIED"), "{one}");
        let plain = run_words(&["sweep", "--delta", "4"]);
        assert_eq!(one, plain, "pool width must not appear in any output byte");
        let l6 = run_words(&["sweep", "--delta", "5", "--lemma", "6"]);
        assert!(l6.contains("Lemma 6 sweep"), "{l6}");
        assert!(!l6.contains("MISMATCH"), "{l6}");
        assert!(run(vec![
            "sweep".into(),
            "--delta".into(),
            "4".into(),
            "--lemma".into(),
            "7".into()
        ])
        .is_err());
    }

    #[test]
    fn step_threads_flag_is_deterministic_and_global() {
        let base = run_words(&["step", "--node", "M M M;P O O", "--edge", "M [P O];O O"]);
        let t = threads_value("3");
        // The flag is global: before the subcommand works too.
        let threaded_before =
            run_words(&["--threads", &t, "step", "--node", "M M M;P O O", "--edge", "M [P O];O O"]);
        assert_eq!(base, threaded_before);
        let threaded_after =
            run_words(&["step", "--node", "M M M;P O O", "--edge", "M [P O];O O", "--threads", &t]);
        assert_eq!(base, threaded_after);
    }

    #[test]
    fn threads_flag_and_env_must_agree() {
        // Pure resolution: unset env falls back to the flag / available
        // parallelism; agreeing values pass; disagreeing or malformed
        // combinations are loud errors, never a silent preference.
        assert_eq!(resolve_threads(None, None).unwrap(), 0);
        assert_eq!(resolve_threads(Some(3), None).unwrap(), 3);
        assert_eq!(resolve_threads(None, Some("4")).unwrap(), 4);
        assert_eq!(resolve_threads(Some(4), Some("4")).unwrap(), 4);
        let conflict = resolve_threads(Some(4), Some("2")).unwrap_err();
        assert!(conflict.to_string().contains("conflicting thread counts"), "{conflict}");
        assert!(conflict.to_string().contains("unset one"), "{conflict}");
        let bad_env = resolve_threads(Some(4), Some("zero")).unwrap_err();
        assert!(bad_env.to_string().contains("conflicts with the environment"), "{bad_env}");
        let bad_env_alone = resolve_threads(None, Some("0")).unwrap_err();
        assert!(bad_env_alone.to_string().contains("positive integer"), "{bad_env_alone}");
    }

    #[test]
    fn executor_resolution_mirrors_the_thread_rules() {
        assert_eq!(resolve_executors(None, None).unwrap(), 0);
        assert_eq!(resolve_executors(Some(4), None).unwrap(), 4);
        assert_eq!(resolve_executors(None, Some("4")).unwrap(), 4);
        assert_eq!(resolve_executors(Some(2), Some("2")).unwrap(), 2);
        let conflict = resolve_executors(Some(4), Some("2")).unwrap_err();
        assert!(conflict.to_string().contains("conflicting executor counts"), "{conflict}");
        let bad_env = resolve_executors(None, Some("0")).unwrap_err();
        assert!(bad_env.to_string().contains("RELIM_EXECUTORS"), "{bad_env}");
        let bad_combo = resolve_executors(Some(4), Some("none")).unwrap_err();
        assert!(bad_combo.to_string().contains("conflicts with the environment"), "{bad_combo}");
    }

    #[test]
    fn chain_and_bounds() {
        let chain = run_words(&["chain", "--delta", "4096"]);
        assert!(chain.contains("length t = 3"), "{chain}");
        let exact = run_words(&["chain", "--delta", "4096", "--exact"]);
        assert!(exact.contains("exact recurrence"));
        let bounds = run_words(&["bounds", "--n", "1000000000", "--delta", "4096"]);
        assert!(bounds.contains("Theorem 1"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(vec!["step".into()]).is_err());
        assert!(run(vec!["nonsense".into()]).is_err());
        assert!(run(vec!["chain".into()]).is_err()); // missing --delta
    }

    #[test]
    fn trivial_reports_all_criteria() {
        // Perfect matching: solvable with the edge coloring, not bare.
        let out = run_words(&["trivial", "--node", "M O", "--edge", "M M;O O", "--coloring", "2"]);
        assert!(out.contains("bare PN model (trivial problem): not solvable"), "{out}");
        assert!(out.contains("gadget criterion): SOLVABLE"), "{out}");
        // Config cliques: MO is not cross-compatible with itself, and there
        // is only one configuration, so 2-coloring does not help.
        assert!(out.contains("2-vertex coloring: not solvable"), "{out}");
    }

    #[test]
    fn autolb_on_sinkless_orientation() {
        let out = run_words(&["autolb", "--node", "O I I", "--edge", "[O I] I"]);
        assert!(out.contains("FIXED POINT"), "{out}");
        assert!(out.contains("certificate replay: OK"), "{out}");
    }

    #[test]
    fn autolb_criterion_choice() {
        let out = run_words(&[
            "autolb",
            "--node",
            "M M M;P O O",
            "--edge",
            "M [P O];O O",
            "--max-steps",
            "2",
            "--labels",
            "5",
            "--criterion",
            "universal",
        ]);
        assert!(out.contains("bare PN model"), "{out}");
        let err = run(vec![
            "autolb".into(),
            "--node".into(),
            "M M".into(),
            "--edge".into(),
            "M M".into(),
            "--criterion".into(),
            "bogus".into(),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn bistep_on_hypergraph_so() {
        let out = run_words(&["bistep", "--black", "O I I", "--white", "[O I] I I"]);
        assert!(out.contains("(3, 3)"), "{out}");
        assert!(out.contains("trivial for black nodes: false"), "{out}");
    }

    #[test]
    fn submit_round_trips_against_an_in_process_daemon() {
        // Spawn the daemon in-process on an ephemeral port; `submit`
        // must return the exact bytes of the local subcommand, and the
        // second ask must be a store hit with identical bytes.
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.local_addr().to_string();
        let local = run_words(&["autolb", "--node", "O I I", "--edge", "[O I] I"]);
        let words =
            ["submit", "--addr", &addr, "--op", "autolb", "--node", "O I I", "--edge", "[O I] I"];
        let served = run_words(&words);
        assert_eq!(served, local, "served bytes must equal the local run");
        let again = run_words(&words);
        assert_eq!(again, local);

        let status = run_words(&["status", "--addr", &addr]);
        assert!(status.contains("\"mem_hits\": 1"), "{status}");
        assert!(status.contains("\"autolb\": 2"), "{status}");

        let bye = run_words(&["shutdown", "--addr", &addr]);
        assert!(bye.contains("shutdown acknowledged"), "{bye}");
        handle.join();
    }

    #[test]
    fn viz_renders_dot_for_a_stored_autolb_certificate() {
        // The acceptance path: submit an autolb query to a daemon, then
        // `relim viz --digest D` must fetch the stored canonical key,
        // replay it on a lineage-recording session, and emit DOT.
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.local_addr().to_string();
        run_words(&[
            "submit", "--addr", &addr, "--op", "autolb", "--node", "O I I", "--edge", "[O I] I",
        ]);
        let digest = OpRequest::AutoLb {
            node: "O I I".into(),
            edge: "[O I] I".into(),
            max_steps: 6,
            labels: 6,
            criterion: Criterion::Gadget,
        }
        .digest()
        .unwrap();
        let dot = run_words(&["viz", "--addr", &addr, "--digest", &digest]);
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains(&format!("autolb {}", &digest[..12])), "{dot}");
        assert!(dot.contains("R·R̄"), "contracted chain edges expected: {dot}");
        // --json swaps the rendering, same replay.
        let json = run_words(&["viz", "--addr", &addr, "--digest", &digest, "--json"]);
        assert!(json.contains("\"relim-lineage/1\""), "{json}");
        // An unknown digest is a clean error from the daemon.
        let err = run(vec![
            "viz".into(),
            "--addr".into(),
            addr.clone(),
            "--digest".into(),
            "f00d".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("no stored entry"), "{err}");
        run_words(&["shutdown", "--addr", &addr]);
        handle.join();
    }

    #[test]
    fn viz_renders_a_local_problem_and_reads_a_store_dir() {
        // Inline problem mode: no daemon involved at all.
        let words = ["viz", "--op", "zero-round", "--node", "M M M;P O O", "--edge", "M [P O];O O"];
        let dot = run_words(&words);
        assert!(dot.starts_with("digraph"), "{dot}");
        let full = run_words(&[&words[..], &["--full"]].concat());
        assert!(full.starts_with("digraph"), "{full}");
        // Sweeps span many problems — no single DAG to draw.
        let err =
            run(vec!["viz".into(), "--op".into(), "sweep".into(), "--delta".into(), "4".into()])
                .unwrap_err();
        assert!(err.to_string().contains("spans many problems"), "{err}");

        // Store-directory mode: persist one entry, read it back with no
        // daemon running.
        let dir = std::env::temp_dir().join(format!("relim-cli-viz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let addr = handle.local_addr().to_string();
        run_words(&[
            "submit",
            "--addr",
            &addr,
            "--op",
            "zero-round",
            "--node",
            "M M M;P O O",
            "--edge",
            "M [P O];O O",
        ]);
        run_words(&["shutdown", "--addr", &addr]);
        handle.join();
        let digest = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap().digest().unwrap();
        let dot = run_words(&[
            "viz",
            "--digest",
            &digest,
            "--store",
            dir.to_str().expect("utf-8 temp path"),
        ]);
        assert!(dot.contains(&format!("zero-round {}", &digest[..12])), "{dot}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_and_timeline_verbs_print_the_observability_surfaces() {
        let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.local_addr().to_string();
        run_words(&[
            "submit",
            "--addr",
            &addr,
            "--op",
            "zero-round",
            "--node",
            "M M M;P O O",
            "--edge",
            "M [P O];O O",
        ]);
        let metrics = run_words(&["metrics", "--addr", &addr]);
        assert!(metrics.contains("relim_requests_total"), "{metrics}");
        assert!(metrics.contains("# TYPE relim_store_stores counter"), "{metrics}");
        let gantt = run_words(&["timeline", "--addr", &addr]);
        assert!(gantt.contains("timeline:"), "{gantt}");
        assert!(gantt.contains("zero-round"), "{gantt}");
        let json = run_words(&["timeline", "--addr", &addr, "--json"]);
        assert!(json.contains("\"relim-timeline/1\""), "{json}");
        // This daemon runs without `--trace`: ping says so.
        let pong = run_words(&["ping", "--addr", &addr]);
        assert!(pong.contains("timeline window"), "{pong}");
        assert!(pong.contains("tracing off"), "{pong}");
        run_words(&["shutdown", "--addr", &addr]);
        handle.join();
    }

    #[test]
    fn trace_verb_renders_a_tree_and_a_chrome_export() {
        let config = ServerConfig { trace: true, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let addr = handle.local_addr().to_string();

        // A traced submit serves byte-identical stdout: the trace id
        // only ever rides on stderr.
        let words = [
            "submit",
            "--addr",
            &addr,
            "--op",
            "zero-round",
            "--node",
            "M M M;P O O",
            "--edge",
            "M [P O];O O",
        ];
        let untraced = run_words(&words);
        let traced = run_words(&[&words[..], &["--trace"]].concat());
        assert_eq!(traced, untraced, "tracing never changes served bytes");

        // Submit under a *known* trace id (the CLI mints random ones),
        // then dump it through the verb.
        let op = OpRequest::zero_round("M M M;P O O", "M [P O];O O").unwrap();
        Client::new(&*addr)
            .submit_traced(&op, None, Some(&trace::TraceContext { trace_id: 0xf00d, parent: None }))
            .unwrap();
        let tree = run_words(&["trace", "--addr", &addr, "--trace-id", "f00d"]);
        assert!(tree.contains(&trace::render_id(0xf00d)), "{tree}");
        assert!(tree.contains("request"), "{tree}");
        assert!(tree.contains("store-read"), "{tree}");
        let chrome =
            run_words(&["trace", "--addr", &addr, "--trace-id", "f00d", "--format", "chrome"]);
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("traceEvents"), "{chrome}");

        // A tracing daemon's ping reports its span window.
        let pong = run_words(&["ping", "--addr", &addr]);
        assert!(pong.contains("span window"), "{pong}");

        // Bad id / bad format are loud argument errors, not connections.
        let err = run(vec!["trace".into(), "--trace-id".into(), "xyz".into()]).unwrap_err();
        assert!(err.to_string().contains("hex"), "{err}");
        let err = run(vec![
            "trace".into(),
            "--trace-id".into(),
            "f00d".into(),
            "--format".into(),
            "svg".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("tree|chrome"), "{err}");

        run_words(&["shutdown", "--addr", &addr]);
        handle.join();
    }

    #[test]
    fn submit_validates_op_and_reports_connection_failures() {
        let err = run(vec!["submit".into(), "--op".into(), "bogus".into()]).unwrap_err();
        assert!(err.to_string().contains("--op must be"), "{err}");
        // Nothing listens on this port: a clean error, not a hang.
        let err = run(vec![
            "submit".into(),
            "--addr".into(),
            "127.0.0.1:1".into(),
            "--op".into(),
            "zero-round".into(),
            "--node".into(),
            "A A".into(),
            "--edge".into(),
            "A A".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("cannot connect"), "{err}");
    }

    #[test]
    fn autoub_with_coloring() {
        let out = run_words(&[
            "autoub",
            "--node",
            "M M;P O",
            "--edge",
            "M [P O];O O",
            "--max-steps",
            "5",
            "--labels",
            "14",
            "--coloring",
            "3",
        ]);
        assert!(out.contains("upper bound:"), "{out}");
        assert!(out.contains("3-vertex coloring"), "{out}");
        assert!(out.contains("certificate replay: OK"), "{out}");
    }
}
