//! Minimal dependency-free argument parsing for the `relim` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options and
/// `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A human-readable argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Option keys that take a value; everything else starting with `--` is a
/// boolean flag.
const VALUE_KEYS: &[&str] = &[
    "node",
    "edge",
    "black",
    "white",
    "delta",
    "a",
    "x",
    "k",
    "n",
    "steps",
    "side",
    "max-steps",
    "seed",
    "trials",
    "label-limit",
    "labels",
    "coloring",
    "criterion",
    "threads",
    "lemma",
    "addr",
    "store",
    "store-capacity",
    "store-budget-bytes",
    "aging-limit",
    "executors",
    "peers",
    "peer-timeout-ms",
    "op",
    "priority",
    "digest",
    "trace-id",
    "format",
];

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Rejects options missing their value and unexpected positionals.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if VALUE_KEYS.contains(&key) {
                    let value =
                        iter.next().ok_or_else(|| ArgError(format!("--{key} requires a value")))?;
                    args.options.insert(key.to_owned(), value);
                } else {
                    args.flags.push(key.to_owned());
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument `{tok}`")));
            }
        }
        Ok(args)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Describes the missing option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Describes unparsable values.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError(format!("--{key} expects an integer, got `{v}`")))
            }
        }
    }

    /// An optional numeric option (no default).
    ///
    /// # Errors
    ///
    /// Describes unparsable values.
    pub fn get_u64_opt(&self, key: &str) -> Result<Option<u64>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// A required numeric option.
    ///
    /// # Errors
    ///
    /// Describes missing/unparsable values.
    pub fn require_u64(&self, key: &str) -> Result<u64, ArgError> {
        self.require(key)?.parse().map_err(|_| ArgError(format!("--{key} expects an integer")))
    }

    /// Whether a boolean flag is present.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Normalizes a constraint argument: `;` and literal `\n` both separate
/// configuration lines, so shells without multi-line strings work too.
/// Re-exported from the serving layer's canonical implementation — the
/// CLI/daemon byte-identity contract depends on both sides normalizing
/// identically, so there is exactly one copy.
pub use relim_service::ops::constraint_text;

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_options_flags() {
        let a = parse(&["step", "--node", "M M", "--edge", "M M", "--condense"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("step"));
        assert_eq!(a.get("node"), Some("M M"));
        assert!(a.has_flag("condense"));
        assert!(!a.has_flag("dot"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["step", "--node"]).is_err());
    }

    #[test]
    fn unexpected_positional_rejected() {
        assert!(parse(&["step", "extra"]).is_err());
    }

    #[test]
    fn numbers() {
        let a = parse(&["chain", "--delta", "1024", "--k", "2"]).unwrap();
        assert_eq!(a.require_u64("delta").unwrap(), 1024);
        assert_eq!(a.get_u64("k", 0).unwrap(), 2);
        assert_eq!(a.get_u64("seed", 7).unwrap(), 7);
        assert!(a.require_u64("n").is_err());
    }

    #[test]
    fn serve_pool_options_take_values() {
        // Regression guard: a key missing from VALUE_KEYS turns its value
        // into a rejected positional, so pin the serve pool/budget flags.
        let a = parse(&[
            "serve",
            "--executors",
            "4",
            "--store-budget-bytes",
            "1048576",
            "--store-capacity",
            "64",
        ])
        .unwrap();
        assert_eq!(a.get_u64("executors", 0).unwrap(), 4);
        assert_eq!(a.get_u64("store-budget-bytes", 0).unwrap(), 1_048_576);
        assert_eq!(a.get_u64("store-capacity", 0).unwrap(), 64);
    }

    #[test]
    fn trace_options_take_values_and_trace_is_a_flag() {
        // `--trace-id`/`--format` take values; `--trace` (on submit and
        // serve) is a boolean switch.
        let a = parse(&[
            "trace",
            "--trace-id",
            "deadbeef",
            "--format",
            "chrome",
            "--peers",
            "127.0.0.1:7402",
        ])
        .unwrap();
        assert_eq!(a.get("trace-id"), Some("deadbeef"));
        assert_eq!(a.get("format"), Some("chrome"));
        let b = parse(&["submit", "--op", "zero-round", "--trace"]).unwrap();
        assert!(b.has_flag("trace"));
    }

    #[test]
    fn serve_fleet_options_take_values() {
        let a = parse(&[
            "serve",
            "--peers",
            "127.0.0.1:7402,127.0.0.1:7403",
            "--peer-timeout-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(a.get("peers"), Some("127.0.0.1:7402,127.0.0.1:7403"));
        assert_eq!(a.get_u64("peer-timeout-ms", 2000).unwrap(), 500);
    }

    #[test]
    fn separators() {
        assert_eq!(constraint_text("M M; P O"), "M M\n P O");
        assert_eq!(constraint_text("M M\\nP O"), "M M\nP O");
    }
}
