//! Radius-T views — the semantic core of the LOCAL model.
//!
//! A `T`-round algorithm in the LOCAL/PN model is exactly a function of the
//! node's *radius-T view* (paper §2.1): the truncated universal cover
//! rooted at the node, decorated with port numbers and any local inputs.
//! This module computes canonical encodings of views, so that two nodes
//! receive the same output from **every** `T`-round algorithm iff their
//! encodings are equal.
//!
//! The lower-bound gadget of Lemmas 12/15 is an indistinguishability
//! argument: with ports identified along a Δ-edge coloring, all interior
//! nodes have identical radius-0 views (and identical radius-T views on the
//! infinite Δ-regular tree). [`view_classes`] lets tests *measure* that.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// Optional decorations for views.
#[derive(Debug, Clone, Copy, Default)]
pub struct ViewInputs<'a> {
    /// Per-node inputs (identifiers, colors, …).
    pub node_input: Option<&'a [u64]>,
    /// Per-edge inputs (edge colors, …), indexed by edge id.
    pub edge_input: Option<&'a [usize]>,
    /// Port renumbering: `relabel[v][p]` is the *displayed* number of port
    /// `p` at node `v` (e.g. the edge color, for the identified-ports
    /// gadget). Views order and label ports by the displayed numbers.
    pub port_relabel: Option<&'a [Vec<usize>]>,
}

/// Canonically encodes the radius-`t` view of `v`.
///
/// The encoding recurses through all neighbors (the truncated universal
/// cover — walks may backtrack, as in the standard definition) and records,
/// per port in displayed order: the displayed port number on both sides,
/// the edge input, and the neighbor's subview.
///
/// # Example
///
/// ```
/// use local_sim::{trees, views};
///
/// let g = trees::complete_regular_tree(3, 3).unwrap();
/// let inputs = views::ViewInputs::default();
/// // In the PN model without inputs, all degree-3 nodes look identical at
/// // radius 0.
/// let a = views::view_encoding(&g, 0, 0, &inputs);
/// let b = views::view_encoding(&g, 1, 0, &inputs);
/// assert_eq!(a, b);
/// ```
pub fn view_encoding(graph: &Graph, v: NodeId, t: usize, inputs: &ViewInputs<'_>) -> String {
    fn displayed_port(inputs: &ViewInputs<'_>, v: NodeId, p: usize) -> usize {
        match inputs.port_relabel {
            Some(relabel) => relabel[v][p],
            None => p,
        }
    }
    fn rec(graph: &Graph, v: NodeId, t: usize, inputs: &ViewInputs<'_>, out: &mut String) {
        out.push('(');
        if let Some(ni) = inputs.node_input {
            out.push_str(&format!("i{}", ni[v]));
        }
        out.push_str(&format!("d{}", graph.degree(v)));
        if t > 0 {
            // Children in displayed-port order.
            let mut ports: Vec<usize> = (0..graph.degree(v)).collect();
            ports.sort_by_key(|&p| displayed_port(inputs, v, p));
            for p in ports {
                let target = graph.port_target(v, p);
                out.push_str(&format!(
                    "[{}>{}",
                    displayed_port(inputs, v, p),
                    displayed_port(inputs, target.node, target.port)
                ));
                if let Some(ei) = inputs.edge_input {
                    out.push_str(&format!("c{}", ei[target.edge]));
                }
                rec(graph, target.node, t - 1, inputs, out);
                out.push(']');
            }
        }
        out.push(')');
    }
    let mut out = String::new();
    rec(graph, v, t, inputs, &mut out);
    out
}

/// Partitions the nodes into view-equivalence classes at radius `t`:
/// `classes[v]` is a class index, and `count` is the number of distinct
/// classes. Nodes in the same class are indistinguishable to every
/// `t`-round algorithm (given the same inputs).
pub fn view_classes(graph: &Graph, t: usize, inputs: &ViewInputs<'_>) -> (Vec<usize>, usize) {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut classes = Vec::with_capacity(graph.n());
    for v in 0..graph.n() {
        let enc = view_encoding(graph, v, t, inputs);
        let next = index.len();
        let class = *index.entry(enc).or_insert(next);
        classes.push(class);
    }
    let count = index.len();
    (classes, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_coloring;
    use crate::trees;

    #[test]
    fn radius_zero_pn_views_depend_only_on_degree() {
        let g = trees::complete_regular_tree(3, 3).unwrap();
        let inputs = ViewInputs::default();
        let (classes, count) = view_classes(&g, 0, &inputs);
        // Exactly two classes: degree 3 (interior) and degree 1 (leaves).
        assert_eq!(count, 2);
        for v in 0..g.n() {
            for u in 0..g.n() {
                assert_eq!(classes[v] == classes[u], g.degree(v) == g.degree(u));
            }
        }
    }

    #[test]
    fn ids_separate_views() {
        let g = trees::path(4).unwrap();
        let ids: Vec<u64> = vec![10, 20, 30, 40];
        let inputs = ViewInputs { node_input: Some(&ids), ..Default::default() };
        let (_, count) = view_classes(&g, 0, &inputs);
        assert_eq!(count, 4);
    }

    #[test]
    fn identified_ports_gadget_indistinguishability() {
        // The Lemma 12 gadget: ports displayed as edge colors. Interior
        // nodes whose radius-T ball avoids the leaves are pairwise
        // indistinguishable at radius T.
        let g = trees::complete_regular_tree(3, 5).unwrap();
        let col = edge_coloring::tree_edge_coloring(&g).unwrap();
        let relabel: Vec<Vec<usize>> = (0..g.n())
            .map(|v| (0..g.degree(v)).map(|p| col.color_at(&g, v, p)).collect())
            .collect();
        let colors: Vec<usize> = col.as_slice().to_vec();
        let inputs = ViewInputs {
            node_input: None,
            edge_input: Some(&colors),
            port_relabel: Some(&relabel),
        };
        let dist_to_leaf = {
            // Multi-source BFS from all leaves.
            let mut dist = vec![usize::MAX; g.n()];
            let mut queue = std::collections::VecDeque::new();
            for (v, slot) in dist.iter_mut().enumerate() {
                if g.degree(v) == 1 {
                    *slot = 0;
                    queue.push_back(v);
                }
            }
            while let Some(u) = queue.pop_front() {
                for t in g.ports(u) {
                    if dist[t.node] == usize::MAX {
                        dist[t.node] = dist[u] + 1;
                        queue.push_back(t.node);
                    }
                }
            }
            dist
        };
        for t in 0..=2usize {
            let (classes, _) = view_classes(&g, t, &inputs);
            let deep: Vec<usize> = (0..g.n()).filter(|&v| dist_to_leaf[v] > t).collect();
            assert!(deep.len() >= 2, "need at least two deep nodes at t={t}");
            let class = classes[deep[0]];
            for &v in &deep {
                assert_eq!(
                    classes[v], class,
                    "node {v} distinguishable at radius {t} despite identified ports"
                );
            }
        }
    }

    #[test]
    fn without_identification_ports_do_distinguish() {
        // With raw ports (no relabeling), the same tree has *many* view
        // classes at radius 1: the port numbers leak orientation.
        let g = trees::complete_regular_tree(3, 4).unwrap();
        let inputs = ViewInputs::default();
        let (_, count_r1) = view_classes(&g, 1, &inputs);
        assert!(count_r1 > 2, "count = {count_r1}");
    }

    #[test]
    fn view_growth_with_radius() {
        // More radius, at least as many classes.
        let g = trees::random_tree(40, 4, 3).unwrap();
        let inputs = ViewInputs::default();
        let mut prev = 0;
        for t in 0..4 {
            let (_, count) = view_classes(&g, t, &inputs);
            assert!(count >= prev);
            prev = count;
        }
    }

    #[test]
    fn backtracking_included() {
        // Universal-cover semantics: on a 2-path, radius-2 views include the
        // walk back through the origin; encodings still distinguish the
        // center from the ends.
        let g = trees::path(3).unwrap();
        let inputs = ViewInputs::default();
        let (classes, count) = view_classes(&g, 2, &inputs);
        assert_eq!(count, 3, "two ends differ by port orientation? {classes:?}");
    }
}
