//! Validity checkers for the solution concepts of the paper.
//!
//! Every checker returns `Ok(())` or a structured [`Violation`] naming the
//! offending node or edge — the test suites and benches rely on these as the
//! ground truth for every algorithm and transform in the workspace.

use crate::graph::{Graph, NodeId, Orientation};

/// A reason a candidate solution is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// Two adjacent nodes are both in the set.
    AdjacentPair {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A node outside the set has no neighbor inside it.
    NotDominated {
        /// The undominated node.
        node: NodeId,
    },
    /// A node exceeds a degree bound.
    DegreeBound {
        /// The offending node.
        node: NodeId,
        /// Its measured (out-)degree.
        found: usize,
        /// The allowed bound.
        bound: usize,
    },
    /// An edge inside the set is not oriented.
    UnorientedEdge {
        /// The offending edge id.
        edge: usize,
    },
    /// Two adjacent nodes share a color.
    ColorConflict {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The shared color.
        color: usize,
    },
    /// A supplied vector has the wrong length.
    ShapeMismatch {
        /// Description of the mismatch.
        message: String,
    },
    /// A matching touches a node twice.
    MatchingOverlap {
        /// The node covered twice.
        node: NodeId,
    },
    /// A matching is not maximal: this edge could be added.
    MatchingNotMaximal {
        /// The addable edge.
        edge: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::AdjacentPair { u, v } => {
                write!(f, "adjacent nodes {u} and {v} both selected")
            }
            Violation::NotDominated { node } => write!(f, "node {node} is not dominated"),
            Violation::DegreeBound { node, found, bound } => {
                write!(f, "node {node} has (out-)degree {found} > bound {bound}")
            }
            Violation::UnorientedEdge { edge } => {
                write!(f, "edge {edge} inside the set is unoriented")
            }
            Violation::ColorConflict { u, v, color } => {
                write!(f, "adjacent nodes {u} and {v} share color {color}")
            }
            Violation::ShapeMismatch { message } => write!(f, "shape mismatch: {message}"),
            Violation::MatchingOverlap { node } => {
                write!(f, "node {node} covered twice by matching")
            }
            Violation::MatchingNotMaximal { edge } => {
                write!(f, "matching not maximal: edge {edge} addable")
            }
        }
    }
}

impl std::error::Error for Violation {}

fn check_shape(graph: &Graph, len: usize, what: &str) -> Result<(), Violation> {
    if len != graph.n() {
        return Err(Violation::ShapeMismatch {
            message: format!("{what}: {len} entries for {} nodes", graph.n()),
        });
    }
    Ok(())
}

/// Checks that `in_set` is an independent set.
pub fn check_independent_set(graph: &Graph, in_set: &[bool]) -> Result<(), Violation> {
    check_shape(graph, in_set.len(), "independent set")?;
    for &(u, v) in graph.edges() {
        if in_set[u] && in_set[v] {
            return Err(Violation::AdjacentPair { u, v });
        }
    }
    Ok(())
}

/// Checks that `in_set` is a dominating set: every node outside has a
/// neighbor inside. (Note the paper's MIS phrasing: nodes *in* the set are
/// allowed, of course.)
pub fn check_dominating_set(graph: &Graph, in_set: &[bool]) -> Result<(), Violation> {
    check_shape(graph, in_set.len(), "dominating set")?;
    for v in 0..graph.n() {
        if !in_set[v] && !graph.neighbors(v).any(|u| in_set[u]) {
            return Err(Violation::NotDominated { node: v });
        }
    }
    Ok(())
}

/// Checks that `in_set` is a maximal independent set: independent and
/// dominating.
pub fn check_mis(graph: &Graph, in_set: &[bool]) -> Result<(), Violation> {
    check_independent_set(graph, in_set)?;
    check_dominating_set(graph, in_set)
}

/// Checks that `in_set` is a *k-degree dominating set* (paper §1): a
/// dominating set whose induced subgraph has maximum degree ≤ k.
pub fn check_k_degree_domset(graph: &Graph, in_set: &[bool], k: usize) -> Result<(), Violation> {
    check_dominating_set(graph, in_set)?;
    for v in 0..graph.n() {
        if !in_set[v] {
            continue;
        }
        let induced = graph.neighbors(v).filter(|&u| in_set[u]).count();
        if induced > k {
            return Err(Violation::DegreeBound { node: v, found: induced, bound: k });
        }
    }
    Ok(())
}

/// Checks that `(in_set, orientation)` is a *k-outdegree dominating set*
/// (paper §1): a dominating set together with an orientation of the edges of
/// its induced subgraph in which every member has outdegree ≤ k.
pub fn check_k_outdegree_domset(
    graph: &Graph,
    in_set: &[bool],
    orientation: &Orientation,
    k: usize,
) -> Result<(), Violation> {
    check_dominating_set(graph, in_set)?;
    if orientation.len() != graph.m() {
        return Err(Violation::ShapeMismatch {
            message: format!("orientation covers {} of {} edges", orientation.len(), graph.m()),
        });
    }
    // Every induced edge must be oriented.
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if in_set[u] && in_set[v] && orientation.dir(e).is_none() {
            return Err(Violation::UnorientedEdge { edge: e });
        }
    }
    for v in 0..graph.n() {
        if !in_set[v] {
            continue;
        }
        let out = orientation.out_degree_filtered(graph, v, |u| in_set[u]);
        if out > k {
            return Err(Violation::DegreeBound { node: v, found: out, bound: k });
        }
    }
    Ok(())
}

/// Checks a proper node coloring.
pub fn check_proper_coloring(graph: &Graph, colors: &[usize]) -> Result<(), Violation> {
    check_shape(graph, colors.len(), "coloring")?;
    for &(u, v) in graph.edges() {
        if colors[u] == colors[v] {
            return Err(Violation::ColorConflict { u, v, color: colors[u] });
        }
    }
    Ok(())
}

/// Checks a *k-defective coloring* (paper §1.1): each color class induces a
/// subgraph of maximum degree ≤ k.
pub fn check_defective_coloring(
    graph: &Graph,
    colors: &[usize],
    k: usize,
) -> Result<(), Violation> {
    check_shape(graph, colors.len(), "defective coloring")?;
    for v in 0..graph.n() {
        let same = graph.neighbors(v).filter(|&u| colors[u] == colors[v]).count();
        if same > k {
            return Err(Violation::DegreeBound { node: v, found: same, bound: k });
        }
    }
    Ok(())
}

/// Checks a *k-arbdefective coloring* (paper §1.1): colors plus an
/// orientation of the monochromatic edges under which every node has
/// outdegree ≤ k within its color class.
pub fn check_arbdefective_coloring(
    graph: &Graph,
    colors: &[usize],
    orientation: &Orientation,
    k: usize,
) -> Result<(), Violation> {
    check_shape(graph, colors.len(), "arbdefective coloring")?;
    if orientation.len() != graph.m() {
        return Err(Violation::ShapeMismatch {
            message: format!("orientation covers {} of {} edges", orientation.len(), graph.m()),
        });
    }
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if colors[u] == colors[v] && orientation.dir(e).is_none() {
            return Err(Violation::UnorientedEdge { edge: e });
        }
    }
    for v in 0..graph.n() {
        let out = orientation.out_degree_filtered(graph, v, |u| colors[u] == colors[v]);
        if out > k {
            return Err(Violation::DegreeBound { node: v, found: out, bound: k });
        }
    }
    Ok(())
}

/// Checks that `in_set` is an `(α, β)`-ruling set (paper §1): members are
/// pairwise at distance ≥ α, and every node is within distance β of a
/// member.
pub fn check_ruling_set(
    graph: &Graph,
    in_set: &[bool],
    alpha: usize,
    beta: usize,
) -> Result<(), Violation> {
    check_shape(graph, in_set.len(), "ruling set")?;
    // Multi-source BFS from the members gives the distance-to-set.
    let mut dist = vec![usize::MAX; graph.n()];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..graph.n() {
        if in_set[v] {
            dist[v] = 0;
            queue.push_back(v);
        }
    }
    while let Some(u) = queue.pop_front() {
        for t in graph.ports(u) {
            if dist[t.node] == usize::MAX {
                dist[t.node] = dist[u] + 1;
                queue.push_back(t.node);
            }
        }
    }
    for (v, &d) in dist.iter().enumerate() {
        if d > beta {
            return Err(Violation::NotDominated { node: v });
        }
    }
    // Pairwise distance ≥ α: BFS to depth α−1 from each member must not
    // reach another member.
    for v in 0..graph.n() {
        if !in_set[v] {
            continue;
        }
        let mut d = vec![usize::MAX; graph.n()];
        d[v] = 0;
        let mut queue = std::collections::VecDeque::from([v]);
        while let Some(u) = queue.pop_front() {
            if d[u] + 1 >= alpha {
                continue;
            }
            for t in graph.ports(u) {
                if d[t.node] == usize::MAX {
                    d[t.node] = d[u] + 1;
                    if in_set[t.node] {
                        return Err(Violation::AdjacentPair { u: v, v: t.node });
                    }
                    queue.push_back(t.node);
                }
            }
        }
    }
    Ok(())
}

/// Checks that `in_matching` is a maximal *b-matching* (paper §1): no node
/// is covered by more than `b` matching edges, and no further edge can be
/// added (every non-matching edge has a saturated endpoint).
pub fn check_maximal_b_matching(
    graph: &Graph,
    in_matching: &[bool],
    b: usize,
) -> Result<(), Violation> {
    if in_matching.len() != graph.m() {
        return Err(Violation::ShapeMismatch {
            message: format!("{} flags for {} edges", in_matching.len(), graph.m()),
        });
    }
    let mut load = vec![0usize; graph.n()];
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if in_matching[e] {
            load[u] += 1;
            load[v] += 1;
        }
    }
    for (v, &l) in load.iter().enumerate() {
        if l > b {
            return Err(Violation::DegreeBound { node: v, found: l, bound: b });
        }
    }
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if !in_matching[e] && load[u] < b && load[v] < b {
            return Err(Violation::MatchingNotMaximal { edge: e });
        }
    }
    Ok(())
}

/// Checks that `in_matching` (per-edge flags) is a maximal matching.
pub fn check_maximal_matching(graph: &Graph, in_matching: &[bool]) -> Result<(), Violation> {
    if in_matching.len() != graph.m() {
        return Err(Violation::ShapeMismatch {
            message: format!("{} flags for {} edges", in_matching.len(), graph.m()),
        });
    }
    let mut covered = vec![false; graph.n()];
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if in_matching[e] {
            if covered[u] {
                return Err(Violation::MatchingOverlap { node: u });
            }
            if covered[v] {
                return Err(Violation::MatchingOverlap { node: v });
            }
            covered[u] = true;
            covered[v] = true;
        }
    }
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        if !covered[u] && !covered[v] {
            return Err(Violation::MatchingNotMaximal { edge: e });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeDir;
    use crate::trees;

    #[test]
    fn mis_on_path() {
        let g = trees::path(5).unwrap();
        assert!(check_mis(&g, &[true, false, true, false, true]).is_ok());
        // Not maximal: middle node undominated.
        assert!(matches!(
            check_mis(&g, &[true, false, false, false, true]),
            Err(Violation::NotDominated { node: 2 })
        ));
        // Not independent.
        assert!(matches!(
            check_mis(&g, &[true, true, false, false, true]),
            Err(Violation::AdjacentPair { u: 0, v: 1 })
        ));
    }

    #[test]
    fn k_degree_domset() {
        let g = trees::star(4).unwrap();
        // All nodes: center has induced degree 4 > 1.
        let all = vec![true; 5];
        assert!(matches!(
            check_k_degree_domset(&g, &all, 1),
            Err(Violation::DegreeBound { node: 0, found: 4, bound: 1 })
        ));
        assert!(check_k_degree_domset(&g, &all, 4).is_ok());
        // Just the center: a 0-degree dominating set (an MIS, in fact).
        let center = vec![true, false, false, false, false];
        assert!(check_k_degree_domset(&g, &center, 0).is_ok());
    }

    #[test]
    fn k_outdegree_domset() {
        let g = trees::path(3).unwrap();
        let all = vec![true; 3];
        let mut o = Orientation::unoriented(g.m());
        // Unoriented induced edges rejected.
        assert!(matches!(
            check_k_outdegree_domset(&g, &all, &o, 1),
            Err(Violation::UnorientedEdge { .. })
        ));
        // Orient both edges out of node 1: outdegree 2.
        o.orient_out_of(&g, 0, 1);
        o.orient_out_of(&g, 1, 1);
        assert!(matches!(
            check_k_outdegree_domset(&g, &all, &o, 1),
            Err(Violation::DegreeBound { node: 1, found: 2, bound: 1 })
        ));
        assert!(check_k_outdegree_domset(&g, &all, &o, 2).is_ok());
        // Re-orient edge (1,2) out of 2: now everyone has outdegree <= 1.
        let mut o2 = Orientation::unoriented(g.m());
        o2.orient_out_of(&g, 0, 1);
        o2.orient_out_of(&g, 1, 2);
        assert!(check_k_outdegree_domset(&g, &all, &o2, 1).is_ok());
    }

    #[test]
    fn colorings() {
        let g = trees::path(4).unwrap();
        assert!(check_proper_coloring(&g, &[0, 1, 0, 1]).is_ok());
        assert!(matches!(
            check_proper_coloring(&g, &[0, 0, 1, 0]),
            Err(Violation::ColorConflict { u: 0, v: 1, color: 0 })
        ));
        // Monochromatic path: defect 2 at internal nodes.
        assert!(check_defective_coloring(&g, &[0, 0, 0, 0], 2).is_ok());
        assert!(matches!(
            check_defective_coloring(&g, &[0, 0, 0, 0], 1),
            Err(Violation::DegreeBound { .. })
        ));
    }

    #[test]
    fn arbdefective() {
        let g = trees::path(3).unwrap();
        let colors = vec![0, 0, 0];
        let mut o = Orientation::unoriented(g.m());
        o.orient_out_of(&g, 0, 0); // 0 -> 1
        o.orient_out_of(&g, 1, 1); // 1 -> 2
        assert!(check_arbdefective_coloring(&g, &colors, &o, 1).is_ok());
        assert!(check_arbdefective_coloring(&g, &colors, &o, 0).is_err());
        // Different colors need no orientation.
        let o2 = Orientation::unoriented(g.m());
        assert!(check_arbdefective_coloring(&g, &[0, 1, 0], &o2, 0).is_ok());
    }

    #[test]
    fn matching() {
        let g = trees::path(4).unwrap();
        // Edges: (0,1), (1,2), (2,3).
        assert!(check_maximal_matching(&g, &[true, false, true]).is_ok());
        assert!(matches!(
            check_maximal_matching(&g, &[true, true, false]),
            Err(Violation::MatchingOverlap { node: 1 })
        ));
        assert!(matches!(
            check_maximal_matching(&g, &[true, false, false]),
            Err(Violation::MatchingNotMaximal { edge: 2 })
        ));
    }

    #[test]
    fn ruling_set_checker() {
        let g = trees::path(7).unwrap();
        // {0, 3, 6}: pairwise distance 3, every node within 1...
        let s = vec![true, false, false, true, false, false, true];
        assert!(check_ruling_set(&g, &s, 3, 2).is_ok());
        assert!(check_ruling_set(&g, &s, 3, 1).is_ok()); // every node adjacent to a member
        assert!(check_ruling_set(&g, &s, 4, 2).is_err()); // members at distance 3 < 4

        // {0, 6}: node 3 is at distance 3 from both members.
        let sparse = vec![true, false, false, false, false, false, true];
        assert!(check_ruling_set(&g, &sparse, 2, 2).is_err());
        assert!(check_ruling_set(&g, &sparse, 2, 3).is_ok());
        // Empty set fails domination.
        let empty = vec![false; 7];
        assert!(matches!(check_ruling_set(&g, &empty, 2, 3), Err(Violation::NotDominated { .. })));
        // An MIS is a (2,1)-ruling set.
        let mis = vec![true, false, true, false, true, false, true];
        assert!(check_ruling_set(&g, &mis, 2, 1).is_ok());
    }

    #[test]
    fn b_matching_checker() {
        let g = trees::star(3).unwrap();
        // All three star edges: center load 3.
        let all = vec![true, true, true];
        assert!(check_maximal_b_matching(&g, &all, 3).is_ok());
        assert!(matches!(
            check_maximal_b_matching(&g, &all, 2),
            Err(Violation::DegreeBound { node: 0, found: 3, bound: 2 })
        ));
        // Two edges with b=2: maximal (center saturated).
        let two = vec![true, true, false];
        assert!(check_maximal_b_matching(&g, &two, 2).is_ok());
        // One edge with b=2: edge 1 addable -> not maximal.
        let one = vec![true, false, false];
        assert!(matches!(
            check_maximal_b_matching(&g, &one, 2),
            Err(Violation::MatchingNotMaximal { .. })
        ));
    }

    #[test]
    fn orientation_none_dir() {
        let _g = trees::path(3).unwrap();
        let o = Orientation::new(vec![Some(EdgeDir::Forward), None]);
        assert_eq!(o.dir(0), Some(EdgeDir::Forward));
        assert_eq!(o.dir(1), None);
    }
}
