//! # local-sim — a simulator for the LOCAL and port-numbering models
//!
//! This crate provides the execution substrate for the reproduction of
//! Balliu–Brandt–Kuhn–Olivetti (PODC 2021): deterministic, seedable
//! simulation of synchronous message-passing algorithms on graphs, plus the
//! graph generators, inputs (port numberings, identifiers, Δ-edge colorings)
//! and solution checkers the paper's setting requires.
//!
//! ## Modules
//!
//! * [`graph`] — port-numbered graphs (the PN model's topology, paper §2.1).
//! * [`trees`] — generators: complete Δ-regular trees, random bounded-degree
//!   trees, paths, stars, caterpillars.
//! * [`edge_coloring`] — proper Δ-edge colorings of trees (the input
//!   exploited by the paper's Lemma 9).
//! * [`runner`] — the synchronous round executor for
//!   [`runner::SyncAlgorithm`]s, with exact round accounting.
//! * [`checkers`] — validity checkers for MIS, dominating sets, k-outdegree
//!   and k-degree dominating sets, proper/defective/arbdefective colorings,
//!   edge colorings and matchings.
//! * [`labeling`] — per-(node, port) output labelings, the output format of
//!   problems in the round elimination formalism.
//! * [`lcl_solver`] — a centralized brute-force solver for locally checkable
//!   labelings on trees (exact feasibility + witness extraction).
//! * [`congest`] — CONGEST-model accounting: per-message bit sizes, so the
//!   bandwidth footprint of every algorithm is measured, not assumed.
//!
//! ## Example
//!
//! ```
//! use local_sim::trees;
//!
//! let g = trees::complete_regular_tree(3, 4).unwrap();
//! assert!(g.is_tree());
//! assert_eq!(g.max_degree(), 3);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkers;
pub mod congest;
pub mod edge_coloring;
pub mod error;
pub mod graph;
pub mod labeling;
pub mod lcl_solver;
pub mod runner;
pub mod trees;
pub mod views;

pub use edge_coloring::EdgeColoring;
pub use error::SimError;
pub use graph::{EdgeDir, Graph, NodeId, Orientation, PortTarget};
pub use labeling::PortLabeling;
pub use runner::{NodeInfo, RunReport, Status, SyncAlgorithm};
