//! Error types for the simulator.

use std::fmt;

/// Errors from graph construction, input generation, or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An edge endpoint is out of range.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop was supplied.
    SelfLoop {
        /// The node with the loop.
        node: usize,
    },
    /// A duplicate edge was supplied.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// A parameter is outside its supported range.
    InvalidParameter {
        /// Description of the violated requirement.
        message: String,
    },
    /// The simulation exceeded its round budget without terminating.
    RoundLimitExceeded {
        /// The budget that was exceeded.
        max_rounds: usize,
    },
    /// An operation requiring a tree was invoked on a non-tree.
    NotATree,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph of {n} nodes")
            }
            SimError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            SimError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            SimError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            SimError::RoundLimitExceeded { max_rounds } => {
                write!(f, "simulation did not terminate within {max_rounds} rounds")
            }
            SimError::NotATree => write!(f, "operation requires a tree"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SimError>;
