//! Tree generators.
//!
//! The paper's lower bounds are proved on Δ-regular trees; its upper-bound
//! discussion concerns `n`-node trees of maximum degree Δ. This module
//! generates both, plus assorted special trees used in tests.

use crate::error::{Result, SimError};
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The complete Δ-regular tree of the given depth: the root has Δ children,
/// every other internal node has Δ−1 children, and all leaves are at
/// distance `depth` from the root. For `depth = 0` this is a single node.
///
/// Every internal node has degree exactly Δ, matching the paper's
/// "Δ-regular tree" setting (leaves play the role of the boundary).
///
/// # Errors
///
/// Requires `delta ≥ 2`.
///
/// # Example
///
/// ```
/// use local_sim::trees::complete_regular_tree;
///
/// let g = complete_regular_tree(3, 2).unwrap();
/// // 1 + 3 + 3*2 = 10 nodes.
/// assert_eq!(g.n(), 10);
/// assert_eq!(g.degree(0), 3);
/// ```
pub fn complete_regular_tree(delta: usize, depth: usize) -> Result<Graph> {
    if delta < 2 {
        return Err(SimError::InvalidParameter {
            message: format!("complete_regular_tree requires delta >= 2, got {delta}"),
        });
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut frontier: Vec<NodeId> = vec![0];
    let mut next_id: NodeId = 1;
    for level in 0..depth {
        let mut next_frontier = Vec::new();
        for &v in &frontier {
            let children = if level == 0 { delta } else { delta - 1 };
            for _ in 0..children {
                edges.push((v, next_id));
                next_frontier.push(next_id);
                next_id += 1;
            }
        }
        frontier = next_frontier;
    }
    Graph::from_edges(next_id, &edges)
}

/// Number of nodes of [`complete_regular_tree`]`(delta, depth)` without
/// building it.
pub fn complete_regular_tree_size(delta: usize, depth: usize) -> usize {
    if depth == 0 {
        return 1;
    }
    let mut total = 1usize;
    let mut level = delta;
    for _ in 0..depth {
        total += level;
        level *= delta - 1;
    }
    total
}

/// A uniformly random attachment tree on `n` nodes with maximum degree
/// `max_degree`: node `i` attaches to a uniformly random earlier node that
/// still has spare capacity.
///
/// # Errors
///
/// Requires `n ≥ 1` and `max_degree ≥ 2` for `n ≥ 3` (a path needs internal
/// degree 2).
pub fn random_tree(n: usize, max_degree: usize, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(SimError::InvalidParameter { message: "random_tree requires n >= 1".into() });
    }
    if n >= 2 && max_degree < 1 || n >= 3 && max_degree < 2 {
        return Err(SimError::InvalidParameter {
            message: format!("max_degree {max_degree} too small for n = {n}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut degree = vec![0usize; n];
    let mut available: Vec<NodeId> = vec![0];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let idx = rng.gen_range(0..available.len());
        let u = available[idx];
        edges.push((u, v));
        degree[u] += 1;
        degree[v] += 1;
        if degree[u] >= max_degree {
            available.swap_remove(idx);
        }
        if degree[v] < max_degree {
            available.push(v);
        }
        if available.is_empty() && v + 1 < n {
            return Err(SimError::InvalidParameter {
                message: "ran out of attachment capacity; increase max_degree".into(),
            });
        }
    }
    Graph::from_edges(n, &edges)
}

/// The path on `n` nodes.
///
/// # Errors
///
/// Requires `n ≥ 1`.
pub fn path(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(SimError::InvalidParameter { message: "path requires n >= 1".into() });
    }
    let edges: Vec<(NodeId, NodeId)> = (1..n).map(|v| (v - 1, v)).collect();
    Graph::from_edges(n, &edges)
}

/// The star with `leaves` leaves (center is node 0).
///
/// # Errors
///
/// Requires `leaves ≥ 1`.
pub fn star(leaves: usize) -> Result<Graph> {
    if leaves == 0 {
        return Err(SimError::InvalidParameter { message: "star requires leaves >= 1".into() });
    }
    let edges: Vec<(NodeId, NodeId)> = (1..=leaves).map(|v| (0, v)).collect();
    Graph::from_edges(leaves + 1, &edges)
}

/// A caterpillar: a spine path of `spine` nodes, each carrying `legs`
/// pendant leaves.
///
/// # Errors
///
/// Requires `spine ≥ 1`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<Graph> {
    if spine == 0 {
        return Err(SimError::InvalidParameter {
            message: "caterpillar requires spine >= 1".into(),
        });
    }
    let mut edges = Vec::new();
    for v in 1..spine {
        edges.push((v - 1, v));
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s, next));
            next += 1;
        }
    }
    Graph::from_edges(next, &edges)
}

/// A random tree whose *internal* nodes all have degree exactly Δ, built by
/// growing a complete Δ-regular tree but stopping at a random subset of the
/// frontier — useful for varied Δ-regular-tree tests.
///
/// # Errors
///
/// Requires `delta ≥ 2` and `depth ≥ 1`.
pub fn random_regular_tree(delta: usize, depth: usize, keep_prob: f64, seed: u64) -> Result<Graph> {
    if delta < 2 || depth == 0 {
        return Err(SimError::InvalidParameter {
            message: "random_regular_tree requires delta >= 2, depth >= 1".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut frontier: Vec<NodeId> = vec![0];
    let mut next_id: NodeId = 1;
    for level in 0..depth {
        let mut next_frontier = Vec::new();
        for &v in &frontier {
            // A node either becomes internal (all Δ or Δ−1 children) or
            // remains a leaf; the root always becomes internal.
            let expand = level == 0 || level + 1 == 1 || rng.gen_bool(keep_prob);
            if !expand {
                continue;
            }
            let children = if level == 0 { delta } else { delta - 1 };
            for _ in 0..children {
                edges.push((v, next_id));
                next_frontier.push(next_id);
                next_id += 1;
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    Graph::from_edges(next_id, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tree_shape() {
        let g = complete_regular_tree(3, 3).unwrap();
        assert!(g.is_tree());
        assert_eq!(g.n(), complete_regular_tree_size(3, 3));
        assert_eq!(g.n(), 1 + 3 + 6 + 12);
        // Every non-leaf has degree exactly 3.
        for v in 0..g.n() {
            let d = g.degree(v);
            assert!(d == 3 || d == 1, "node {v} has degree {d}");
        }
        let dist = g.bfs_distances(0);
        assert_eq!(*dist.iter().max().unwrap(), 3);
    }

    #[test]
    fn complete_tree_depth_zero() {
        let g = complete_regular_tree(5, 0).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn size_formula() {
        for delta in 2..6 {
            for depth in 0..5 {
                let g = complete_regular_tree(delta, depth).unwrap();
                assert_eq!(g.n(), complete_regular_tree_size(delta, depth));
            }
        }
    }

    #[test]
    fn random_tree_properties() {
        for seed in 0..5 {
            let g = random_tree(50, 4, seed).unwrap();
            assert!(g.is_tree());
            assert!(g.max_degree() <= 4);
            assert_eq!(g.n(), 50);
        }
    }

    #[test]
    fn random_tree_determinism() {
        let a = random_tree(30, 5, 7).unwrap();
        let b = random_tree(30, 5, 7).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn path_and_star() {
        let p = path(5).unwrap();
        assert!(p.is_tree());
        assert_eq!(p.max_degree(), 2);
        let s = star(6).unwrap();
        assert!(s.is_tree());
        assert_eq!(s.degree(0), 6);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2).unwrap();
        assert!(g.is_tree());
        assert_eq!(g.n(), 4 + 8);
        assert_eq!(g.degree(1), 4); // two spine neighbors + two legs
    }

    #[test]
    fn random_regular_tree_internal_degrees() {
        let g = random_regular_tree(4, 4, 0.5, 3).unwrap();
        assert!(g.is_tree());
        for v in 0..g.n() {
            let d = g.degree(v);
            assert!(d == 4 || d == 1, "node {v} has degree {d}");
        }
    }
}
