//! A centralized exact solver for locally checkable labelings on trees.
//!
//! Problems in the round elimination formalism (paper §2.2) assign a label
//! to every (node, port) pair subject to a node constraint (the multiset of
//! a node's labels) and an edge constraint (the pair on an edge). On trees,
//! feasibility is decidable by bottom-up dynamic programming, and a witness
//! labeling can be extracted top-down. The reproduction uses this to
//! generate valid solutions of `Π_Δ(a,x)`, `Π⁺_Δ(a,x)` and `R̄(R(Π))` for
//! property-testing the paper's 0-round transformations (Lemmas 8, 9, 11).
//!
//! Nodes of degree `d < Δ` (tree leaves/boundary) are handled by the
//! standard convention: their configuration must be a size-`d` sub-multiset
//! of a full configuration ([`LeafPolicy::SubMultiset`]).

use crate::error::{Result, SimError};
use crate::graph::{Graph, NodeId};
use crate::labeling::PortLabeling;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// How node constraints apply to nodes whose degree is below Δ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafPolicy {
    /// A degree-`d` node may use any size-`d` sub-multiset of a full
    /// configuration (the standard boundary convention).
    SubMultiset,
    /// Only degree-Δ nodes are allowed; lower degrees make the instance
    /// infeasible.
    ExactOnly,
}

/// An explicit locally checkable labeling instance.
///
/// # Example
///
/// ```
/// use local_sim::lcl_solver::{LclInstance, LeafPolicy};
/// use local_sim::trees;
///
/// // 2-coloring of edges' endpoints: every node monochromatic, edges bichromatic.
/// let inst = LclInstance::new(
///     2,
///     3,
///     vec![vec![0, 0, 0], vec![1, 1, 1]],
///     |a, b| a != b,
///     LeafPolicy::SubMultiset,
/// ).unwrap();
/// let tree = trees::complete_regular_tree(3, 2).unwrap();
/// let solution = inst.solve(&tree, 42).unwrap();
/// assert!(solution.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct LclInstance {
    num_labels: u8,
    delta: usize,
    /// Full-degree configurations, each a sorted multiset of length `delta`.
    configs: Vec<Vec<u8>>,
    /// `edge_ok[a][b]` — whether the pair `(a, b)` is allowed on an edge.
    edge_ok: Vec<Vec<bool>>,
    leaf_policy: LeafPolicy,
}

impl LclInstance {
    /// Creates an instance from full-degree configurations and an edge
    /// predicate (symmetrized automatically).
    ///
    /// # Errors
    ///
    /// Validates label ranges and configuration lengths.
    pub fn new<F: Fn(u8, u8) -> bool>(
        num_labels: u8,
        delta: usize,
        configs: Vec<Vec<u8>>,
        edge_pred: F,
        leaf_policy: LeafPolicy,
    ) -> Result<Self> {
        if num_labels == 0 {
            return Err(SimError::InvalidParameter { message: "num_labels must be >= 1".into() });
        }
        let mut sorted_configs = Vec::with_capacity(configs.len());
        for mut c in configs {
            if c.len() != delta {
                return Err(SimError::InvalidParameter {
                    message: format!("configuration of length {} for delta {delta}", c.len()),
                });
            }
            if c.iter().any(|&l| l >= num_labels) {
                return Err(SimError::InvalidParameter {
                    message: "configuration label out of range".into(),
                });
            }
            c.sort_unstable();
            sorted_configs.push(c);
        }
        sorted_configs.sort();
        sorted_configs.dedup();
        let edge_ok = (0..num_labels)
            .map(|a| (0..num_labels).map(|b| edge_pred(a, b) || edge_pred(b, a)).collect())
            .collect();
        Ok(LclInstance { num_labels, delta, configs: sorted_configs, edge_ok, leaf_policy })
    }

    /// Number of labels.
    pub fn num_labels(&self) -> u8 {
        self.num_labels
    }

    /// The full degree Δ.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The full-degree configurations.
    pub fn configs(&self) -> &[Vec<u8>] {
        &self.configs
    }

    /// Whether the pair `(a, b)` may appear on an edge.
    pub fn edge_allowed(&self, a: u8, b: u8) -> bool {
        self.edge_ok[a as usize][b as usize]
    }

    /// Allowed configurations for a node of degree `d` under the leaf
    /// policy.
    pub fn configs_for_degree(&self, d: usize) -> Vec<Vec<u8>> {
        if d == self.delta {
            return self.configs.clone();
        }
        match self.leaf_policy {
            LeafPolicy::ExactOnly => Vec::new(),
            LeafPolicy::SubMultiset => {
                let mut out: Vec<Vec<u8>> = Vec::new();
                for c in &self.configs {
                    sub_multisets_of_size(c, d, &mut out);
                }
                out.sort();
                out.dedup();
                out
            }
        }
    }

    /// Decides feasibility on `graph` (must be a tree) and extracts a
    /// witness labeling; `seed` randomizes which witness is returned.
    ///
    /// Returns `Ok(None)` when the instance has no solution on this tree.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotATree`] for non-trees.
    pub fn solve(&self, graph: &Graph, seed: u64) -> Result<Option<PortLabeling>> {
        if graph.n() == 0 {
            return Err(SimError::InvalidParameter { message: "empty graph".into() });
        }
        if !graph.is_tree() {
            return Err(SimError::NotATree);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n = graph.n();
        let (order, parent) = graph.tree_order(0)?;

        // Cache of allowed configs per degree.
        let mut per_degree: HashMap<usize, Vec<Vec<u8>>> = HashMap::new();
        for v in 0..n {
            let d = graph.degree(v);
            per_degree.entry(d).or_insert_with(|| self.configs_for_degree(d));
        }

        // edge_col[b] = bitmask of labels a with edge_ok(a, b).
        let edge_col: Vec<u32> = (0..self.num_labels)
            .map(|b| {
                let mut mask = 0u32;
                for a in 0..self.num_labels {
                    if self.edge_ok[a as usize][b as usize] {
                        mask |= 1 << a;
                    }
                }
                mask
            })
            .collect();

        // Bottom-up: feas[v] = bitmask of labels allowed on v's side of its
        // parent edge.
        let mut feas: Vec<u32> = vec![0; n];
        for &v in order.iter().rev() {
            let children: Vec<NodeId> =
                graph.neighbors(v).filter(|&u| parent[v] != u && parent[u] == v).collect();
            // Labels v may put on the edge toward child c, given c's feas.
            let child_allowed: Vec<u32> = children
                .iter()
                .map(|&c| {
                    let mut mask = 0u32;
                    let mut f = feas[c];
                    while f != 0 {
                        let gamma = f.trailing_zeros() as usize;
                        f &= f - 1;
                        mask |= edge_col[gamma];
                    }
                    mask
                })
                .collect();
            let cfgs = &per_degree[&graph.degree(v)];
            if parent[v] == usize::MAX {
                // Root: feasibility only.
                let ok =
                    cfgs.iter().any(|c| assign_multiset_to_children(c, &child_allowed).is_some());
                if !ok {
                    return Ok(None);
                }
                feas[v] = 1; // sentinel: root feasible
            } else {
                let mut mask = 0u32;
                for cfg in cfgs {
                    for &alpha in distinct(cfg).iter() {
                        if mask & (1 << alpha) != 0 {
                            continue;
                        }
                        let remaining = remove_one(cfg, alpha);
                        if assign_multiset_to_children(&remaining, &child_allowed).is_some() {
                            mask |= 1 << alpha;
                        }
                    }
                }
                if mask == 0 {
                    return Ok(None);
                }
                feas[v] = mask;
            }
        }

        // Top-down reconstruction.
        let mut labels: Vec<Vec<u8>> = (0..n).map(|v| vec![0u8; graph.degree(v)]).collect();
        // fixed_parent_label[v] = the label v must place on its parent edge.
        let mut fixed: Vec<Option<u8>> = vec![None; n];
        for &v in &order {
            let children: Vec<(usize, NodeId)> = graph
                .ports(v)
                .iter()
                .enumerate()
                .filter(|(_, t)| parent[v] != t.node && parent[t.node] == v)
                .map(|(p, t)| (p, t.node))
                .collect();
            let child_allowed: Vec<u32> = children
                .iter()
                .map(|&(_, c)| {
                    let mut mask = 0u32;
                    let mut f = feas[c];
                    while f != 0 {
                        let gamma = f.trailing_zeros() as usize;
                        f &= f - 1;
                        mask |= edge_col[gamma];
                    }
                    mask
                })
                .collect();
            let mut cfgs = per_degree[&graph.degree(v)].clone();
            cfgs.shuffle(&mut rng);
            let mut done = false;
            for cfg in &cfgs {
                let (remaining, parent_port) = match fixed[v] {
                    None => (cfg.clone(), None),
                    Some(alpha) => {
                        if !cfg.contains(&alpha) {
                            continue;
                        }
                        let pp = graph
                            .ports(v)
                            .iter()
                            .position(|t| t.node == parent[v])
                            .expect("parent port");
                        (remove_one(cfg, alpha), Some((pp, alpha)))
                    }
                };
                if let Some(assignment) = assign_multiset_to_children(&remaining, &child_allowed) {
                    if let Some((pp, alpha)) = parent_port {
                        labels[v][pp] = alpha;
                    }
                    for (i, &(port, child)) in children.iter().enumerate() {
                        let beta = assignment[i];
                        labels[v][port] = beta;
                        // Choose the child's side: any gamma in feas[child]
                        // compatible with beta (randomized).
                        let mut options: Vec<u8> = (0..self.num_labels)
                            .filter(|&g| {
                                feas[child] & (1 << g) != 0
                                    && self.edge_ok[beta as usize][g as usize]
                            })
                            .collect();
                        options.shuffle(&mut rng);
                        fixed[child] = Some(*options.first().expect("feasible child label"));
                    }
                    done = true;
                    break;
                }
            }
            assert!(done, "reconstruction must succeed after feasibility passed");
        }

        Ok(Some(PortLabeling::from_vecs(graph, labels).expect("shape matches")))
    }

    /// Checks a labeling against this instance.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(
        &self,
        graph: &Graph,
        labeling: &PortLabeling,
    ) -> std::result::Result<(), LclViolation> {
        for v in 0..graph.n() {
            let cfg = labeling.node_config(v);
            let allowed = self.configs_for_degree(graph.degree(v));
            if !allowed.contains(&cfg) {
                return Err(LclViolation::NodeConfig { node: v, config: cfg });
            }
        }
        for e in 0..graph.m() {
            let (a, b) = labeling.edge_labels(graph, e);
            if !self.edge_ok[a as usize][b as usize] {
                return Err(LclViolation::EdgePair { edge: e, a, b });
            }
        }
        Ok(())
    }
}

/// A violation of an LCL instance by a labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LclViolation {
    /// A node's label multiset is not an allowed configuration.
    NodeConfig {
        /// The offending node.
        node: NodeId,
        /// Its (sorted) configuration.
        config: Vec<u8>,
    },
    /// An edge carries a disallowed label pair.
    EdgePair {
        /// The offending edge id.
        edge: usize,
        /// Label on the lower endpoint's side.
        a: u8,
        /// Label on the higher endpoint's side.
        b: u8,
    },
}

impl std::fmt::Display for LclViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LclViolation::NodeConfig { node, config } => {
                write!(f, "node {node} has disallowed configuration {config:?}")
            }
            LclViolation::EdgePair { edge, a, b } => {
                write!(f, "edge {edge} carries disallowed pair ({a}, {b})")
            }
        }
    }
}

impl std::error::Error for LclViolation {}

fn distinct(cfg: &[u8]) -> Vec<u8> {
    let mut d: Vec<u8> = cfg.to_vec();
    d.dedup();
    d
}

fn remove_one(cfg: &[u8], label: u8) -> Vec<u8> {
    let mut out = cfg.to_vec();
    let pos = out.iter().position(|&l| l == label).expect("label present");
    out.remove(pos);
    out
}

/// All size-`k` sub-multisets of the sorted multiset `cfg`, appended to
/// `out`.
fn sub_multisets_of_size(cfg: &[u8], k: usize, out: &mut Vec<Vec<u8>>) {
    // Group into (label, count).
    let mut groups: Vec<(u8, usize)> = Vec::new();
    for &l in cfg {
        match groups.last_mut() {
            Some((g, c)) if *g == l => *c += 1,
            _ => groups.push((l, 1)),
        }
    }
    fn rec(groups: &[(u8, usize)], i: usize, k: usize, cur: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if k == 0 {
            out.push(cur.clone());
            return;
        }
        if i >= groups.len() {
            return;
        }
        let remaining: usize = groups[i..].iter().map(|&(_, c)| c).sum();
        if remaining < k {
            return;
        }
        let (label, count) = groups[i];
        for take in (0..=count.min(k)).rev() {
            for _ in 0..take {
                cur.push(label);
            }
            rec(groups, i + 1, k - take, cur, out);
            for _ in 0..take {
                cur.pop();
            }
        }
    }
    let mut cur = Vec::new();
    rec(&groups, 0, k, &mut cur, out);
}

/// Assigns the multiset `remaining` to children with per-child allowed-label
/// bitmasks; returns per-child labels, or `None` if infeasible.
/// (Kuhn's augmenting-path matching: children ↔ label occurrences.)
fn assign_multiset_to_children(remaining: &[u8], child_allowed: &[u32]) -> Option<Vec<u8>> {
    if remaining.len() != child_allowed.len() {
        return None;
    }
    let k = remaining.len();
    if k == 0 {
        return Some(Vec::new());
    }
    // match_of[slot] = child currently holding label-slot `slot`.
    let mut match_of: Vec<Option<usize>> = vec![None; k];
    for child in 0..k {
        let mut visited = vec![false; k];
        if !augment(child, remaining, child_allowed, &mut match_of, &mut visited) {
            return None;
        }
    }
    let mut result = vec![0u8; k];
    for (slot, holder) in match_of.iter().enumerate() {
        result[holder.expect("perfect matching")] = remaining[slot];
    }
    Some(result)
}

fn augment(
    child: usize,
    remaining: &[u8],
    child_allowed: &[u32],
    match_of: &mut Vec<Option<usize>>,
    visited: &mut Vec<bool>,
) -> bool {
    for slot in 0..remaining.len() {
        if visited[slot] || child_allowed[child] & (1 << remaining[slot]) == 0 {
            continue;
        }
        visited[slot] = true;
        if match_of[slot].is_none()
            || augment(
                match_of[slot].expect("occupied"),
                remaining,
                child_allowed,
                match_of,
                visited,
            )
        {
            match_of[slot] = Some(child);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees;

    fn mis_instance(delta: usize) -> LclInstance {
        // Labels: 0 = M, 1 = P, 2 = O. Node: M^Δ or P O^{Δ-1}.
        let mut configs = vec![vec![0; delta]];
        let mut po = vec![1];
        po.extend(std::iter::repeat_n(2, delta - 1));
        configs.push(po);
        LclInstance::new(
            3,
            delta,
            configs,
            |a, b| matches!((a.min(b), a.max(b)), (0, 1) | (0, 2) | (2, 2)),
            LeafPolicy::SubMultiset,
        )
        .unwrap()
    }

    #[test]
    fn mis_solvable_on_regular_tree() {
        let inst = mis_instance(3);
        let g = trees::complete_regular_tree(3, 3).unwrap();
        let sol = inst.solve(&g, 7).unwrap().expect("MIS labeling exists");
        inst.check(&g, &sol).unwrap();
    }

    #[test]
    fn mis_solvable_on_random_trees() {
        for seed in 0..5 {
            let g = trees::random_tree(40, 4, seed).unwrap();
            let inst = mis_instance(4);
            let sol = inst.solve(&g, seed).unwrap().expect("solvable");
            inst.check(&g, &sol).unwrap();
        }
    }

    #[test]
    fn randomization_varies_witness() {
        let inst = mis_instance(3);
        let g = trees::complete_regular_tree(3, 4).unwrap();
        let a = inst.solve(&g, 1).unwrap().unwrap();
        let b = inst.solve(&g, 2).unwrap().unwrap();
        // Not guaranteed in general, but with 46 nodes the witnesses differ
        // for these seeds (determinism makes this stable).
        assert_ne!(a, b);
        inst.check(&g, &a).unwrap();
        inst.check(&g, &b).unwrap();
    }

    #[test]
    fn infeasible_detected() {
        // Two labels that cannot share an edge at all -> infeasible on any
        // graph with an edge.
        let inst = LclInstance::new(
            2,
            2,
            vec![vec![0, 0], vec![1, 1]],
            |_, _| false,
            LeafPolicy::SubMultiset,
        )
        .unwrap();
        let g = trees::path(3).unwrap();
        assert_eq!(inst.solve(&g, 0).unwrap(), None);
    }

    #[test]
    fn exact_only_policy() {
        let inst = LclInstance::new(1, 3, vec![vec![0, 0, 0]], |_, _| true, LeafPolicy::ExactOnly)
            .unwrap();
        // A star with 3 leaves: leaves have degree 1 -> infeasible.
        let g = trees::star(3).unwrap();
        assert_eq!(inst.solve(&g, 0).unwrap(), None);
    }

    #[test]
    fn sub_multiset_configs() {
        let inst = mis_instance(3);
        let d1 = inst.configs_for_degree(1);
        // From MMM: [M]; from POO: [P], [O].
        assert_eq!(d1.len(), 3);
        let d2 = inst.configs_for_degree(2);
        // From MMM: MM; from POO: PO, OO.
        assert_eq!(d2.len(), 3);
    }

    #[test]
    fn checker_rejects_bad_labelings() {
        let inst = mis_instance(3);
        let g = trees::complete_regular_tree(3, 2).unwrap();
        let mut sol = inst.solve(&g, 0).unwrap().unwrap();
        // Corrupt: overwrite node 0's labels with an invalid configuration.
        sol.set(0, 0, 0);
        sol.set(0, 1, 1);
        sol.set(0, 2, 1);
        assert!(inst.check(&g, &sol).is_err());
    }

    #[test]
    fn two_coloring_of_path() {
        // Node constraint: monochromatic; edge: bichromatic => proper
        // 2-coloring of the path's nodes.
        let inst = LclInstance::new(
            2,
            2,
            vec![vec![0, 0], vec![1, 1]],
            |a, b| a != b,
            LeafPolicy::SubMultiset,
        )
        .unwrap();
        let g = trees::path(6).unwrap();
        let sol = inst.solve(&g, 3).unwrap().expect("2-colorable");
        inst.check(&g, &sol).unwrap();
        // Adjacent nodes have different (uniform) labels.
        for &(u, v) in g.edges() {
            assert_ne!(sol.node_labels(u)[0], sol.node_labels(v)[0]);
        }
    }
}
