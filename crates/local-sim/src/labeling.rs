//! Per-(node, port) labelings — the output format of locally checkable
//! problems in the round elimination formalism (paper §2.2).

use crate::error::{Result, SimError};
use crate::graph::{Graph, NodeId};

/// An assignment of one label (a small integer) to every (node, port) pair.
///
/// In the round elimination formalism a solution assigns an element of Σ to
/// each (node, incident edge) pair; this type stores it port-indexed.
///
/// # Example
///
/// ```
/// use local_sim::{trees, PortLabeling};
///
/// let g = trees::path(3).unwrap();
/// let mut lab = PortLabeling::uniform(&g, 0);
/// lab.set(1, 0, 2);
/// assert_eq!(lab.get(1, 0), 2);
/// assert_eq!(lab.get(0, 0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortLabeling {
    labels: Vec<Vec<u8>>,
}

impl PortLabeling {
    /// Creates a labeling with every port labeled `label`.
    pub fn uniform(graph: &Graph, label: u8) -> Self {
        PortLabeling { labels: (0..graph.n()).map(|v| vec![label; graph.degree(v)]).collect() }
    }

    /// Creates a labeling from explicit per-node, per-port labels.
    ///
    /// # Errors
    ///
    /// Checks that the shape matches the graph.
    pub fn from_vecs(graph: &Graph, labels: Vec<Vec<u8>>) -> Result<Self> {
        if labels.len() != graph.n() {
            return Err(SimError::InvalidParameter {
                message: format!("{} label rows for {} nodes", labels.len(), graph.n()),
            });
        }
        for (v, row) in labels.iter().enumerate() {
            if row.len() != graph.degree(v) {
                return Err(SimError::InvalidParameter {
                    message: format!(
                        "node {v} has {} labels for degree {}",
                        row.len(),
                        graph.degree(v)
                    ),
                });
            }
        }
        Ok(PortLabeling { labels })
    }

    /// The label at `(v, port)`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn get(&self, v: NodeId, port: usize) -> u8 {
        self.labels[v][port]
    }

    /// Sets the label at `(v, port)`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn set(&mut self, v: NodeId, port: usize, label: u8) {
        self.labels[v][port] = label;
    }

    /// All labels of node `v`, port-indexed.
    pub fn node_labels(&self, v: NodeId) -> &[u8] {
        &self.labels[v]
    }

    /// The sorted multiset of labels at node `v` (its *configuration*).
    pub fn node_config(&self, v: NodeId) -> Vec<u8> {
        let mut c = self.labels[v].clone();
        c.sort_unstable();
        c
    }

    /// The two labels on edge `e`, as `(label at u side, label at v side)`
    /// for the canonical `(u, v)` with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge_labels(&self, graph: &Graph, e: usize) -> (u8, u8) {
        let (u, v) = graph.edges()[e];
        let pu = graph.port_of_edge(u, e).expect("endpoint");
        let pv = graph.port_of_edge(v, e).expect("endpoint");
        (self.labels[u][pu], self.labels[v][pv])
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the labeling covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Applies `f` to every label in place.
    pub fn map_in_place<F: Fn(u8) -> u8>(&mut self, f: F) {
        for row in &mut self.labels {
            for l in row {
                *l = f(*l);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees;

    #[test]
    fn shape_validation() {
        let g = trees::path(3).unwrap();
        assert!(PortLabeling::from_vecs(&g, vec![vec![0], vec![0, 0], vec![0]]).is_ok());
        assert!(PortLabeling::from_vecs(&g, vec![vec![0], vec![0], vec![0]]).is_err());
        assert!(PortLabeling::from_vecs(&g, vec![vec![0], vec![0, 0]]).is_err());
    }

    #[test]
    fn edge_labels_orientation() {
        let g = trees::path(3).unwrap();
        let mut lab = PortLabeling::uniform(&g, 0);
        lab.set(0, 0, 1); // node 0's side of edge (0,1)
        lab.set(1, 0, 2); // node 1's side of edge (0,1)
        assert_eq!(lab.edge_labels(&g, 0), (1, 2));
    }

    #[test]
    fn node_config_sorted() {
        let g = trees::star(3).unwrap();
        let mut lab = PortLabeling::uniform(&g, 5);
        lab.set(0, 1, 2);
        assert_eq!(lab.node_config(0), vec![2, 5, 5]);
    }
}
