//! Proper edge colorings.
//!
//! The paper's key trick (Lemma 9) assumes a Δ-edge coloring is given as
//! input: a coloring of the edges such that no two edges sharing an endpoint
//! have the same color. Trees are Δ-edge-colorable (Vizing class 1), and a
//! simple BFS construction achieves it.

use crate::error::{Result, SimError};
use crate::graph::{Graph, NodeId};

/// A proper edge coloring, stored per edge id.
///
/// # Example
///
/// ```
/// use local_sim::{trees, edge_coloring};
///
/// let g = trees::complete_regular_tree(3, 3).unwrap();
/// let col = edge_coloring::tree_edge_coloring(&g).unwrap();
/// assert_eq!(col.num_colors(), 3);
/// assert!(edge_coloring::is_proper(&g, &col));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    colors: Vec<usize>,
    num_colors: usize,
}

impl EdgeColoring {
    /// Creates an edge coloring from explicit per-edge colors.
    pub fn new(colors: Vec<usize>) -> Self {
        let num_colors = colors.iter().map(|&c| c + 1).max().unwrap_or(0);
        EdgeColoring { colors, num_colors }
    }

    /// The color of edge `e`.
    pub fn color(&self, e: usize) -> usize {
        self.colors[e]
    }

    /// Number of colors used (max color + 1).
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Per-edge colors.
    pub fn as_slice(&self) -> &[usize] {
        &self.colors
    }

    /// The color of the edge at `(v, port)`.
    pub fn color_at(&self, graph: &Graph, v: NodeId, port: usize) -> usize {
        self.colors[graph.port_target(v, port).edge]
    }

    /// For node `v`, the port carrying color `c`, if any. In a Δ-edge-colored
    /// Δ-regular tree, every internal node has exactly one port per color.
    pub fn port_with_color(&self, graph: &Graph, v: NodeId, c: usize) -> Option<usize> {
        (0..graph.degree(v)).find(|&p| self.color_at(graph, v, p) == c)
    }
}

/// Computes a proper Δ-edge coloring of a tree by BFS: each node colors its
/// child edges with the smallest colors distinct from its parent edge color
/// and from each other.
///
/// # Errors
///
/// Returns [`SimError::NotATree`] for non-trees.
pub fn tree_edge_coloring(graph: &Graph) -> Result<EdgeColoring> {
    if graph.n() == 1 {
        return Ok(EdgeColoring { colors: Vec::new(), num_colors: 0 });
    }
    let (order, parent) = graph.tree_order(0)?;
    let mut colors = vec![usize::MAX; graph.m()];
    for &v in &order {
        // Color of the parent edge (if any).
        let parent_color = if parent[v] == usize::MAX {
            usize::MAX
        } else {
            let pe = graph
                .ports(v)
                .iter()
                .find(|t| t.node == parent[v])
                .expect("parent is a neighbor")
                .edge;
            colors[pe]
        };
        let mut next = 0usize;
        for t in graph.ports(v) {
            if t.node == parent[v] {
                continue;
            }
            if next == parent_color {
                next += 1;
            }
            colors[t.edge] = next;
            next += 1;
        }
    }
    debug_assert!(colors.iter().all(|&c| c != usize::MAX));
    Ok(EdgeColoring::new(colors))
}

/// Whether `coloring` is a proper edge coloring of `graph`.
pub fn is_proper(graph: &Graph, coloring: &EdgeColoring) -> bool {
    for v in 0..graph.n() {
        let mut seen = std::collections::HashSet::new();
        for t in graph.ports(v) {
            if !seen.insert(coloring.color(t.edge)) {
                return false;
            }
        }
    }
    true
}

/// The *identified-ports* port numbering used by the paper's 0-round gadget
/// (Lemmas 12, 15): re-derive a port numbering in which every edge of color
/// `c` uses port `c` at **both** endpoints. Returns, per node, the
/// permutation `perm[v][new_port] = old_port` (only total for nodes of full
/// degree Δ).
///
/// # Errors
///
/// Fails if the coloring is not proper.
pub fn identified_ports(graph: &Graph, coloring: &EdgeColoring) -> Result<Vec<Vec<Option<usize>>>> {
    if !is_proper(graph, coloring) {
        return Err(SimError::InvalidParameter {
            message: "identified_ports requires a proper edge coloring".into(),
        });
    }
    let k = coloring.num_colors();
    let mut perm = Vec::with_capacity(graph.n());
    for v in 0..graph.n() {
        let mut row = vec![None; k];
        for (p, t) in graph.ports(v).iter().enumerate() {
            row[coloring.color(t.edge)] = Some(p);
        }
        perm.push(row);
    }
    Ok(perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees;

    #[test]
    fn complete_tree_uses_delta_colors() {
        for delta in 2..6 {
            let g = trees::complete_regular_tree(delta, 3).unwrap();
            let col = tree_edge_coloring(&g).unwrap();
            assert!(is_proper(&g, &col), "improper for delta={delta}");
            assert_eq!(col.num_colors(), delta);
        }
    }

    #[test]
    fn random_trees_proper() {
        for seed in 0..5 {
            let g = trees::random_tree(60, 5, seed).unwrap();
            let col = tree_edge_coloring(&g).unwrap();
            assert!(is_proper(&g, &col));
            assert!(col.num_colors() <= g.max_degree());
        }
    }

    #[test]
    fn single_node() {
        let g = trees::complete_regular_tree(3, 0).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        assert_eq!(col.num_colors(), 0);
    }

    #[test]
    fn color_at_and_port_with_color() {
        let g = trees::complete_regular_tree(3, 2).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        for v in 0..g.n() {
            for p in 0..g.degree(v) {
                let c = col.color_at(&g, v, p);
                assert_eq!(col.port_with_color(&g, v, c), Some(p));
            }
        }
    }

    #[test]
    fn identified_ports_consistency() {
        let g = trees::complete_regular_tree(3, 2).unwrap();
        let col = tree_edge_coloring(&g).unwrap();
        let perm = identified_ports(&g, &col).unwrap();
        // For every edge of color c, both endpoints map new-port c to it.
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let c = col.color(e);
            let pu = perm[u][c].unwrap();
            let pv = perm[v][c].unwrap();
            assert_eq!(g.port_target(u, pu).edge, e);
            assert_eq!(g.port_target(v, pv).edge, e);
        }
    }

    #[test]
    fn improper_coloring_rejected() {
        let g = trees::path(3).unwrap();
        let bad = EdgeColoring::new(vec![0, 0]);
        assert!(!is_proper(&g, &bad));
        assert!(identified_ports(&g, &bad).is_err());
    }
}
