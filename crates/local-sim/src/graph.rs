//! Port-numbered graphs.
//!
//! In the port numbering model (paper §2.1) each node `v` privately numbers
//! its incident edges `0..deg(v)`; an algorithm addresses neighbors only
//! through ports. [`Graph`] stores, for every `(node, port)`, the neighbor,
//! the *reverse port* (the port under which the neighbor sees this node) and
//! the global edge id.

use crate::error::{Result, SimError};
use std::collections::VecDeque;

/// Index of a node, in `0..n`.
pub type NodeId = usize;

/// What a port connects to: the neighbor, the reverse port, and the edge id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortTarget {
    /// The neighbor reached through this port.
    pub node: NodeId,
    /// The port under which the neighbor sees this node.
    pub port: usize,
    /// Global edge identifier (index into [`Graph::edges`]).
    pub edge: usize,
}

/// An undirected simple graph with a fixed port numbering.
///
/// # Example
///
/// ```
/// use local_sim::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbor(0, 0), 1);
/// assert!(g.is_tree());
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    ports: Vec<Vec<PortTarget>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph from an edge list. Ports are numbered in the order the
    /// edges are listed (first edge mentioning a node becomes its port 0).
    ///
    /// # Errors
    ///
    /// Rejects endpoints `≥ n`, self-loops, and duplicate edges.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut ports: Vec<Vec<PortTarget>> = vec![Vec::new(); n];
        let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());
        let mut seen = std::collections::HashSet::new();
        for (idx, &(u, v)) in edges.iter().enumerate() {
            if u >= n {
                return Err(SimError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(SimError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(SimError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(SimError::DuplicateEdge { u, v });
            }
            canon.push(key);
            let pu = ports[u].len();
            let pv = ports[v].len();
            ports[u].push(PortTarget { node: v, port: pv, edge: idx });
            ports[v].push(PortTarget { node: u, port: pu, edge: idx });
        }
        Ok(Graph { ports, edges: canon })
    }

    /// Builds the cycle `0 — 1 — … — n−1 — 0` (the 2-regular graph used by
    /// the Δ = 2 experiments: Cole–Vishkin coloring, MIS on cycles).
    ///
    /// By the edge-listing order, node `v ≥ 1` has port 0 toward its
    /// predecessor `v−1` and port 1 toward `(v+1) mod n`, while node 0 has
    /// port 0 toward node 1 and port 1 toward `n−1`.
    ///
    /// # Errors
    ///
    /// Requires `n ≥ 3` (smaller rings have duplicate edges).
    pub fn cycle(n: usize) -> Result<Self> {
        if n < 3 {
            return Err(SimError::InvalidParameter {
                message: format!("cycle needs n >= 3, got {n}"),
            });
        }
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Self::from_edges(n, &edges)
    }

    /// The line graph `L(G)`: one node per edge of `G`, adjacent iff the
    /// edges share an endpoint. Node `e` of the result corresponds to
    /// `self.edges()[e]`.
    ///
    /// The paper's §1 uses this correspondence throughout: an MIS of
    /// `L(G)` is a maximal matching of `G`, and b-matchings of `G` are
    /// b-outdegree-style relaxations on `L(G)`.
    pub fn line_graph(&self) -> Graph {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 0..self.n() {
            let incident: Vec<usize> = self.ports[v].iter().map(|t| t.edge).collect();
            for i in 0..incident.len() {
                for j in (i + 1)..incident.len() {
                    let (a, b) = (incident[i].min(incident[j]), incident[i].max(incident[j]));
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Graph::from_edges(self.m(), &edges).expect("line graph edges are valid by construction")
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.ports.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list; `edges()[e] = (u, v)` with `u < v`.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.ports[v].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.ports.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The neighbor of `v` through port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ degree(v)`.
    pub fn neighbor(&self, v: NodeId, p: usize) -> NodeId {
        self.ports[v][p].node
    }

    /// Full port information for `(v, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ degree(v)`.
    pub fn port_target(&self, v: NodeId, p: usize) -> PortTarget {
        self.ports[v][p]
    }

    /// All ports of `v`, in port order.
    pub fn ports(&self, v: NodeId) -> &[PortTarget] {
        &self.ports[v]
    }

    /// Iterates over the neighbors of `v` in port order.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.ports[v].iter().map(|t| t.node)
    }

    /// The port of `v` whose edge id is `e`, if incident.
    pub fn port_of_edge(&self, v: NodeId, e: usize) -> Option<usize> {
        self.ports[v].iter().position(|t| t.edge == e)
    }

    /// The other endpoint of edge `e` as seen from `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: usize, v: NodeId) -> NodeId {
        let (a, b) = self.edges[e];
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for t in &self.ports[u] {
                if !seen[t.node] {
                    seen[t.node] = true;
                    count += 1;
                    queue.push_back(t.node);
                }
            }
        }
        count == n
    }

    /// Whether the graph is a tree (connected and `m = n − 1`).
    pub fn is_tree(&self) -> bool {
        self.n() > 0 && self.m() == self.n() - 1 && self.is_connected()
    }

    /// BFS distances from `root` (`usize::MAX` for unreachable nodes).
    pub fn bfs_distances(&self, root: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n()];
        let mut queue = VecDeque::from([root]);
        dist[root] = 0;
        while let Some(u) = queue.pop_front() {
            for t in &self.ports[u] {
                if dist[t.node] == usize::MAX {
                    dist[t.node] = dist[u] + 1;
                    queue.push_back(t.node);
                }
            }
        }
        dist
    }

    /// A BFS ordering of the tree from `root` with each node's parent;
    /// `parent[root] = usize::MAX`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotATree`] if the graph is not a tree.
    pub fn tree_order(&self, root: NodeId) -> Result<(Vec<NodeId>, Vec<NodeId>)> {
        if !self.is_tree() {
            return Err(SimError::NotATree);
        }
        let mut order = Vec::with_capacity(self.n());
        let mut parent = vec![usize::MAX; self.n()];
        let mut seen = vec![false; self.n()];
        let mut queue = VecDeque::from([root]);
        seen[root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for t in &self.ports[u] {
                if !seen[t.node] {
                    seen[t.node] = true;
                    parent[t.node] = u;
                    queue.push_back(t.node);
                }
            }
        }
        Ok((order, parent))
    }

    /// The `r`-th power of the graph: same nodes, an edge between every
    /// pair at distance `1..=r`. Used for ruling-set constructions
    /// (an MIS of `G^r` is an `(r+1, r)`-ruling set of `G`).
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn power(&self, r: usize) -> Graph {
        assert!(r >= 1, "graph power requires r >= 1");
        let mut edges = Vec::new();
        for v in 0..self.n() {
            // BFS to depth r.
            let mut dist = vec![usize::MAX; self.n()];
            dist[v] = 0;
            let mut queue = VecDeque::from([v]);
            while let Some(u) = queue.pop_front() {
                if dist[u] == r {
                    continue;
                }
                for t in &self.ports[u] {
                    if dist[t.node] == usize::MAX {
                        dist[t.node] = dist[u] + 1;
                        queue.push_back(t.node);
                    }
                }
            }
            for (u, &d) in dist.iter().enumerate().skip(v + 1) {
                if d != usize::MAX && d >= 1 && d <= r {
                    edges.push((v, u));
                }
            }
        }
        Graph::from_edges(self.n(), &edges).expect("power graph is simple")
    }

    /// Girth of the graph (length of a shortest cycle), or `None` for
    /// forests. O(n·m); intended for validation on small graphs.
    pub fn girth(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for start in 0..self.n() {
            // BFS recording parent edges; a non-tree edge closes a cycle.
            let mut dist = vec![usize::MAX; self.n()];
            let mut parent_edge = vec![usize::MAX; self.n()];
            dist[start] = 0;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for t in &self.ports[u] {
                    if t.edge == parent_edge[u] {
                        continue;
                    }
                    if dist[t.node] == usize::MAX {
                        dist[t.node] = dist[u] + 1;
                        parent_edge[t.node] = t.edge;
                        queue.push_back(t.node);
                    } else {
                        let cycle = dist[u] + dist[t.node] + 1;
                        best = Some(best.map_or(cycle, |b| b.min(cycle)));
                    }
                }
            }
        }
        best
    }
}

/// Direction of an oriented edge relative to its canonical `(u, v)` pair
/// (`u < v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeDir {
    /// Oriented from `u` to `v` (the canonical lower to higher endpoint).
    Forward,
    /// Oriented from `v` to `u`.
    Backward,
}

/// An orientation of (a subset of) the edges of a graph.
///
/// Unoriented edges are represented as `None`; the k-outdegree dominating
/// set problem only requires orienting the edges *inside* the dominating set
/// (paper §1, definition of k-outdegree dominating sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    dirs: Vec<Option<EdgeDir>>,
}

impl Orientation {
    /// Creates an all-unoriented orientation for a graph with `m` edges.
    pub fn unoriented(m: usize) -> Self {
        Orientation { dirs: vec![None; m] }
    }

    /// Creates an orientation from explicit per-edge directions.
    pub fn new(dirs: Vec<Option<EdgeDir>>) -> Self {
        Orientation { dirs }
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// Whether the orientation covers no edges.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// The direction assigned to edge `e`.
    pub fn dir(&self, e: usize) -> Option<EdgeDir> {
        self.dirs[e]
    }

    /// Orients edge `e` as going *out of* node `from` (an endpoint).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `e`.
    pub fn orient_out_of(&mut self, graph: &Graph, e: usize, from: NodeId) {
        let (u, v) = graph.edges()[e];
        self.dirs[e] = if from == u {
            Some(EdgeDir::Forward)
        } else {
            assert_eq!(from, v, "node {from} is not an endpoint of edge {e}");
            Some(EdgeDir::Backward)
        };
    }

    /// Whether edge `e` is oriented out of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn is_out_of(&self, graph: &Graph, e: usize, v: NodeId) -> bool {
        let (u, w) = graph.edges()[e];
        match self.dirs[e] {
            Some(EdgeDir::Forward) => v == u,
            Some(EdgeDir::Backward) => {
                assert!(v == u || v == w, "node {v} is not an endpoint of edge {e}");
                v == w
            }
            None => false,
        }
    }

    /// Out-degree of `v` counting only edges whose *other* endpoint satisfies
    /// `filter` (used to restrict to the induced subgraph of a set).
    pub fn out_degree_filtered<F: Fn(NodeId) -> bool>(
        &self,
        graph: &Graph,
        v: NodeId,
        filter: F,
    ) -> usize {
        graph.ports(v).iter().filter(|t| filter(t.node) && self.is_out_of(graph, t.edge, v)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_ports() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        let t = g.port_target(0, 1);
        assert_eq!(t.node, 2);
        // Reverse port consistency.
        let back = g.port_target(t.node, t.port);
        assert_eq!(back.node, 0);
        assert_eq!(back.port, 1);
        assert_eq!(back.edge, t.edge);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(SimError::NodeOutOfRange { node: 2, n: 2 })
        ));
        assert!(matches!(Graph::from_edges(2, &[(1, 1)]), Err(SimError::SelfLoop { node: 1 })));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1), (1, 0)]),
            Err(SimError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn connectivity_and_tree() {
        let tree = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(tree.is_tree());
        let forest = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!forest.is_connected());
        assert!(!forest.is_tree());
        let cycle = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(cycle.is_connected());
        assert!(!cycle.is_tree());
    }

    #[test]
    fn girth_detection() {
        let tree = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(tree.girth(), None);
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(c5.girth(), Some(5));
        let k3 = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(k3.girth(), Some(3));
    }

    #[test]
    fn bfs_and_tree_order() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 2, 3]);
        let (order, parent) = g.tree_order(0).unwrap();
        assert_eq!(order[0], 0);
        assert_eq!(parent[0], usize::MAX);
        assert_eq!(parent[4], 3);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn power_graph_distances() {
        let p5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let p2 = p5.power(2);
        // Path^2: edges between nodes at distance 1 or 2.
        assert_eq!(p2.m(), 4 + 3);
        assert!(p2.neighbors(0).any(|u| u == 2));
        assert!(!p2.neighbors(0).any(|u| u == 3));
        let p4 = p5.power(4);
        // Distance <= 4 connects everything: complete graph on 5 nodes.
        assert_eq!(p4.m(), 10);
    }

    #[test]
    fn power_one_is_identity_shape() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap();
        let p1 = g.power(1);
        assert_eq!(p1.m(), g.m());
        for v in 0..g.n() {
            assert_eq!(p1.degree(v), g.degree(v));
        }
    }

    #[test]
    fn orientation_out_degree() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut o = Orientation::unoriented(g.m());
        o.orient_out_of(&g, 0, 1); // edge (0,1) out of 1
        o.orient_out_of(&g, 1, 1); // edge (1,2) out of 1
        assert_eq!(o.out_degree_filtered(&g, 1, |_| true), 2);
        assert_eq!(o.out_degree_filtered(&g, 0, |_| true), 0);
        assert_eq!(o.out_degree_filtered(&g, 1, |u| u == 2), 1);
        assert!(o.is_out_of(&g, 0, 1));
        assert!(!o.is_out_of(&g, 0, 0));
    }
}
