//! Synchronous execution of distributed algorithms (the LOCAL / PN models).
//!
//! In the LOCAL model (paper §2.1) computation proceeds in synchronous
//! rounds: every node sends a message to each neighbor, receives the
//! messages of its neighbors, and updates its state; message size and local
//! computation are unbounded. The *time complexity* is the number of rounds
//! until all nodes have produced their local output.
//!
//! [`run`] executes a [`SyncAlgorithm`] and reports the outputs together
//! with the exact number of rounds consumed (the maximum over nodes of the
//! number of send/receive cycles before halting).

use crate::error::{Result, SimError};
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Static, per-node information available from round 0.
///
/// In the port-numbering model `id` is `None`; in the LOCAL model it carries
/// a globally unique identifier. `edge_colors`, when present, is the color
/// of the edge behind each port (the paper's Δ-edge-coloring input).
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The node's unique identifier (LOCAL model), or `None` (PN model).
    pub id: Option<u64>,
    /// Degree of the node = number of ports.
    pub degree: usize,
    /// Total number of nodes (global knowledge, as in the LOCAL model).
    pub n: usize,
    /// Maximum degree Δ of the graph (global knowledge).
    pub max_degree: usize,
    /// Per-port edge colors, if an edge coloring is provided as input.
    pub edge_colors: Option<Vec<usize>>,
}

/// Decision returned by [`SyncAlgorithm::receive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status<O> {
    /// Keep participating in subsequent rounds.
    Continue,
    /// Halt with the given local output; the node stays silent afterwards.
    Done(O),
}

/// A distributed algorithm, instantiated once per node.
///
/// The runner drives each round as `send` (one message per port) followed by
/// `receive` (one `Option<Message>` per port — `None` if the neighbor has
/// already halted). A node halts by returning [`Status::Done`].
pub trait SyncAlgorithm: Sized {
    /// Per-node input (e.g. a prior coloring); use `()` when not needed.
    type Input;
    /// Message type exchanged on edges.
    type Message: Clone;
    /// Local output type.
    type Output;

    /// Creates the initial state of a node.
    fn init(info: &NodeInfo, input: &Self::Input, rng: &mut StdRng) -> Self;

    /// Produces this round's outgoing messages, one per port.
    fn send(&mut self, info: &NodeInfo) -> Vec<Self::Message>;

    /// Consumes this round's incoming messages (port-indexed) and decides
    /// whether to halt.
    fn receive(
        &mut self,
        info: &NodeInfo,
        incoming: Vec<Option<Self::Message>>,
        rng: &mut StdRng,
    ) -> Status<Self::Output>;
}

/// The result of a run: per-node outputs and the exact round count.
#[derive(Debug, Clone)]
pub struct RunReport<O> {
    /// `outputs[v]` is the local output of node `v`.
    pub outputs: Vec<O>,
    /// Number of communication rounds until the last node halted.
    pub rounds: usize,
}

/// Options controlling a simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed from which all per-node randomness derives.
    pub seed: u64,
    /// Identifier assignment (`None` = port-numbering model).
    pub ids: Option<Vec<u64>>,
    /// Per-edge colors exposed to nodes, if any.
    pub edge_colors: Option<Vec<usize>>,
    /// Hard bound on the number of rounds.
    pub max_rounds: usize,
}

impl RunConfig {
    /// LOCAL-model configuration with sequential ids `1..=n` permuted by the
    /// seed (adversarial-ish but reproducible).
    pub fn local(graph: &Graph, seed: u64, max_rounds: usize) -> Self {
        RunConfig { seed, ids: Some(random_ids(graph.n(), seed)), edge_colors: None, max_rounds }
    }

    /// Port-numbering-model configuration (no ids).
    pub fn port_numbering(seed: u64, max_rounds: usize) -> Self {
        RunConfig { seed, ids: None, edge_colors: None, max_rounds }
    }

    /// Attaches per-edge colors as node input.
    #[must_use]
    pub fn with_edge_colors(mut self, colors: Vec<usize>) -> Self {
        self.edge_colors = Some(colors);
        self
    }
}

/// Generates `n` distinct identifiers from `1..=n³` (polynomial id space, as
/// the LOCAL model assumes), shuffled deterministically by `seed`.
pub fn random_ids(n: usize, seed: u64) -> Vec<u64> {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1d5_ca1e);
    let space = (n as u64).pow(3).max(n as u64);
    let mut ids: Vec<u64> = Vec::with_capacity(n);
    let mut used = std::collections::HashSet::new();
    while ids.len() < n {
        let candidate = rng.gen_range(1..=space);
        if used.insert(candidate) {
            ids.push(candidate);
        }
    }
    ids.shuffle(&mut rng);
    ids
}

/// Runs `A` on `graph` under `config` with per-node inputs.
///
/// # Errors
///
/// Returns [`SimError::RoundLimitExceeded`] if some node has not halted
/// after `config.max_rounds` rounds, and [`SimError::InvalidParameter`] when
/// the inputs' length does not match the graph.
pub fn run<A: SyncAlgorithm>(
    graph: &Graph,
    inputs: &[A::Input],
    config: &RunConfig,
) -> Result<RunReport<A::Output>> {
    run_observed::<A, _>(graph, inputs, config, |_, _, _, _| {})
}

/// [`run`] with a message observer: `observe(round, sender, port, message)`
/// is called for every message put on the wire (rounds are 1-based). The
/// hook behind the CONGEST accounting in [`crate::congest`].
///
/// # Errors
///
/// Same as [`run`].
pub fn run_observed<A: SyncAlgorithm, F>(
    graph: &Graph,
    inputs: &[A::Input],
    config: &RunConfig,
    mut observe: F,
) -> Result<RunReport<A::Output>>
where
    F: FnMut(usize, usize, usize, &A::Message),
{
    let n = graph.n();
    if inputs.len() != n {
        return Err(SimError::InvalidParameter {
            message: format!("{} inputs for {} nodes", inputs.len(), n),
        });
    }
    if let Some(ids) = &config.ids {
        if ids.len() != n {
            return Err(SimError::InvalidParameter {
                message: format!("{} ids for {} nodes", ids.len(), n),
            });
        }
    }
    let max_degree = graph.max_degree();

    let infos: Vec<NodeInfo> = (0..n)
        .map(|v| NodeInfo {
            id: config.ids.as_ref().map(|ids| ids[v]),
            degree: graph.degree(v),
            n,
            max_degree,
            edge_colors: config
                .edge_colors
                .as_ref()
                .map(|cols| graph.ports(v).iter().map(|t| cols[t.edge]).collect()),
        })
        .collect();

    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| {
            // Distinct stream per node, derived from the global seed.
            StdRng::seed_from_u64(
                config.seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(v as u64),
            )
        })
        .collect();

    let mut states: Vec<Option<A>> = infos
        .iter()
        .zip(inputs)
        .zip(&mut rngs)
        .map(|((info, input), rng)| Some(A::init(info, input, rng)))
        .collect();
    let mut outputs: Vec<Option<A::Output>> = (0..n).map(|_| None).collect();
    let mut active = n;
    let mut rounds = 0usize;

    while active > 0 {
        if rounds >= config.max_rounds {
            return Err(SimError::RoundLimitExceeded { max_rounds: config.max_rounds });
        }
        rounds += 1;
        // Collect outgoing messages from active nodes.
        let mut outgoing: Vec<Option<Vec<A::Message>>> = vec![None; n];
        for v in 0..n {
            if let Some(state) = states[v].as_mut() {
                let msgs = state.send(&infos[v]);
                assert_eq!(
                    msgs.len(),
                    graph.degree(v),
                    "node {v} sent {} messages for {} ports",
                    msgs.len(),
                    graph.degree(v)
                );
                for (port, msg) in msgs.iter().enumerate() {
                    observe(rounds, v, port, msg);
                }
                outgoing[v] = Some(msgs);
            }
        }
        // Deliver and receive.
        for v in 0..n {
            if states[v].is_none() {
                continue;
            }
            let incoming: Vec<Option<A::Message>> = graph
                .ports(v)
                .iter()
                .map(|t| outgoing[t.node].as_ref().map(|msgs| msgs[t.port].clone()))
                .collect();
            let state = states[v].as_mut().expect("active node");
            match state.receive(&infos[v], incoming, &mut rngs[v]) {
                Status::Continue => {}
                Status::Done(out) => {
                    outputs[v] = Some(out);
                    states[v] = None;
                    active -= 1;
                }
            }
        }
    }

    Ok(RunReport {
        outputs: outputs.into_iter().map(|o| o.expect("halted with output")).collect(),
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees;

    /// Every node learns the maximum id within distance T by flooding.
    struct FloodMax {
        best: u64,
        rounds_left: usize,
    }

    impl SyncAlgorithm for FloodMax {
        type Input = usize; // number of rounds to flood
        type Message = u64;
        type Output = u64;

        fn init(info: &NodeInfo, input: &usize, _rng: &mut StdRng) -> Self {
            let id = info.id.expect("LOCAL model");
            FloodMax { best: id, rounds_left: *input }
        }

        fn send(&mut self, info: &NodeInfo) -> Vec<u64> {
            vec![self.best; info.degree]
        }

        fn receive(
            &mut self,
            _info: &NodeInfo,
            incoming: Vec<Option<u64>>,
            _rng: &mut StdRng,
        ) -> Status<u64> {
            for m in incoming.into_iter().flatten() {
                self.best = self.best.max(m);
            }
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                Status::Done(self.best)
            } else {
                Status::Continue
            }
        }
    }

    #[test]
    fn flood_max_reaches_radius() {
        let g = trees::path(6).unwrap();
        let config = RunConfig {
            seed: 1,
            ids: Some(vec![10, 20, 30, 99, 40, 50]),
            edge_colors: None,
            max_rounds: 100,
        };
        // After 2 rounds, node 0 knows the max within distance 2 (=30).
        let inputs = vec![2usize; 6];
        let report = run::<FloodMax>(&g, &inputs, &config).unwrap();
        assert_eq!(report.rounds, 2);
        assert_eq!(report.outputs[0], 30);
        assert_eq!(report.outputs[3], 99);
        assert_eq!(report.outputs[5], 99);

        // After 5 rounds everyone knows the global max.
        let inputs = vec![5usize; 6];
        let report = run::<FloodMax>(&g, &inputs, &config).unwrap();
        assert!(report.outputs.iter().all(|&o| o == 99));
    }

    #[test]
    fn round_limit_enforced() {
        struct Forever;
        impl SyncAlgorithm for Forever {
            type Input = ();
            type Message = ();
            type Output = ();
            fn init(_: &NodeInfo, _: &(), _: &mut StdRng) -> Self {
                Forever
            }
            fn send(&mut self, info: &NodeInfo) -> Vec<()> {
                vec![(); info.degree]
            }
            fn receive(&mut self, _: &NodeInfo, _: Vec<Option<()>>, _: &mut StdRng) -> Status<()> {
                Status::Continue
            }
        }
        let g = trees::path(3).unwrap();
        let config = RunConfig::port_numbering(0, 10);
        let err = run::<Forever>(&g, &[(), (), ()], &config).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { max_rounds: 10 }));
    }

    #[test]
    fn ids_are_distinct_and_polynomial() {
        let ids = random_ids(100, 42);
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(ids.iter().all(|&i| i >= 1 && i <= 100u64.pow(3)));
        assert_eq!(ids, random_ids(100, 42));
        assert_ne!(ids, random_ids(100, 43));
    }

    #[test]
    fn edge_colors_exposed_per_port() {
        use crate::edge_coloring;
        struct ColorEcho;
        impl SyncAlgorithm for ColorEcho {
            type Input = ();
            type Message = ();
            type Output = Vec<usize>;
            fn init(_: &NodeInfo, _: &(), _: &mut StdRng) -> Self {
                ColorEcho
            }
            fn send(&mut self, info: &NodeInfo) -> Vec<()> {
                vec![(); info.degree]
            }
            fn receive(
                &mut self,
                info: &NodeInfo,
                _: Vec<Option<()>>,
                _: &mut StdRng,
            ) -> Status<Vec<usize>> {
                Status::Done(info.edge_colors.clone().expect("colors provided"))
            }
        }
        let g = trees::complete_regular_tree(3, 2).unwrap();
        let col = edge_coloring::tree_edge_coloring(&g).unwrap();
        let config = RunConfig::port_numbering(0, 10).with_edge_colors(col.as_slice().to_vec());
        let report = run::<ColorEcho>(&g, &vec![(); g.n()], &config).unwrap();
        for v in 0..g.n() {
            for p in 0..g.degree(v) {
                assert_eq!(report.outputs[v][p], col.color_at(&g, v, p));
            }
        }
    }
}
