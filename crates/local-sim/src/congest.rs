//! CONGEST-model accounting: message sizes on the wire.
//!
//! The LOCAL and CONGEST models (paper §2.1) differ in exactly one way:
//! CONGEST caps messages at `O(log n)` bits per edge per round. Since
//! lower bounds proved for LOCAL carry over to CONGEST for free, the
//! paper's bounds apply there too — but *upper* bounds do not transfer
//! automatically. This module instruments a run with per-message bit
//! accounting so that each algorithm's bandwidth usage is **measured**:
//!
//! * [`MessageSize`] — the wire size of a message in bits;
//! * [`run_congest`] — [`crate::runner::run`] plus accounting;
//! * [`CongestStats::is_congest`] — whether every message fit in the
//!   [`congest_bandwidth`] budget.

use crate::error::Result;
use crate::graph::Graph;
use crate::runner::{run_observed, RunConfig, SyncAlgorithm};

/// The size of a message on the wire, in bits.
///
/// Implementations should reflect a natural binary encoding: an enum costs
/// its tag (⌈log₂ #variants⌉, at least 1) plus the payload of the variant
/// actually sent; containers cost a length header plus their elements.
pub trait MessageSize {
    /// Number of bits this value occupies on the wire.
    fn size_bits(&self) -> usize;
}

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        0
    }
}

impl MessageSize for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

macro_rules! impl_message_size_for_ints {
    ($($t:ty),*) => {
        $(impl MessageSize for $t {
            fn size_bits(&self) -> usize {
                std::mem::size_of::<$t>() * 8
            }
        })*
    };
}
impl_message_size_for_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::size_bits)
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn size_bits(&self) -> usize {
        // 32-bit length header plus the payload.
        32 + self.iter().map(MessageSize::size_bits).sum::<usize>()
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits() + self.2.size_bits()
    }
}

/// The CONGEST bandwidth budget for an `n`-node graph: `8⌈log₂(n+1)⌉`
/// bits — a concrete stand-in for the model's `O(log n)` with the
/// constant fixed so that a handful of ids/colors fit, as CONGEST papers
/// conventionally allow.
pub fn congest_bandwidth(n: usize) -> usize {
    8 * (usize::BITS - n.leading_zeros()).max(1) as usize
}

/// Bandwidth statistics of an instrumented run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestStats {
    /// The largest single message, in bits.
    pub max_message_bits: usize,
    /// Total bits put on the wire over the whole run.
    pub total_bits: usize,
    /// Number of messages sent (one per port per active node per round).
    pub messages: usize,
    /// `per_round_max[r]` is the largest message of round `r+1`.
    pub per_round_max: Vec<usize>,
}

impl CongestStats {
    /// Whether every message fit the [`congest_bandwidth`] budget for an
    /// `n`-node graph — i.e. the run was CONGEST-compatible as executed.
    pub fn is_congest(&self, n: usize) -> bool {
        self.max_message_bits <= congest_bandwidth(n)
    }
}

/// The result of an instrumented run.
#[derive(Debug, Clone)]
pub struct CongestReport<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// Communication rounds until the last node halted.
    pub rounds: usize,
    /// Bandwidth accounting.
    pub stats: CongestStats,
}

/// Runs `A` with CONGEST accounting. Semantically identical to
/// [`crate::runner::run`] (same outputs, same rounds); additionally
/// reports the bandwidth statistics of the execution.
///
/// # Errors
///
/// Same as [`crate::runner::run`].
///
/// # Example
///
/// ```
/// # use local_sim::{congest, runner::{NodeInfo, RunConfig, Status, SyncAlgorithm}, trees};
/// # use rand::rngs::StdRng;
/// struct Echo;
/// impl SyncAlgorithm for Echo {
///     type Input = ();
///     type Message = u64;
///     type Output = ();
///     fn init(_: &NodeInfo, _: &(), _: &mut StdRng) -> Self { Echo }
///     fn send(&mut self, info: &NodeInfo) -> Vec<u64> { vec![7; info.degree] }
///     fn receive(&mut self, _: &NodeInfo, _: Vec<Option<u64>>, _: &mut StdRng) -> Status<()> {
///         Status::Done(())
///     }
/// }
/// let g = trees::path(4)?;
/// let report = congest::run_congest::<Echo>(&g, &[(), (), (), ()], &RunConfig::port_numbering(0, 8))?;
/// assert_eq!(report.stats.max_message_bits, 64);
/// // A raw u64 exceeds the 8·⌈log₂(n+1)⌉ = 24-bit budget of a 4-node graph.
/// assert!(!report.stats.is_congest(g.n()));
/// # Ok::<(), local_sim::SimError>(())
/// ```
pub fn run_congest<A>(
    graph: &Graph,
    inputs: &[A::Input],
    config: &RunConfig,
) -> Result<CongestReport<A::Output>>
where
    A: SyncAlgorithm,
    A::Message: MessageSize,
{
    let mut stats =
        CongestStats { max_message_bits: 0, total_bits: 0, messages: 0, per_round_max: Vec::new() };
    let report = run_observed::<A, _>(graph, inputs, config, |round, _v, _port, msg| {
        let bits = msg.size_bits();
        stats.max_message_bits = stats.max_message_bits.max(bits);
        stats.total_bits += bits;
        stats.messages += 1;
        if stats.per_round_max.len() < round {
            stats.per_round_max.resize(round, 0);
        }
        stats.per_round_max[round - 1] = stats.per_round_max[round - 1].max(bits);
    })?;
    Ok(CongestReport { outputs: report.outputs, rounds: report.rounds, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{NodeInfo, Status};
    use crate::trees;
    use rand::rngs::StdRng;

    /// Gathers ids from an ever-growing ball: a LOCAL-style algorithm whose
    /// messages blow past the CONGEST budget.
    struct Gather {
        known: Vec<u64>,
        rounds_left: usize,
    }

    impl SyncAlgorithm for Gather {
        type Input = usize;
        type Message = Vec<u64>;
        type Output = usize;

        fn init(info: &NodeInfo, input: &usize, _rng: &mut StdRng) -> Self {
            Gather { known: vec![info.id.expect("LOCAL")], rounds_left: *input }
        }

        fn send(&mut self, info: &NodeInfo) -> Vec<Vec<u64>> {
            vec![self.known.clone(); info.degree]
        }

        fn receive(
            &mut self,
            _info: &NodeInfo,
            incoming: Vec<Option<Vec<u64>>>,
            _rng: &mut StdRng,
        ) -> Status<usize> {
            for msg in incoming.into_iter().flatten() {
                for id in msg {
                    if !self.known.contains(&id) {
                        self.known.push(id);
                    }
                }
            }
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                Status::Done(self.known.len())
            } else {
                Status::Continue
            }
        }
    }

    #[test]
    fn bandwidth_budget_is_logarithmic() {
        assert_eq!(congest_bandwidth(1), 8);
        assert_eq!(congest_bandwidth(255), 64);
        assert_eq!(congest_bandwidth(256), 72);
        assert!(congest_bandwidth(1 << 20) <= 8 * 21);
    }

    #[test]
    fn gather_exceeds_congest() {
        let g = trees::path(20).unwrap();
        let config = RunConfig::local(&g, 3, 64);
        let inputs = vec![6usize; g.n()];
        let report = run_congest::<Gather>(&g, &inputs, &config).unwrap();
        // Messages grow with the ball size: far beyond 8·log₂ n bits.
        assert!(!report.stats.is_congest(g.n()));
        // Everyone learned their radius-6 ball.
        assert!(report.outputs.iter().all(|&k| k >= 7 || k >= g.n().min(7)));
        // Round maxima are non-decreasing while the balls grow.
        let pm = &report.stats.per_round_max;
        assert!(pm.windows(2).take(4).all(|w| w[0] <= w[1]), "{pm:?}");
    }

    #[test]
    fn single_id_messages_fit_congest() {
        struct IdFlood;
        impl SyncAlgorithm for IdFlood {
            type Input = ();
            type Message = u64;
            type Output = u64;
            fn init(info: &NodeInfo, _: &(), _: &mut StdRng) -> Self {
                let _ = info;
                IdFlood
            }
            fn send(&mut self, info: &NodeInfo) -> Vec<u64> {
                vec![info.id.unwrap_or(0); info.degree]
            }
            fn receive(
                &mut self,
                _: &NodeInfo,
                incoming: Vec<Option<u64>>,
                _: &mut StdRng,
            ) -> Status<u64> {
                Status::Done(incoming.into_iter().flatten().max().unwrap_or(0))
            }
        }
        let g = trees::star(9).unwrap();
        let config = RunConfig::local(&g, 0, 4);
        let report = run_congest::<IdFlood>(&g, &vec![(); g.n()], &config).unwrap();
        assert_eq!(report.stats.max_message_bits, 64);
        // 64 bits vs budget 8·⌈log₂ 11⌉ = 32: a raw u64 does NOT fit small
        // ids... unless n is large enough. Here it exceeds.
        assert!(!report.stats.is_congest(g.n()));
        // Total accounting: 2 · m messages per round (star: 9 leaves + 9
        // center ports), one round.
        assert_eq!(report.stats.messages, 2 * g.m());
        assert_eq!(report.stats.total_bits, 64 * 2 * g.m());
    }

    #[test]
    fn stats_match_plain_run() {
        use crate::runner::run;
        let g = trees::path(6).unwrap();
        let config = RunConfig::local(&g, 1, 16);
        let inputs = vec![2usize; g.n()];
        let plain = run::<Gather>(&g, &inputs, &config).unwrap();
        let instrumented = run_congest::<Gather>(&g, &inputs, &config).unwrap();
        assert_eq!(plain.outputs, instrumented.outputs);
        assert_eq!(plain.rounds, instrumented.rounds);
        assert_eq!(instrumented.stats.per_round_max.len(), instrumented.rounds);
    }

    #[test]
    fn zero_sized_messages() {
        struct Silent;
        impl SyncAlgorithm for Silent {
            type Input = ();
            type Message = ();
            type Output = ();
            fn init(_: &NodeInfo, _: &(), _: &mut StdRng) -> Self {
                Silent
            }
            fn send(&mut self, info: &NodeInfo) -> Vec<()> {
                vec![(); info.degree]
            }
            fn receive(&mut self, _: &NodeInfo, _: Vec<Option<()>>, _: &mut StdRng) -> Status<()> {
                Status::Done(())
            }
        }
        let g = trees::path(3).unwrap();
        let report =
            run_congest::<Silent>(&g, &[(), (), ()], &RunConfig::port_numbering(0, 4)).unwrap();
        assert_eq!(report.stats.max_message_bits, 0);
        assert!(report.stats.is_congest(3));
    }
}
