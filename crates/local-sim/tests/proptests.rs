//! Property-based tests for the simulator substrate.

use local_sim::lcl_solver::{LclInstance, LeafPolicy};
use local_sim::{edge_coloring, trees, views, Graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Port numbering invariant: following a port and its reverse returns
    /// to the origin, for every generated tree.
    #[test]
    fn ports_are_involutive(n in 2usize..120, max_deg in 2usize..7, seed in 0u64..500) {
        let g = trees::random_tree(n, max_deg, seed).unwrap();
        for v in 0..g.n() {
            for p in 0..g.degree(v) {
                let t = g.port_target(v, p);
                let back = g.port_target(t.node, t.port);
                prop_assert_eq!(back.node, v);
                prop_assert_eq!(back.port, p);
                prop_assert_eq!(back.edge, t.edge);
            }
        }
    }

    /// Tree edge colorings are proper and use at most Δ colors.
    #[test]
    fn tree_colorings_proper(n in 2usize..150, max_deg in 2usize..7, seed in 0u64..500) {
        let g = trees::random_tree(n, max_deg, seed).unwrap();
        let col = edge_coloring::tree_edge_coloring(&g).unwrap();
        prop_assert!(edge_coloring::is_proper(&g, &col));
        prop_assert!(col.num_colors() <= g.max_degree());
    }

    /// The power graph realizes exactly the ≤ r distances.
    #[test]
    fn power_graph_semantics(n in 2usize..60, max_deg in 2usize..5, r in 1usize..4, seed in 0u64..200) {
        let g = trees::random_tree(n, max_deg, seed).unwrap();
        let p = g.power(r);
        for v in 0..g.n() {
            let dist = g.bfs_distances(v);
            for (u, &d) in dist.iter().enumerate() {
                if u == v {
                    continue;
                }
                let adjacent = p.neighbors(v).any(|w| w == u);
                prop_assert_eq!(adjacent, d <= r, "v={}, u={}, d={}", v, u, d);
            }
        }
    }

    /// The LCL solver never returns an invalid labeling (differential
    /// against its own checker) — here on proper-2-coloring-style
    /// instances, which are solvable on every tree.
    #[test]
    fn lcl_solver_output_validates(n in 2usize..80, max_deg in 2usize..6, seed in 0u64..500) {
        let g = trees::random_tree(n, max_deg, seed).unwrap();
        let delta = g.max_degree();
        let inst = LclInstance::new(
            2,
            delta,
            vec![vec![0; delta], vec![1; delta]],
            |a, b| a != b,
            LeafPolicy::SubMultiset,
        ).unwrap();
        let sol = inst.solve(&g, seed).unwrap().expect("2-coloring exists on trees");
        prop_assert!(inst.check(&g, &sol).is_ok());
    }

    /// View classes refine with radius and are permutation-invariant in the
    /// label sense: classes count is between 1 and n.
    #[test]
    fn view_classes_sane(n in 2usize..60, max_deg in 2usize..5, t in 0usize..4, seed in 0u64..200) {
        let g = trees::random_tree(n, max_deg, seed).unwrap();
        let inputs = views::ViewInputs::default();
        let (classes, count) = views::view_classes(&g, t, &inputs);
        prop_assert!(count >= 1 && count <= g.n());
        prop_assert_eq!(classes.len(), g.n());
        prop_assert!(classes.iter().all(|&c| c < count));
        // Same-class nodes must at least share their degree.
        for v in 0..g.n() {
            for u in 0..g.n() {
                if classes[v] == classes[u] {
                    prop_assert_eq!(g.degree(v), g.degree(u));
                }
            }
        }
    }

    /// BFS distances satisfy the triangle inequality along edges.
    #[test]
    fn bfs_distance_sanity(n in 2usize..100, max_deg in 2usize..6, seed in 0u64..300) {
        let g = trees::random_tree(n, max_deg, seed).unwrap();
        let d = g.bfs_distances(0);
        for &(u, v) in g.edges() {
            let du = d[u] as i64;
            let dv = d[v] as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
        prop_assert_eq!(d[0], 0);
    }
}

/// Girth of a cycle graph with a chord (deterministic non-proptest check
/// kept alongside for structural coverage).
#[test]
fn girth_with_chord() {
    // C6 + chord (0,3): girth 4.
    let g =
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]).unwrap();
    assert_eq!(g.girth(), Some(4));
}
