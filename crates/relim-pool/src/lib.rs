//! # relim-pool — a hand-rolled work-stealing thread pool (std-only)
//!
//! The round elimination engine's hot paths (the universal sides of `R(·)`
//! and `R̄(·)`, the Lemma 8 parameter sweeps, the bench grids) are
//! embarrassingly parallel at coarse granularity but with *wildly* uneven
//! task sizes: one DFS subtree or one `(a, x)` parameter point can cost
//! orders of magnitude more than its neighbours. A fixed block split
//! therefore wastes most of the hardware; this crate provides load
//! balancing by work stealing instead.
//!
//! Like the `vendor/` shims, it is dependency-free by necessity (the build
//! environment has no crates.io route), so the pool is built from `std`
//! primitives only and contains no `unsafe`:
//!
//! * [`Pool::map`] runs a closure over a slice, seeding one mutex-guarded
//!   deque per worker with a contiguous block of item indices; workers pop
//!   their own deque from the front and **steal half** of the largest
//!   other deque when empty.
//! * Borrowed inputs are supported without `unsafe` by running workers
//!   under [`std::thread::scope`]; worker threads live for one `map` call.
//!   Tasks in this workspace are milliseconds-to-seconds, so the spawn
//!   cost (~tens of µs) is noise.
//!
//! ## Determinism
//!
//! Results are collected as `(index, value)` pairs and re-sorted by index
//! before returning, so `map` output is **byte-identical at any thread
//! count** — the invariant the engine's differential tests enforce. Only
//! the *schedule* is nondeterministic; the result never is.
//!
//! ## Nesting
//!
//! `map` called from inside a pool worker runs inline and sequentially
//! (a thread-local guard detects re-entry). This lets high-level sweeps
//! shard over parameter points while the engine underneath unconditionally
//! requests parallelism for its own sub-problems: whichever level reaches
//! the pool first gets the workers, and nothing oversubscribes.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

thread_local! {
    /// Set while the current thread is a pool worker; nested `map` calls
    /// observe it and degrade to inline sequential execution.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A work-stealing thread pool configuration.
///
/// Cheap to construct and copy; worker threads are spawned per
/// [`Pool::map`] call (scoped), so a `Pool` is really a *policy* — how many
/// workers to use — plus the stealing scheduler.
///
/// # Example
///
/// ```
/// use relim_pool::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]); // input order, any thread count
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers; `0` means
    /// [`Pool::available_parallelism`].
    pub fn new(threads: usize) -> Pool {
        if threads == 0 {
            Pool { threads: Self::available_parallelism() }
        } else {
            Pool { threads }
        }
    }

    /// The single-threaded pool: every `map` runs inline, no threads are
    /// spawned. This is the reference schedule parallel runs must match.
    pub const fn sequential() -> Pool {
        Pool { threads: 1 }
    }

    /// Reads the thread count from the `RELIM_THREADS` environment
    /// variable, falling back to [`Pool::available_parallelism`].
    pub fn from_env() -> Pool {
        match std::env::var("RELIM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => Pool::new(n),
            None => Pool::new(0),
        }
    }

    /// What the standard library reports as available parallelism
    /// (at least 1).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    }

    /// Number of workers this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning results **in input
    /// order** regardless of thread count or schedule.
    ///
    /// Runs inline (no spawns) when the pool is sequential, the input has
    /// at most one item, or the caller is itself a pool worker (nested
    /// parallelism degrades rather than oversubscribing).
    ///
    /// # Panics
    ///
    /// A panic in `f` is propagated to the caller once all workers stop.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 || IN_WORKER.with(Cell::get) {
            return items.iter().map(f).collect();
        }

        // Seed one deque per worker with a contiguous block of indices.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = w * items.len() / workers;
                let hi = (w + 1) * items.len() / workers;
                Mutex::new((lo..hi).collect())
            })
            .collect();

        let mut buckets: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let queues = &queues;
                let f = &f;
                handles.push(scope.spawn(move || {
                    IN_WORKER.with(|g| g.set(true));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = pop_own(&queues[w]).or_else(|| steal_into(queues, w));
                        match idx {
                            Some(i) => local.push((i, f(&items[i]))),
                            None => break,
                        }
                    }
                    IN_WORKER.with(|g| g.set(false));
                    local
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(local) => buckets.push(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        // Canonical re-sort: schedule-independent output order.
        let mut tagged: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
        tagged.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(tagged.len(), items.len());
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Fallible [`Pool::map`]: applies `f` to every item and returns the
    /// collected successes, or the error of the **earliest** failing item
    /// (deterministic at any thread count).
    ///
    /// All items are evaluated even when one fails; sweeps here are finite
    /// and an early-cancel protocol is not worth its nondeterminism risk.
    ///
    /// # Errors
    ///
    /// The error produced by the lowest-indexed failing item.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.map(items, f).into_iter().collect()
    }
}

impl Default for Pool {
    /// [`Pool::from_env`].
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Pops the front of the worker's own deque.
fn pop_own(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    queue.lock().expect("pool queue poisoned").pop_front()
}

/// Steals the back half of the largest foreign deque into `queues[w]`,
/// returning one stolen index to run immediately. Returns `None` only
/// after a full snapshot pass observes every foreign deque empty — a
/// victim drained between snapshot and lock triggers a retry, not an
/// early exit (a worker leaving while uneven work remains elsewhere would
/// silently degrade the pool toward sequential).
fn steal_into(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    loop {
        // Pick the victim with the most queued work (snapshot lengths
        // first so only one foreign lock is held while splitting).
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != w)
            .map(|(v, q)| (v, q.lock().expect("pool queue poisoned").len()))
            .filter(|&(_, len)| len > 0)
            .max_by_key(|&(_, len)| len)?
            .0;
        let mut stolen = {
            let mut q = queues[victim].lock().expect("pool queue poisoned");
            let keep = q.len() - q.len().div_ceil(2);
            q.split_off(keep)
        };
        let Some(first) = stolen.pop_front() else {
            // Raced: the victim drained before we locked it. Re-snapshot.
            continue;
        };
        if !stolen.is_empty() {
            queues[w].lock().expect("pool queue poisoned").append(&mut stolen);
        }
        return Some(first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 31 + 7).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).map(&items, |&x| x * 31 + 7);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_tasks_all_run_exactly_once() {
        // Steeply skewed task sizes exercise the stealing path.
        let items: Vec<u64> = (0..64).collect();
        let ran = AtomicUsize::new(0);
        let out = Pool::new(4).map(&items, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            // Task 0 is ~64x the size of task 63.
            let spins = (64 - x) * 2_000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn nested_map_degrades_to_inline() {
        let outer: Vec<usize> = (0..8).collect();
        let pool = Pool::new(4);
        let got = pool.map(&outer, |&i| {
            // Inside a worker: this inner map must run inline (and still be
            // correct).
            let inner: Vec<usize> = (0..4).collect();
            pool.map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|&i| 4 * (i * 10) + 6).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn try_map_returns_earliest_error() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let got: Result<Vec<u32>, u32> =
                Pool::new(threads).try_map(&items, |&x| if x % 30 == 17 { Err(x) } else { Ok(x) });
            assert_eq!(got, Err(17), "threads = {threads}");
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(Pool::new(0).threads(), Pool::available_parallelism());
        assert!(Pool::new(0).threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(pool.map(&[5u8], |&x| x + 1), vec![6]);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map(&items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn sequential_pool_spawns_nothing() {
        // Observable via the worker guard: it stays false on this thread.
        let pool = Pool::sequential();
        let out = pool.map(&[1, 2, 3], |&x| {
            assert!(!IN_WORKER.with(Cell::get));
            x * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
    }
}
