//! # relim-pool — a persistent work-stealing thread pool (std-only)
//!
//! The round elimination engine's hot paths (the universal sides of `R(·)`
//! and `R̄(·)`, the Lemma 8 parameter sweeps, the bench grids) are
//! embarrassingly parallel at coarse granularity but with *wildly* uneven
//! task sizes: one DFS subtree or one `(a, x)` parameter point can cost
//! orders of magnitude more than its neighbours. A fixed block split
//! therefore wastes most of the hardware; this crate provides load
//! balancing by work stealing instead.
//!
//! Like the `vendor/` shims, it is dependency-free by necessity (the build
//! environment has no crates.io route), so the pool is built from `std`
//! primitives only and contains no `unsafe`.
//!
//! ## Persistent worker set
//!
//! Round elimination submits *thousands* of micro-batches per fixed-point
//! search (one per `R̄` DFS level, one per dominance shard, one per sweep
//! point), so spawning workers per call would make the spawn cost the hot
//! path. Instead the crate keeps one **process-wide worker set**, created
//! lazily on the first parallel batch and grown on demand up to the widest
//! pool ever requested (bounded by [`MAX_WORKERS`]). Idle workers park on a
//! condition variable; there is no explicit shutdown — parked threads cost
//! nothing and die with the process.
//!
//! Work reaches the workers through a **submission queue** of batches:
//! [`Pool::map_owned`] / [`Pool::try_map_owned`] take `'static` task
//! payloads (the items and the closure are *owned* by the batch — use
//! `Arc` for shared context instead of borrows) and push one batch onto
//! the queue. Each batch carries per-virtual-worker deques seeded with
//! contiguous index blocks; participants (the submitting thread plus any
//! idle persistent workers) pop their own deque from the front and
//! **steal half** of the largest other deque when empty. Results return
//! to the submitter through a per-batch [`std::sync::mpsc`] channel.
//!
//! The owned entry points are the *only* entry points: the scoped
//! borrowed-input shim (`Pool::map`/`try_map`, which spawned scoped
//! threads per call) is gone — every call site converted to owned
//! submission, and the round elimination `Engine` session in `relim-core`
//! is the one consumer that hands this crate to the rest of the system.
//!
//! ## Determinism
//!
//! Results are collected as `(index, value)` pairs and re-sorted by index
//! before returning, so `map`/`map_owned` output is **byte-identical at
//! any thread count** — the invariant the engine's differential tests
//! enforce. Only the *schedule* is nondeterministic; the result never is.
//! How many persistent workers actually join a batch (zero is possible
//! when they are busy — the submitter always participates and can drain
//! the batch alone) affects wall-clock only, never output.
//!
//! ## Panics — pinned semantics
//!
//! A panic inside a `map_owned` task is caught at the task boundary: the
//! **worker survives** (the pool is never poisoned and stays usable for
//! later batches), the batch still runs its remaining tasks, and the
//! submitter re-raises the payload of the **lowest-indexed** panicking
//! task — deterministic at any thread count.
//!
//! ## Nesting
//!
//! `map_owned` called from inside a pool worker (or from a task the
//! submitting thread runs while participating) executes inline and
//! sequentially (a thread-local guard detects re-entry). This lets
//! high-level sweeps shard over parameter points while the engine
//! underneath unconditionally requests parallelism for its own
//! sub-problems: whichever level reaches the pool first gets the workers,
//! and nothing oversubscribes or deadlocks.

#![forbid(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// Upper bound on the persistent worker set. Batches may request wider
/// pools; work stealing lets fewer participants drain any batch, so the
/// cap changes wall-clock only, never output.
pub const MAX_WORKERS: usize = 64;

/// A panic payload carried from a worker back to the submitting thread.
type Payload = Box<dyn Any + Send + 'static>;

thread_local! {
    /// Set while the current thread is running batch tasks; nested map
    /// calls observe it and degrade to inline sequential execution.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A handle to the shared worker set plus a *width policy* (how many
/// workers a batch is split for).
///
/// Cheap to construct and copy; the worker threads themselves are
/// process-global, created lazily by the first parallel
/// [`Pool::map_owned`] call and reused by every later batch.
///
/// # Example
///
/// ```
/// use relim_pool::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map_owned((1u64..=4).collect(), |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]); // input order, any thread count
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

/// Error returned by [`Pool::try_from_env`] when `RELIM_THREADS` is set
/// to something other than a positive integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsEnvError {
    raw: String,
}

impl std::fmt::Display for ThreadsEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RELIM_THREADS must be a positive integer (e.g. 4), got `{}`; \
             unset it to use available parallelism",
            self.raw
        )
    }
}

impl std::error::Error for ThreadsEnvError {}

/// Parses a `RELIM_THREADS` value: a positive integer, with surrounding
/// whitespace tolerated. `0`, empty, and non-numeric values are rejected
/// (use an unset variable, not `0`, to mean "available parallelism").
///
/// # Errors
///
/// Returns [`ThreadsEnvError`] describing the rejected value.
pub fn parse_threads(raw: &str) -> Result<usize, ThreadsEnvError> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(ThreadsEnvError { raw: raw.to_owned() }),
    }
}

impl Pool {
    /// A pool with exactly `threads` workers; `0` means
    /// [`Pool::available_parallelism`].
    pub fn new(threads: usize) -> Pool {
        if threads == 0 {
            Pool { threads: Self::available_parallelism() }
        } else {
            Pool { threads }
        }
    }

    /// The single-threaded pool: every map runs inline, no worker
    /// participates. This is the reference schedule parallel runs must
    /// match.
    pub const fn sequential() -> Pool {
        Pool { threads: 1 }
    }

    /// Reads the thread count from the `RELIM_THREADS` environment
    /// variable, falling back to [`Pool::available_parallelism`] when the
    /// variable is unset.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadsEnvError`] when the variable is set but is not a
    /// positive integer (`0`, empty, non-numeric, or non-unicode) — a
    /// misconfiguration that used to be silently absorbed.
    pub fn try_from_env() -> Result<Pool, ThreadsEnvError> {
        match std::env::var("RELIM_THREADS") {
            Ok(raw) => parse_threads(&raw).map(Pool::new),
            Err(std::env::VarError::NotPresent) => Ok(Pool::new(0)),
            Err(std::env::VarError::NotUnicode(raw)) => {
                Err(ThreadsEnvError { raw: raw.to_string_lossy().into_owned() })
            }
        }
    }

    /// [`Pool::try_from_env`], panicking with the parse error's message on
    /// a misconfigured `RELIM_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics when `RELIM_THREADS` is set but not a positive integer.
    pub fn from_env() -> Pool {
        match Self::try_from_env() {
            Ok(pool) => pool,
            Err(e) => panic!("{e}"),
        }
    }

    /// What the standard library reports as available parallelism
    /// (at least 1).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    }

    /// Number of workers this pool splits batches for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every owned item on the **persistent worker set**,
    /// returning results in input order regardless of thread count or
    /// schedule.
    ///
    /// The batch owns its payload (`items` and `f` move in), which is what
    /// lets long-lived workers run it without `unsafe`: share context with
    /// the closure via `Arc`, not borrows. Runs inline (nothing submitted)
    /// when the pool is sequential, the input has at most one item, or the
    /// caller is itself running pool tasks (nested parallelism degrades
    /// rather than deadlocking).
    ///
    /// # Panics
    ///
    /// A panic in `f` is re-raised on the caller once the batch drains;
    /// with several panicking tasks, the lowest-indexed payload is the one
    /// re-raised (deterministic at any thread count). Workers survive.
    pub fn map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || IN_WORKER.with(Cell::get) {
            return items.iter().map(f).collect();
        }

        let (tx, rx) = mpsc::channel::<(usize, Result<R, Payload>)>();
        let batch: Arc<BatchState<T, R, F>> = Arc::new(BatchState {
            items,
            f,
            queues: seed_queues(n, workers),
            claims: AtomicUsize::new(0),
            results: Mutex::new(tx),
        });

        let registry = registry();
        registry.submit(batch.clone() as Arc<dyn Batch>, workers - 1);
        // The submitter always participates: the batch completes even if
        // every persistent worker is busy elsewhere.
        batch.participate();

        let mut tagged: Vec<(usize, Result<R, Payload>)> = Vec::with_capacity(n);
        for _ in 0..n {
            tagged.push(rx.recv().expect("pool worker dropped a batch channel"));
        }
        registry.retire(&(batch as Arc<dyn Batch>));

        // Canonical re-sort: schedule-independent output order (and
        // deterministic choice of which panic payload is re-raised).
        tagged.sort_unstable_by_key(|&(i, _)| i);
        let mut out = Vec::with_capacity(n);
        for (_, result) in tagged {
            match result {
                Ok(value) => out.push(value),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    }

    /// Fallible [`Pool::map_owned`]: returns the collected successes, or
    /// the error of the **earliest** failing item (deterministic at any
    /// thread count).
    ///
    /// All items are evaluated even when one fails; sweeps here are finite
    /// and an early-cancel protocol is not worth its nondeterminism risk.
    ///
    /// # Errors
    ///
    /// The error produced by the lowest-indexed failing item.
    pub fn try_map_owned<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        E: Send + 'static,
        F: Fn(&T) -> Result<R, E> + Send + Sync + 'static,
    {
        self.map_owned(items, f).into_iter().collect()
    }
}

impl Default for Pool {
    /// [`Pool::from_env`].
    fn default() -> Self {
        Pool::from_env()
    }
}

/// One deque per virtual worker, seeded with a contiguous block of item
/// indices (the sequential order, so steals preserve locality).
fn seed_queues(n: usize, workers: usize) -> Vec<Mutex<VecDeque<usize>>> {
    (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect()
}

/// The object-safe face of a submitted batch, as seen by the persistent
/// workers.
trait Batch: Send + Sync {
    /// Claims a virtual-worker slot and runs tasks (own deque first,
    /// stealing when empty) until the batch is drained. Returns `false`
    /// without doing work when every slot is already claimed.
    fn participate(&self) -> bool;

    /// Whether another idle worker could still contribute: an unclaimed
    /// slot remains and some deque is non-empty.
    fn wants_workers(&self) -> bool;
}

/// A submitted batch: the owned payload, the per-virtual-worker deques,
/// and the result channel back to the submitter.
struct BatchState<T, R, F> {
    items: Vec<T>,
    f: F,
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Next virtual-worker slot to hand out; beyond `queues.len()`, late
    /// arrivals are turned away (the claimed participants drain the rest
    /// by stealing).
    claims: AtomicUsize,
    /// Per-batch result channel. `Sender` is `Send` but not `Sync`, so
    /// participants clone their own handle under this lock.
    results: Mutex<mpsc::Sender<(usize, Result<R, Payload>)>>,
}

impl<T, R, F> Batch for BatchState<T, R, F>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    fn participate(&self) -> bool {
        let w = self.claims.fetch_add(1, Ordering::Relaxed);
        if w >= self.queues.len() {
            return false;
        }
        let tx = self.results.lock().expect("pool batch channel poisoned").clone();
        let was_worker = IN_WORKER.with(|g| g.replace(true));
        loop {
            let idx = pop_own(&self.queues[w]).or_else(|| steal_into(&self.queues, w));
            let Some(i) = idx else { break };
            // Task panics are caught at the task boundary: the worker (and
            // the pool) survive, and the submitter re-raises the payload
            // deterministically once the batch drains.
            let result = catch_unwind(AssertUnwindSafe(|| (self.f)(&self.items[i])));
            // A send error means the submitter is gone (it panicked out of
            // its recv loop); finishing quietly is all we can do.
            let _ = tx.send((i, result));
        }
        IN_WORKER.with(|g| g.set(was_worker));
        true
    }

    fn wants_workers(&self) -> bool {
        self.claims.load(Ordering::Relaxed) < self.queues.len()
            && self.queues.iter().any(|q| !q.lock().expect("pool queue poisoned").is_empty())
    }
}

/// The process-wide submission queue and worker accounting.
struct Registry {
    state: Mutex<RegistryState>,
    work_ready: Condvar,
}

struct RegistryState {
    /// Open batches that may still want participants.
    batches: Vec<Arc<dyn Batch>>,
    /// Persistent workers spawned so far (high-water mark, never shrinks).
    workers: usize,
}

/// The lazily-created global registry. Workers hold `&'static` references
/// to it; they park on `work_ready` between batches and die with the
/// process (no explicit shutdown — see the crate docs).
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        state: Mutex::new(RegistryState { batches: Vec::new(), workers: 0 }),
        work_ready: Condvar::new(),
    })
}

impl Registry {
    /// Publishes a batch and grows the worker set toward `extra` helpers
    /// (the submitter is the remaining participant), capped at
    /// [`MAX_WORKERS`].
    fn submit(&self, batch: Arc<dyn Batch>, extra: usize) {
        // Reserve the worker ordinals under the lock, but spawn outside
        // it: a spawn failure (thread exhaustion) must not poison the
        // registry mutex and take the process-wide pool down with it.
        let (first, target) = {
            let mut state = self.state.lock().expect("pool registry poisoned");
            state.batches.push(batch);
            let target = state.workers.max(extra.min(MAX_WORKERS));
            let first = state.workers + 1;
            state.workers = target;
            (first, target)
        };
        for ordinal in first..=target {
            if !spawn_worker(ordinal) {
                // Give the unspawned ordinals back; the submitter always
                // participates, so the batch completes regardless.
                let mut state = self.state.lock().expect("pool registry poisoned");
                state.workers -= target + 1 - ordinal;
                break;
            }
        }
        // Wake only as many parked workers as the batch can seat —
        // notify_all would stampede the whole set through the registry
        // lock for every micro-batch. A worker woken for a batch that
        // filled up meanwhile simply re-parks.
        for _ in 0..extra.min(MAX_WORKERS) {
            self.work_ready.notify_one();
        }
    }

    /// Eagerly removes a completed batch (workers also prune lazily).
    fn retire(&self, batch: &Arc<dyn Batch>) {
        let mut state = self.state.lock().expect("pool registry poisoned");
        state.batches.retain(|b| !Arc::ptr_eq(b, batch));
    }
}

/// Spawns one detached persistent worker; returns whether the OS granted
/// the thread (a refusal degrades parallelism, never correctness — the
/// submitter can drain any batch alone). The thread parks on the
/// registry's condition variable whenever the submission queue has no
/// batch wanting workers.
fn spawn_worker(ordinal: usize) -> bool {
    std::thread::Builder::new()
        .name(format!("relim-pool-{ordinal}"))
        .spawn(|| {
            let registry = registry();
            loop {
                let batch = {
                    let mut state = registry.state.lock().expect("pool registry poisoned");
                    loop {
                        // Prune batches that no longer want participants;
                        // anything left is claimable right now.
                        state.batches.retain(|b| b.wants_workers());
                        if let Some(batch) = state.batches.first() {
                            break Arc::clone(batch);
                        }
                        state = registry.work_ready.wait(state).expect("pool registry poisoned");
                    }
                };
                batch.participate();
            }
        })
        .is_ok()
}

/// Pops the front of the worker's own deque.
fn pop_own(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    queue.lock().expect("pool queue poisoned").pop_front()
}

/// Steals the back half of the largest foreign deque into `queues[w]`,
/// returning one stolen index to run immediately. Returns `None` only
/// after a full snapshot pass observes every foreign deque empty — a
/// victim drained between snapshot and lock triggers a retry, not an
/// early exit (a worker leaving while uneven work remains elsewhere would
/// silently degrade the pool toward sequential).
fn steal_into(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    loop {
        // Pick the victim with the most queued work (snapshot lengths
        // first so only one foreign lock is held while splitting).
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != w)
            .map(|(v, q)| (v, q.lock().expect("pool queue poisoned").len()))
            .filter(|&(_, len)| len > 0)
            .max_by_key(|&(_, len)| len)?
            .0;
        let mut stolen = {
            let mut q = queues[victim].lock().expect("pool queue poisoned");
            let keep = q.len() - q.len().div_ceil(2);
            q.split_off(keep)
        };
        let Some(first) = stolen.pop_front() else {
            // Raced: the victim drained before we locked it. Re-snapshot.
            continue;
        };
        if !stolen.is_empty() {
            queues[w].lock().expect("pool queue poisoned").append(&mut stolen);
        }
        return Some(first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 31 + 7).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).map_owned(items.clone(), |&x| x * 31 + 7);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn owned_uneven_tasks_all_run_exactly_once() {
        let items: Vec<u64> = (0..64).collect();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let out = Pool::new(4).map_owned(items.clone(), move |&x| {
            ran2.fetch_add(1, Ordering::Relaxed);
            let spins = (64 - x) * 2_000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn nested_map_degrades_to_inline() {
        let outer: Vec<usize> = (0..8).collect();
        let pool = Pool::new(4);
        let got = pool.map_owned(outer.clone(), move |&i| {
            // Inside a batch task: this inner map must run inline (the
            // re-entry guard is observable) and still be correct.
            assert!(IN_WORKER.with(Cell::get) || pool.threads() <= 1);
            let inner: Vec<usize> = (0..4).collect();
            pool.map_owned(inner, move |&j| i * 10 + j).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|&i| 4 * (i * 10) + 6).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn try_map_returns_earliest_error() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let got: Result<Vec<u32>, u32> = Pool::new(threads)
                .try_map_owned(items.clone(), |&x| if x % 30 == 17 { Err(x) } else { Ok(x) });
            assert_eq!(got, Err(17), "threads = {threads}");
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(Pool::new(0).threads(), Pool::available_parallelism());
        assert!(Pool::new(0).threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map_owned(Vec::<u8>::new(), |&x| x), Vec::<u8>::new());
        assert_eq!(pool.map_owned(vec![5u8], |&x| x + 1), vec![6]);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map_owned(items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn sequential_pool_spawns_nothing() {
        // Observable via the worker guard: it stays false on this thread.
        let pool = Pool::sequential();
        let out = pool.map_owned(vec![1, 2, 3], |&x| {
            assert!(!IN_WORKER.with(Cell::get));
            x * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads("64"), Ok(64));
        for bad in ["0", "", "  ", "-3", "4.5", "four", "1e3", "0x4"] {
            let err = parse_threads(bad).unwrap_err();
            assert!(
                err.to_string().contains("positive integer"),
                "`{bad}` must be rejected with a clear message, got: {err}"
            );
            assert!(err.to_string().contains(bad.trim()) || bad.trim().is_empty());
        }
    }

    #[test]
    fn from_env_is_consistent_with_try_from_env() {
        // Whatever the ambient RELIM_THREADS is (the CI matrix sets valid
        // values), the panicking and fallible readers must agree.
        let tried = Pool::try_from_env().expect("ambient RELIM_THREADS must be valid in tests");
        assert_eq!(Pool::from_env(), tried);
    }
}
