//! Stress tests for the persistent work-stealing pool: oversubscription,
//! nested submission, degenerate shapes, concurrent submitters, and the
//! pinned panic semantics (workers survive; the submitter re-raises the
//! lowest-indexed payload deterministically).

use relim_pool::Pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tasks ≫ workers: a 4-wide pool must drain a 20k-task batch exactly
/// once per task, in input order, and stay reusable afterwards.
#[test]
fn oversubscription_tasks_much_greater_than_workers() {
    let pool = Pool::new(4);
    let items: Vec<u64> = (0..20_000).collect();
    let ran = Arc::new(AtomicUsize::new(0));
    for round in 0..3u64 {
        let ran2 = Arc::clone(&ran);
        let got = pool.map_owned(items.clone(), move |&x| {
            ran2.fetch_add(1, Ordering::Relaxed);
            x.wrapping_mul(2654435761).rotate_left((x % 31) as u32) ^ round
        });
        let expected: Vec<u64> = items
            .iter()
            .map(|&x| x.wrapping_mul(2654435761).rotate_left((x % 31) as u32) ^ round)
            .collect();
        assert_eq!(got, expected, "round {round}");
    }
    assert_eq!(ran.load(Ordering::Relaxed), 3 * items.len());
}

/// A pool wider than the task count: the batch is split over `len` virtual
/// workers only, and extra width is harmless.
#[test]
fn more_workers_than_tasks() {
    let pool = Pool::new(32);
    let got = pool.map_owned(vec![10u32, 20, 30], |&x| x + 1);
    assert_eq!(got, vec![11, 21, 31]);
}

/// Nested submission: tasks of an outer batch submit their own batches.
/// The inner maps must degrade to inline execution (no deadlock, no
/// oversubscription) and still be correct — at several pool widths.
#[test]
fn nested_submission_from_inside_tasks() {
    for threads in [2, 4, 8] {
        let pool = Pool::new(threads);
        let outer: Vec<u64> = (0..48).collect();
        let got = pool.map_owned(outer.clone(), move |&i| {
            let inner: Vec<u64> = (0..16).collect();
            let doubly_nested = pool.map_owned(inner, move |&j| {
                pool.map_owned(vec![i, j], |&k| k + 1).iter().sum::<u64>()
            });
            doubly_nested.iter().sum::<u64>()
        });
        let expected: Vec<u64> =
            outer.iter().map(|&i| (0..16).map(|j| (i + 1) + (j + 1)).sum::<u64>()).collect();
        assert_eq!(got, expected, "threads = {threads}");
    }
}

/// Zero-task batches cost nothing and return nothing, at any width and
/// repeatedly (they must not wedge the submission queue).
#[test]
fn zero_task_batches() {
    for threads in [1, 2, 8] {
        let pool = Pool::new(threads);
        for _ in 0..100 {
            assert_eq!(pool.map_owned(Vec::<u64>::new(), |&x| x), Vec::<u64>::new());
            let ok: Result<Vec<u64>, ()> = pool.try_map_owned(Vec::new(), |&x: &u64| Ok(x));
            assert_eq!(ok, Ok(Vec::new()));
        }
    }
}

/// The 1-worker degenerate pool runs everything inline on the submitting
/// thread: observable via thread identity.
#[test]
fn one_worker_pool_runs_inline() {
    let pool = Pool::new(1);
    let submitter = std::thread::current().id();
    let got = pool.map_owned((0..64u64).collect(), move |&x| {
        assert_eq!(std::thread::current().id(), submitter, "1-worker pool must not offload");
        x * 3
    });
    assert_eq!(got, (0..64).map(|x| x * 3).collect::<Vec<u64>>());
}

/// Pinned panic semantics, part 1: a panic in a task is re-raised on the
/// submitter, and with several panicking tasks the **lowest-indexed**
/// payload wins — at any thread count.
#[test]
fn panic_propagates_lowest_index_payload() {
    for threads in [2, 4, 8] {
        let items: Vec<u32> = (0..256).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(threads).map_owned(items, |&x| {
                if x % 50 == 37 {
                    panic!("task {x} exploded");
                }
                x
            })
        });
        let payload = result.expect_err("a panicking batch must panic the submitter");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is the formatted message");
        assert_eq!(message, "task 37 exploded", "threads = {threads}");
    }
}

/// Pinned panic semantics, part 2: workers **survive** a panicking batch —
/// the pool is not poisoned and later batches on the same (global) worker
/// set complete normally.
#[test]
fn workers_survive_task_panics() {
    let pool = Pool::new(4);
    for round in 0..5u64 {
        let result = std::panic::catch_unwind(|| {
            pool.map_owned((0..64u64).collect(), |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err(), "round {round}");
        // Immediately after the panic, a clean batch must still succeed.
        let got = pool.map_owned((0..512u64).collect(), move |&x| x + round);
        assert_eq!(got, (0..512).map(|x| x + round).collect::<Vec<u64>>(), "round {round}");
    }
}

/// Many submitting threads share the persistent worker set concurrently;
/// every batch must come back complete and in order.
#[test]
fn concurrent_submitters_share_the_worker_set() {
    let handles: Vec<_> = (0..8u64)
        .map(|s| {
            std::thread::spawn(move || {
                let pool = Pool::new(4);
                for round in 0..20 {
                    let items: Vec<u64> = (0..300).collect();
                    let got = pool.map_owned(items, move |&x| x * s + round);
                    assert_eq!(got, (0..300).map(|x| x * s + round).collect::<Vec<u64>>());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread panicked");
    }
}

/// Skewed task sizes drain fully under stealing: the heavy head of the
/// batch must not leave the tail stranded when participants exit early.
#[test]
fn skewed_batches_drain_completely() {
    let pool = Pool::new(8);
    let items: Vec<u64> = (0..128).collect();
    let got = pool.map_owned(items.clone(), |&x| {
        let spins = if x < 4 { 200_000 } else { 10 };
        let mut acc = x;
        for i in 0..spins {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        x
    });
    assert_eq!(got, items);
}

/// The owned path fully replaces the retired scoped `map` shim: borrowed
/// context that used to cross into scoped threads now travels as `Arc`s
/// captured by the `'static` closure, with identical ordering semantics.
#[test]
fn arc_shared_context_replaces_borrowed_captures() {
    let pool = Pool::new(4);
    // Context that a scoped closure would have borrowed.
    let table: Arc<Vec<u64>> = Arc::new((0..256).map(|x| x * x).collect());
    let indices: Vec<usize> = (0..256).rev().collect();
    let table2 = Arc::clone(&table);
    let got = pool.map_owned(indices.clone(), move |&i| table2[i]);
    let expected: Vec<u64> = indices.iter().map(|&i| table[i]).collect();
    assert_eq!(got, expected);
}

/// The fallible owned entry point reports the earliest error even when a
/// later item also fails, and evaluates every item (no early cancel).
#[test]
fn try_map_owned_earliest_error_and_full_evaluation() {
    for threads in [1, 4, 8] {
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let got: Result<Vec<u32>, u32> =
            Pool::new(threads).try_map_owned((0..500u32).collect(), move |&x| {
                ran2.fetch_add(1, Ordering::Relaxed);
                if x == 499 || x == 77 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
        assert_eq!(got, Err(77), "threads = {threads}");
        assert_eq!(ran.swap(0, Ordering::Relaxed), 500, "threads = {threads}");
    }
}
