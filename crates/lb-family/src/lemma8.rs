//! Mechanical verification of Lemma 8 (and Definition 7 in action).
//!
//! Lemma 8: if `Π_Δ(a,x)` has complexity `T`, then `Π⁺_Δ(a,x)` has
//! complexity `max{T−1, 0}` (for `x + 2 ≤ a ≤ Δ`). The proof shows that any
//! solution of `R̄(R(Π_Δ(a,x)))` can be converted *in zero rounds* into a
//! solution of the intermediate problem `Π_rel`, which is `Π⁺_Δ(a,x)` up to
//! renaming.
//!
//! This module makes every step executable:
//!
//! 1. compute `Π'' = R̄(R(Π_Δ(a,x)))` **in full** with the engine (the paper
//!    avoids this computation; we do it exactly, for concrete small Δ);
//! 2. check that **every** node configuration of `Π''` relaxes
//!    (Definition 7) into one of the four condensed configurations of
//!    `Π_rel`;
//! 3. check that `Π_rel`'s edge constraint is exactly the one obtained by
//!    the replacement method from `E_{R(Π)}`, and that `Π_rel = Π⁺_Δ(a,x)`
//!    under the paper's renaming;
//! 4. expose the 0-round conversion itself ([`Lemma8Machinery::transform`])
//!    so that solutions produced by the tree solver can be transformed and
//!    re-checked on actual trees.

use crate::convert::{self, BoundaryPolicy};
use crate::family::{self, PiParams};
use crate::lemma6::{self, rp_labels as rp};
use local_sim::lcl_solver::LclViolation;
use local_sim::{Graph, PortLabeling};
use relim_core::error::{RelimError, Result};
use relim_core::matching::assign_positions;
use relim_core::relax;
use relim_core::roundelim::Step;
use relim_core::{Config, Engine, Label, LabelSet, Line, Problem};

/// The six "super-labels" of `Π_rel`, as right-closed sets of `R(Π)` labels,
/// ordered to coincide with the `Π⁺` alphabet `[M, P, O, A, X, C]`.
pub fn super_labels() -> Vec<LabelSet> {
    let s = |ls: &[u8]| -> LabelSet { ls.iter().map(|&l| Label::new(l)).collect() };
    vec![
        s(&[rp::M, rp::U, rp::B, rp::Q]),                             // -> M
        s(&[rp::P, rp::Q]),                                           // -> P
        s(&[rp::O, rp::U, rp::A, rp::B, rp::P, rp::Q]),               // -> O
        s(&[rp::A, rp::B, rp::P, rp::Q]),                             // -> A
        s(&[rp::X, rp::M, rp::O, rp::U, rp::A, rp::B, rp::P, rp::Q]), // -> X
        s(&[rp::U, rp::B, rp::P, rp::Q]),                             // -> C
    ]
}

/// The four condensed node configurations of `Π_rel`, as [`Line`]s whose
/// groups are the super-label sets (over the 8 labels of `R(Π)`).
///
/// # Errors
///
/// Requires Lemma 6's hypothesis `x + 2 ≤ a ≤ Δ` (so all multiplicities are
/// non-negative).
pub fn pi_rel_node_lines(params: &PiParams) -> Result<Vec<Line>> {
    params.validate()?;
    if !params.lemma6_applicable() {
        return Err(RelimError::InvalidParameter {
            message: "pi_rel requires x+2 <= a <= delta".into(),
        });
    }
    let sup = super_labels();
    let (m, p, o, a, x, c) = (sup[0], sup[1], sup[2], sup[3], sup[4], sup[5]);
    let d = params.delta;
    let mk = |groups: Vec<(LabelSet, u32)>| -> Line {
        Line::new(groups.into_iter().filter(|&(_, mult)| mult > 0).collect()).expect("valid line")
    };
    Ok(vec![
        mk(vec![(m, d - params.x - 1), (x, params.x + 1)]),
        mk(vec![(p, 1), (o, d - 1)]),
        mk(vec![(a, params.a - params.x - 1), (x, d - params.a + params.x + 1)]),
        mk(vec![(c, d - params.x), (x, params.x)]),
    ])
}

/// `Π_rel` as a 6-label problem over the alphabet `[M, P, O, A, X, C]`:
/// node configurations as in [`pi_rel_node_lines`] (each super-label
/// becoming a single label) and edge constraint computed by the replacement
/// method from `E_{R(Π)} = {XQ, OB, AU, PM}`.
///
/// By Lemma 8 this problem *is* `Π⁺_Δ(a,x)`; [`Lemma8Report::pi_rel_equals_pi_plus`]
/// checks that exactly.
///
/// # Errors
///
/// Requires Lemma 6's hypothesis.
pub fn pi_rel_problem(params: &PiParams) -> Result<Problem> {
    let claimed_rp = lemma6::claimed_r_of_pi(params)?;
    let sup = super_labels();
    let d = params.delta;
    let mk_cfg = |counts: Vec<(u8, u32)>| -> Config {
        let mut labels = Vec::new();
        for (l, c) in counts {
            labels.extend(std::iter::repeat_n(Label::new(l), c as usize));
        }
        Config::new(labels)
    };
    use family::{A, C, M, O, P, X};
    let node = relim_core::Constraint::from_configs(vec![
        mk_cfg(vec![(M, d - params.x - 1), (X, params.x + 1)]),
        mk_cfg(vec![(P, 1), (O, d - 1)]),
        mk_cfg(vec![(A, params.a - params.x - 1), (X, d - params.a + params.x + 1)]),
        mk_cfg(vec![(C, d - params.x), (X, params.x)]),
    ])?;
    // Replacement-method edge constraint: (i, j) allowed iff some pair from
    // super_i × super_j lies in E_{R(Π)}.
    let mut edge_cfgs = Vec::new();
    for i in 0..6u8 {
        for j in i..6u8 {
            let ok = sup[i as usize].iter().any(|ai| {
                sup[j as usize]
                    .iter()
                    .any(|bj| claimed_rp.edge().contains(&Config::new(vec![ai, bj])))
            });
            if ok {
                edge_cfgs.push(Config::new(vec![Label::new(i), Label::new(j)]));
            }
        }
    }
    let edge = relim_core::Constraint::from_configs(edge_cfgs)?;
    Problem::new(relim_core::Alphabet::new(&["M", "P", "O", "A", "X", "C"])?, node, edge)
}

/// Everything needed to state, verify and *run* Lemma 8 at one parameter
/// point: the engine's `R(Π)` and `R̄(R(Π))`, and `Π_rel`.
#[derive(Debug, Clone)]
pub struct Lemma8Machinery {
    /// Parameters of the underlying `Π_Δ(a,x)`.
    pub params: PiParams,
    /// The engine's `R(Π)` step.
    pub r: Step,
    /// The engine's `R̄(R(Π))` step (provenance over `R(Π)` labels).
    pub rr: Step,
    /// The `Π_rel` node lines over `R(Π)` labels.
    pub rel_lines: Vec<Line>,
}

/// The outcome of verifying Lemma 8 at one parameter point.
#[derive(Debug, Clone)]
pub struct Lemma8Report {
    /// Parameters checked.
    pub params: PiParams,
    /// Lemma 6 holds (prerequisite for identifying `R(Π)` labels).
    pub lemma6_ok: bool,
    /// Every node configuration of `R̄(R(Π))` relaxes into a `Π_rel` line.
    pub all_node_configs_relax: bool,
    /// `Π_rel` (as 6-label problem) equals `Π⁺_Δ(a,x)` exactly.
    pub pi_rel_equals_pi_plus: bool,
    /// Number of labels of `R̄(R(Π))`.
    pub rr_label_count: usize,
    /// Number of node configurations of `R̄(R(Π))`.
    pub rr_node_config_count: usize,
    /// The first non-relaxing configuration, if any (diagnostics).
    pub counterexample: Option<String>,
}

impl Lemma8Report {
    /// Whether every check passed.
    pub fn matches_paper(&self) -> bool {
        self.lemma6_ok && self.all_node_configs_relax && self.pi_rel_equals_pi_plus
    }
}

impl Lemma8Machinery {
    /// Computes `R(Π)`, `R̄(R(Π))` and the `Π_rel` lines through `engine`
    /// (the exponential `R̄` enumeration and dominance filter shard over
    /// the session's workers; byte-identical at any thread count).
    ///
    /// The `R̄` step is exponential in general; keep `Δ ≤ 6` (the default
    /// tests use 3–5).
    ///
    /// # Errors
    ///
    /// Requires Lemma 6's hypothesis; propagates engine errors.
    pub fn compute(params: &PiParams, engine: &Engine) -> Result<Self> {
        let p = family::pi(params)?;
        let rel_lines = pi_rel_node_lines(params)?;
        let (r, rr) = engine.rr_step(&p)?;
        Ok(Lemma8Machinery { params: *params, r, rr, rel_lines })
    }

    /// The problem `R̄(R(Π))`.
    pub fn pi_pp(&self) -> &Problem {
        &self.rr.problem
    }

    /// Runs the full verification.
    pub fn verify(&self) -> Lemma8Report {
        let lemma6_ok = lemma6::verify(&self.params).map(|r| r.matches_paper()).unwrap_or(false);

        let mut all_relax = true;
        let mut counterexample = None;
        for cfg in self.rr.problem.node().iter() {
            let sc = self.rr.as_set_config(cfg);
            if !self.rel_lines.iter().any(|l| relax::config_relaxes_to_line(&sc, l)) {
                all_relax = false;
                counterexample = Some(format!("{sc:?}"));
                break;
            }
        }

        let pi_rel_equals_pi_plus =
            match (pi_rel_problem(&self.params), family::pi_plus(&self.params)) {
                (Ok(rel), Ok(plus)) => rel.semantically_equal(&plus),
                _ => false,
            };

        Lemma8Report {
            params: self.params,
            lemma6_ok,
            all_node_configs_relax: all_relax,
            pi_rel_equals_pi_plus,
            rr_label_count: self.rr.problem.alphabet().len(),
            rr_node_config_count: self.rr.problem.node().len(),
            counterexample,
        }
    }

    /// The paper's 0-round conversion: relabels a solution of `R̄(R(Π))` on
    /// `graph` into a solution of `Π⁺_Δ(a,x)` by replacing every node's
    /// configuration with a relaxation drawn from `Π_rel`'s configurations
    /// (per-port, via a matching) and renaming super-labels to `Π⁺` labels.
    ///
    /// # Errors
    ///
    /// Fails if some node's configuration does not relax — which Lemma 8
    /// (verified by [`Lemma8Machinery::verify`]) rules out for degree-Δ
    /// nodes; boundary nodes relax into partial lines.
    pub fn transform(&self, graph: &Graph, labeling: &PortLabeling) -> Result<PortLabeling> {
        let sup = super_labels();
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(graph.n());
        for v in 0..graph.n() {
            let d = graph.degree(v);
            // Per-port provenance sets (over R(Π) labels).
            let port_sets: Vec<LabelSet> =
                (0..d).map(|p| self.rr.provenance[labeling.get(v, p) as usize]).collect();
            let mut assigned: Option<Vec<u8>> = None;
            for line in &self.rel_lines {
                let groups = line.groups();
                let options: Vec<u64> = port_sets
                    .iter()
                    .map(|&y| {
                        let mut mask = 0u64;
                        for (g, &(set, _)) in groups.iter().enumerate() {
                            if y.is_subset_of(set) {
                                mask |= 1 << g;
                            }
                        }
                        mask
                    })
                    .collect();
                let caps: Vec<u32> = groups.iter().map(|&(_, m)| m).collect();
                if let Some(asg) = assign_positions(&options, &caps) {
                    let labels: Vec<u8> = asg
                        .into_iter()
                        .map(|g| {
                            let target = groups[g].0;
                            sup.iter().position(|&s| s == target).expect("groups are super-labels")
                                as u8
                        })
                        .collect();
                    assigned = Some(labels);
                    break;
                }
            }
            match assigned {
                Some(labels) => out.push(labels),
                None => {
                    return Err(RelimError::InvalidParameter {
                        message: format!(
                            "node {v} configuration does not relax into any Π_rel line"
                        ),
                    })
                }
            }
        }
        PortLabeling::from_vecs(graph, out)
            .map_err(|e| RelimError::InvalidParameter { message: e.to_string() })
    }

    /// End-to-end check on a tree: solve `R̄(R(Π))` with the LCL solver,
    /// transform, and validate against `Π⁺_Δ(a,x)` (interior nodes).
    ///
    /// Returns `Ok(None)` when the solver finds `R̄(R(Π))` infeasible on
    /// this tree (does not happen on the trees used in tests).
    ///
    /// # Errors
    ///
    /// Propagates transform errors and checker violations.
    pub fn end_to_end(
        &self,
        graph: &Graph,
        seed: u64,
    ) -> Result<Option<std::result::Result<(), LclViolation>>> {
        let inst =
            convert::to_lcl(&self.rr.problem, local_sim::lcl_solver::LeafPolicy::SubMultiset)?;
        let sol = inst
            .solve(graph, seed)
            .map_err(|e| RelimError::InvalidParameter { message: e.to_string() })?;
        let Some(sol) = sol else { return Ok(None) };
        let transformed = self.transform(graph, &sol)?;
        let plus = family::pi_plus(&self.params)?;
        Ok(Some(convert::check_labeling(&plus, graph, &transformed, BoundaryPolicy::InteriorOnly)))
    }
}

/// Sweeps Lemma 8 verification over all valid `(a, x)` for one `Δ`,
/// sharded over the session's workers: the `(a, x)` parameter points are
/// distributed across the workers (uneven point costs are balanced by
/// work stealing), each point's `R̄` computation itself uses the session
/// pool when it is the first to reach it, and every point's engine calls
/// share the session's sub-multiset index cache. Reports come back in
/// sweep order — byte-identical at any thread count. Exponential in Δ —
/// keep `Δ ≤ 5`.
///
/// # Errors
///
/// Propagates engine errors (from the earliest failing point).
pub fn verify_sweep(delta: u32, engine: &Engine) -> Result<Vec<Lemma8Report>> {
    let session = engine.clone();
    engine.try_map_owned(family::sweep_points(delta), move |params| {
        Lemma8Machinery::compute(params, &session).map(|mach| mach.verify())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::trees;

    #[test]
    fn lemma8_delta3() {
        let params = PiParams { delta: 3, a: 2, x: 0 };
        let mach = Lemma8Machinery::compute(&params, &Engine::sequential()).unwrap();
        let report = mach.verify();
        assert!(report.matches_paper(), "{report:?}");
        assert!(report.rr_node_config_count > 0);
    }

    #[test]
    fn lemma8_delta4_sweep() {
        let reports = verify_sweep(4, &Engine::sequential()).unwrap();
        assert_eq!(reports.len(), 6);
        for report in reports {
            assert!(report.matches_paper(), "failed: {report:?}");
        }
    }

    #[test]
    #[cfg_attr(
        not(feature = "exhaustive"),
        ignore = "exponential: run with --ignored in release mode, or --features exhaustive"
    )]
    fn lemma8_delta5_sweep_full() {
        let reports = verify_sweep(5, &Engine::sequential()).unwrap();
        assert_eq!(reports.len(), 10);
        for report in reports {
            assert!(report.matches_paper(), "failed: {report:?}");
        }
    }

    #[test]
    fn sweep_parallel_matches_sequential() {
        let seq = verify_sweep(4, &Engine::sequential()).unwrap();
        for threads in [2, 8] {
            let par = verify_sweep(4, &Engine::builder().threads(threads).build()).unwrap();
            let render = |rs: &[Lemma8Report]| format!("{rs:?}");
            assert_eq!(render(&par), render(&seq), "threads = {threads}");
        }
    }

    #[test]
    fn pi_rel_edge_constraint_matches_paper_text() {
        // The paper lists Π_rel's edge constraint explicitly; spot-check the
        // characteristic entries: P is compatible with M and X only; C with
        // M, A, O, X (through the renaming).
        let params = PiParams { delta: 4, a: 3, x: 0 };
        let rel = pi_rel_problem(&params).unwrap();
        use family::{A, C, M, O, P, X};
        let pair = |a: u8, b: u8| Config::new(vec![Label::new(a), Label::new(b)]);
        assert!(rel.edge().contains(&pair(P, M)));
        assert!(rel.edge().contains(&pair(P, X)));
        assert!(!rel.edge().contains(&pair(P, P)));
        assert!(!rel.edge().contains(&pair(P, O)));
        assert!(!rel.edge().contains(&pair(P, A)));
        assert!(!rel.edge().contains(&pair(P, C)));
        assert!(rel.edge().contains(&pair(C, M)));
        assert!(rel.edge().contains(&pair(C, A)));
        assert!(rel.edge().contains(&pair(C, O)));
        assert!(rel.edge().contains(&pair(C, X)));
        assert!(!rel.edge().contains(&pair(C, C)));
        assert!(!rel.edge().contains(&pair(C, P)));
        assert!(!rel.edge().contains(&pair(M, M)));
        assert!(!rel.edge().contains(&pair(A, A)));
    }

    #[test]
    fn end_to_end_transform_on_tree() {
        let params = PiParams { delta: 3, a: 2, x: 0 };
        let mach = Lemma8Machinery::compute(&params, &Engine::sequential()).unwrap();
        let tree = trees::complete_regular_tree(3, 3).unwrap();
        for seed in 0..3 {
            let outcome = mach.end_to_end(&tree, seed).unwrap();
            let check = outcome.expect("R̄(R(Π)) solvable on the tree");
            assert!(check.is_ok(), "transformed labeling invalid: {check:?}");
        }
    }
}
