//! Maximal matchings and b-matchings in the round elimination formalism.
//!
//! The paper's §1 frames its contribution against the matching line of
//! work: an MIS of the line graph is a maximal matching, b-matchings are
//! the line-graph relatives of bounded-degree dominating sets, and the
//! strongest known general-graph bounds (\[4, 15\] = Balliu et al.
//! FOCS'19, Brandt–Olivetti PODC'20) are proved exactly for these
//! problems via round elimination. This module provides the standard
//! encodings over `Σ = {M, P, O}`:
//!
//! * matched ports carry `M`; an edge is in the matching iff **both**
//!   sides say `M` (edge configuration `MM`);
//! * a *saturated* node (b matched ports) labels its other ports `O`;
//! * an *unsaturated* node labels its unmatched ports `P`, and the edge
//!   constraint forbids `PP` and `PM` — every unmatched edge of an
//!   unsaturated node must lead to a saturated neighbor (`OP`), which is
//!   exactly maximality.
//!
//! A worthwhile subtlety the engine confirms
//! (`relim_core::zeroround`): on Δ-regular trees these problems
//! are **0-round solvable given a Δ-edge coloring** (the color classes
//! are perfect matchings; take the first b of them), yet not trivially —
//! so the matching lower bounds of \[4, 15\] are statements about models
//! without such an input, unlike the paper's MIS bound which survives it.

use crate::convert;
use local_sim::checkers;
use local_sim::{Graph, PortLabeling};
use relim_core::error::{RelimError, Result};
use relim_core::{Alphabet, Config, Constraint, Label, Problem};

/// Label indices of the matching alphabet `{M, P, O}`.
fn m() -> Label {
    Label::new(0)
}
fn p() -> Label {
    Label::new(1)
}
fn o() -> Label {
    Label::new(2)
}

/// The maximal matching problem on Δ-regular trees:
/// `N = {M O^{Δ−1}, P^Δ}`, `E = {MM, OO, OP}`.
///
/// # Errors
///
/// Requires `Δ ≥ 2`.
///
/// # Example
///
/// ```
/// use lb_family::matchings;
/// use relim_core::zeroround;
///
/// let mm = matchings::maximal_matching_problem(3)?;
/// // Given a Δ-edge coloring the color-1 class is a perfect matching:
/// // 0 rounds. Without it, the problem is not trivial.
/// assert!(zeroround::solvable_deterministically(&mm));
/// assert!(!zeroround::solvable_pn_universal(&mm));
/// # Ok::<(), relim_core::RelimError>(())
/// ```
pub fn maximal_matching_problem(delta: u32) -> Result<Problem> {
    maximal_b_matching_problem(delta, 1)
}

/// The maximal b-matching problem on Δ-regular trees:
/// `N = {M^b O^{Δ−b}} ∪ {M^j P^{Δ−j} : 0 ≤ j < b}`, `E = {MM, OO, OP}`.
///
/// # Errors
///
/// Requires `1 ≤ b ≤ Δ` and `Δ ≥ 2`.
pub fn maximal_b_matching_problem(delta: u32, b: u32) -> Result<Problem> {
    if delta < 2 || b == 0 || b > delta {
        return Err(RelimError::InvalidParameter {
            message: format!("b-matching needs 2 <= Δ and 1 <= b <= Δ, got Δ={delta}, b={b}"),
        });
    }
    let alphabet = Alphabet::new(&["M", "P", "O"])?;
    let mut node = Vec::new();
    // Saturated: b matched ports, the rest released.
    node.push(config(&[(m(), b), (o(), delta - b)]));
    // Unsaturated with j < b matched ports: all other ports demand a
    // saturated neighbor.
    for j in 0..b {
        node.push(config(&[(m(), j), (p(), delta - j)]));
    }
    let edge = vec![config(&[(m(), 2)]), config(&[(o(), 2)]), config(&[(o(), 1), (p(), 1)])];
    Problem::new(alphabet, Constraint::from_configs(node)?, Constraint::from_configs(edge)?)
}

fn config(parts: &[(Label, u32)]) -> Config {
    let mut labels = Vec::new();
    for &(l, cnt) in parts {
        labels.extend(std::iter::repeat_n(l, cnt as usize));
    }
    Config::new(labels)
}

/// Converts a b-matching (per-edge flags) into a port labeling of the
/// encoding: matched ports `M`; other ports `O` at saturated nodes and
/// `P` at unsaturated ones.
///
/// # Errors
///
/// Rejects flag vectors of the wrong length or nodes with more than `b`
/// matched edges.
pub fn matching_to_labeling(graph: &Graph, in_matching: &[bool], b: usize) -> Result<PortLabeling> {
    if in_matching.len() != graph.m() {
        return Err(RelimError::InvalidParameter {
            message: format!("{} flags for {} edges", in_matching.len(), graph.m()),
        });
    }
    let mut labeling = PortLabeling::uniform(graph, o().raw());
    for v in 0..graph.n() {
        let matched = (0..graph.degree(v))
            .filter(|&port| in_matching[graph.port_target(v, port).edge])
            .count();
        if matched > b {
            return Err(RelimError::InvalidParameter {
                message: format!("node {v} has {matched} > b = {b} matched edges"),
            });
        }
        let saturated = matched == b;
        for port in 0..graph.degree(v) {
            let label = if in_matching[graph.port_target(v, port).edge] {
                m()
            } else if saturated {
                o()
            } else {
                p()
            };
            labeling.set(v, port, label.raw());
        }
    }
    Ok(labeling)
}

/// End-to-end check: validates `in_matching` as a maximal b-matching and
/// checks the induced labeling against the encoding (sub-multiset policy
/// at boundary nodes).
///
/// # Errors
///
/// Returns a description of the first failure.
pub fn check_b_matching_labeling(
    graph: &Graph,
    in_matching: &[bool],
    delta: u32,
    b: u32,
) -> Result<()> {
    checkers::check_maximal_b_matching(graph, in_matching, b as usize).map_err(|v| {
        RelimError::InvalidParameter { message: format!("not a maximal b-matching: {v:?}") }
    })?;
    let problem = maximal_b_matching_problem(delta, b)?;
    let labeling = matching_to_labeling(graph, in_matching, b as usize)?;
    convert::check_labeling(&problem, graph, &labeling, convert::BoundaryPolicy::SubMultiset)
        .map_err(|v| RelimError::InvalidParameter {
            message: format!("labeling violates the encoding: {v:?}"),
        })
}

/// Extracts a maximal matching of `graph` from an MIS of its line graph
/// — §1's "an MIS of the line graph of G is a maximal matching of G",
/// executable.
///
/// # Errors
///
/// Rejects `line_mis` vectors of the wrong length; the caller provides a
/// valid MIS of [`Graph::line_graph`].
pub fn matching_from_line_mis(graph: &Graph, line_mis: &[bool]) -> Result<Vec<bool>> {
    if line_mis.len() != graph.m() {
        return Err(RelimError::InvalidParameter {
            message: format!("{} MIS flags for {} edges", line_mis.len(), graph.m()),
        });
    }
    Ok(line_mis.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_sim::edge_coloring::tree_edge_coloring;
    use local_sim::{checkers, trees};
    use relim_core::{autolb, zeroround};

    #[test]
    fn problem_shapes() {
        let mm = maximal_matching_problem(4).unwrap();
        assert_eq!(mm.alphabet().len(), 3);
        assert_eq!(mm.node().len(), 2); // M O³ and P⁴
        assert_eq!(mm.edge().len(), 3);
        let b2 = maximal_b_matching_problem(4, 2).unwrap();
        assert_eq!(b2.node().len(), 3); // M²O², P⁴, M P³
        assert!(maximal_b_matching_problem(3, 0).is_err());
        assert!(maximal_b_matching_problem(3, 4).is_err());
        assert!(maximal_matching_problem(1).is_err());
    }

    #[test]
    fn b_equals_one_is_maximal_matching() {
        let a = maximal_matching_problem(5).unwrap();
        let b = maximal_b_matching_problem(5, 1).unwrap();
        assert!(a.semantically_equal(&b));
    }

    #[test]
    fn triviality_landscape() {
        // For b < Δ: gadget-trivial on regular trees (color classes are
        // perfect matchings) but not bare-trivial — see the module docs.
        for delta in [2u32, 3, 5] {
            for b in 1..delta.min(4) {
                let p = maximal_b_matching_problem(delta, b).unwrap();
                assert!(zeroround::solvable_deterministically(&p), "Δ={delta}, b={b}");
                assert!(!zeroround::solvable_pn_universal(&p), "Δ={delta}, b={b}");
            }
            // b = Δ is genuinely trivial: match every edge (M^Δ).
            let all = maximal_b_matching_problem(delta, delta).unwrap();
            assert!(zeroround::solvable_pn_universal(&all), "Δ={delta}");
        }
    }

    #[test]
    fn autolb_universal_chain_exists() {
        // Without the coloring input the problem is non-trivial; the
        // automatic search certifies at least one round and replays.
        let mm = maximal_matching_problem(3).unwrap();
        let opts = autolb::AutoLbOptions {
            max_steps: 2,
            label_budget: 6,
            triviality: autolb::Triviality::Universal,
        };
        let outcome = relim_core::Engine::sequential().auto_lower_bound(&mm, &opts);
        assert!(outcome.certified_rounds >= 1);
        assert_eq!(autolb::verify_chain(&outcome).unwrap(), outcome.certified_rounds);
    }

    #[test]
    fn algorithm_output_satisfies_encoding() {
        for b in 1usize..=3 {
            let g = trees::complete_regular_tree(4, 3).unwrap();
            let coloring = tree_edge_coloring(&g).unwrap();
            let rep = local_algos::b_matching::maximal_b_matching(&g, &coloring, b, 7).unwrap();
            check_b_matching_labeling(&g, &rep.in_matching, 4, b as u32).unwrap();
        }
    }

    #[test]
    fn labeling_rejects_oversaturated_input() {
        let g = trees::star(3).unwrap();
        // All three edges "matched" at the center exceeds b = 2.
        let flags = vec![true; g.m()];
        assert!(matching_to_labeling(&g, &flags, 2).is_err());
        assert!(matching_to_labeling(&g, &flags[..1], 2).is_err());
    }

    #[test]
    fn line_graph_mis_is_maximal_matching() {
        // §1: an MIS of L(G) is a maximal matching of G.
        for seed in 0..4 {
            let g = trees::random_tree(60, 5, seed).unwrap();
            let lg = g.line_graph();
            assert_eq!(lg.n(), g.m());
            let rep = local_algos::luby::luby_mis(&lg, seed).unwrap();
            checkers::check_mis(&lg, &rep.in_set).unwrap();
            let matching = matching_from_line_mis(&g, &rep.in_set).unwrap();
            checkers::check_maximal_matching(&g, &matching).unwrap();
        }
    }

    #[test]
    fn line_graph_structure() {
        // Path: line graph is a shorter path. Star: line graph is a clique.
        let p = trees::path(5).unwrap();
        let lp = p.line_graph();
        assert_eq!(lp.n(), 4);
        assert_eq!(lp.m(), 3);
        assert!(lp.is_tree());
        let s = trees::star(4).unwrap();
        let ls = s.line_graph();
        assert_eq!(ls.n(), 4);
        assert_eq!(ls.m(), 6); // K₄
    }
}
