//! The final lower bounds: Theorem 1 and Corollary 2.
//!
//! Theorem 1: for `k ≤ Δ^ε`, k-outdegree dominating set requires
//! `Ω(min{log Δ, log_Δ n})` rounds deterministically and
//! `Ω(min{log Δ, log_Δ log n})` randomized, in Δ-regular trees.
//!
//! Corollary 2 (choosing Δ ≈ 2^√log n resp. 2^√log log n):
//! `Ω(min{log Δ, √log n})` deterministic and `Ω(min{log Δ, √log log n})`
//! randomized, in n-node trees of maximum degree Δ.
//!
//! The concrete round counts below use the *measured* chain length
//! `t(Δ, k)` of Lemma 13 in place of the asymptotic `ε log Δ`, making every
//! number in the tables reproducible arithmetic rather than an asymptotic
//! claim.

use crate::sequence;

/// The deterministic PN-model lower bound (in rounds) for k-outdegree
/// dominating sets on Δ-regular trees: the Lemma 13 chain length + 1
/// (the last problem is not 0-round solvable, Lemma 12), minus the one
/// round of Lemma 5 — reported as the chain length itself.
pub fn pn_lower_bound(delta: u32, k: u32) -> u32 {
    sequence::paper_chain(delta, k).length()
}

/// The same bound via the exact Corollary 10 recurrence (slightly larger).
pub fn pn_lower_bound_exact(delta: u32, k: u32) -> u32 {
    sequence::exact_chain(delta, k).length()
}

/// Theorem 1, deterministic LOCAL: `min{t(Δ,k), log_Δ n}` rounds.
///
/// The `log_Δ n` branch is the standard lifting cap (Theorem 14): the
/// speedup argument applies as long as the tree looks regular beyond the
/// horizon, which holds for `T ≤ O(log_Δ n)`.
pub fn theorem1_det(n: f64, delta: u32, k: u32) -> f64 {
    let t = f64::from(pn_lower_bound(delta, k));
    let cap = n.ln() / f64::from(delta).ln();
    t.min(cap)
}

/// Theorem 1, randomized LOCAL: `min{t(Δ,k), log_Δ log n}` rounds.
pub fn theorem1_rand(n: f64, delta: u32, k: u32) -> f64 {
    let t = f64::from(pn_lower_bound(delta, k));
    let cap = n.ln().max(1.0).ln().max(0.0) / f64::from(delta).ln();
    t.min(cap)
}

/// A row of the Theorem 1 bound table (experiment E10).
#[derive(Debug, Clone)]
pub struct BoundRow {
    /// Number of nodes.
    pub n: f64,
    /// Degree.
    pub delta: u32,
    /// Outdegree budget `k`.
    pub k: u32,
    /// Chain length `t(Δ, k)` (the `log Δ` branch, measured).
    pub t: u32,
    /// `log_Δ n` (the lifting cap, deterministic).
    pub det_cap: f64,
    /// `log_Δ log n` (the lifting cap, randomized).
    pub rand_cap: f64,
    /// Deterministic bound `min{t, log_Δ n}`.
    pub det_bound: f64,
    /// Randomized bound `min{t, log_Δ log n}`.
    pub rand_bound: f64,
}

/// Produces the Theorem 1 table over sweeps of Δ for fixed `n`, `k`.
pub fn theorem1_table(n: f64, deltas: &[u32], k: u32) -> Vec<BoundRow> {
    deltas
        .iter()
        .map(|&delta| {
            let t = pn_lower_bound(delta, k);
            let det_cap = n.ln() / f64::from(delta).ln();
            let rand_cap = n.ln().max(1.0).ln().max(0.0) / f64::from(delta).ln();
            BoundRow {
                n,
                delta,
                k,
                t,
                det_cap,
                rand_cap,
                det_bound: f64::from(t).min(det_cap),
                rand_bound: f64::from(t).min(rand_cap),
            }
        })
        .collect()
}

/// Theorem 1 (deterministic) with the exact-recurrence chain — the tighter
/// measured variant of the `log Δ` branch.
pub fn theorem1_det_exact(n: f64, delta: u32, k: u32) -> f64 {
    let t = f64::from(pn_lower_bound_exact(delta, k));
    let cap = n.ln() / f64::from(delta).ln();
    t.min(cap)
}

/// Theorem 1 (randomized) with the exact-recurrence chain.
pub fn theorem1_rand_exact(n: f64, delta: u32, k: u32) -> f64 {
    let t = f64::from(pn_lower_bound_exact(delta, k));
    let cap = n.ln().max(1.0).ln().max(0.0) / f64::from(delta).ln();
    t.min(cap)
}

/// Corollary 2's choice of degree for the deterministic bound:
/// `Δ* ≈ 2^√(log₂ n)`, which balances the two branches of Theorem 1 and
/// yields a `√log n`-type bound. Returns `(Δ*, bound)`; the bound uses the
/// exact-recurrence chain for the `log Δ` branch.
pub fn corollary2_det(n: f64) -> (u32, f64) {
    let log_n = n.log2().max(1.0);
    let delta = (2f64).powf(log_n.sqrt()).round().max(2.0) as u32;
    (delta, theorem1_det_exact(n, delta, 0))
}

/// Corollary 2's randomized choice: `Δ* ≈ 2^√(log₂ log₂ n)`.
/// Returns `(Δ*, bound)`.
pub fn corollary2_rand(n: f64) -> (u32, f64) {
    let loglog_n = n.log2().max(2.0).log2().max(1.0);
    let delta = (2f64).powf(loglog_n.sqrt()).round().max(2.0) as u32;
    (delta, theorem1_rand_exact(n, delta, 0))
}

/// The largest `k` for which the Lemma 13 chain still yields a bound of at
/// least `fraction` of its `k = 0` value — an empirical view of the
/// theorem's `k ≤ Δ^ε` condition.
pub fn max_supported_k(delta: u32, fraction: f64) -> u32 {
    let base = pn_lower_bound(delta, 0);
    let threshold = (f64::from(base) * fraction).floor() as u32;
    let mut k = 0;
    while k < delta && pn_lower_bound(delta, k + 1) >= threshold.max(1) {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_small_delta_branch() {
        // For small Δ and huge n, the log Δ branch binds.
        let b = theorem1_det(1e30, 64, 0);
        assert!(b <= f64::from(pn_lower_bound(64, 0)) + 1e-9);
        assert!(b >= 1.0);
    }

    #[test]
    fn theorem1_large_delta_branch() {
        // For Δ close to n, log_Δ n is small and binds.
        let n = 1e6;
        let b = theorem1_det(n, 1 << 18, 0);
        let cap = n.ln() / f64::from(1 << 18).ln();
        assert!((b - cap.min(f64::from(pn_lower_bound(1 << 18, 0)))).abs() < 1e-9);
    }

    #[test]
    fn bounds_monotone_in_n() {
        for delta in [16u32, 256, 4096] {
            let b1 = theorem1_det(1e4, delta, 0);
            let b2 = theorem1_det(1e8, delta, 0);
            assert!(b2 >= b1);
        }
    }

    #[test]
    fn corollary2_tracks_sqrt_log_n() {
        let (_, b1) = corollary2_det(1e6);
        let (_, b2) = corollary2_det(1e24);
        // log n grew 4x, so sqrt(log n) should roughly double; allow slack
        // because the chain constant is ~1/3.
        assert!(b2 > b1 * 1.3, "b1={b1}, b2={b2}");
    }

    #[test]
    fn rand_bound_below_det_bound() {
        for n in [1e4, 1e8, 1e16] {
            for delta in [16u32, 256, 4096] {
                assert!(theorem1_rand(n, delta, 0) <= theorem1_det(n, delta, 0) + 1e-12);
            }
        }
    }

    #[test]
    fn k_degradation() {
        // Bounds shrink as k grows, but survive small k (the k <= Δ^ε regime).
        let delta = 1 << 15;
        let t0 = pn_lower_bound(delta, 0);
        let t4 = pn_lower_bound(delta, 4);
        assert!(t4 <= t0);
        assert!(t4 >= 1, "small k must keep a nontrivial bound");
        let k_max = max_supported_k(delta, 0.5);
        assert!(k_max >= 1);
    }

    #[test]
    fn table_shape() {
        let rows = theorem1_table(1e9, &[4, 16, 64, 256, 1024, 4096], 0);
        assert_eq!(rows.len(), 6);
        // det bound unimodal-ish: rises with Δ then falls once log_Δ n binds.
        assert!(rows.iter().any(|r| r.det_bound > rows[0].det_bound));
    }
}
