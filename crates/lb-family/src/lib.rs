//! # lb-family — the BBKO PODC 2021 problem family, mechanized
//!
//! This crate encodes the technical content of Balliu, Brandt, Kuhn,
//! Olivetti, *"Improved Distributed Lower Bounds for MIS and Bounded
//! (Out-)Degree Dominating Sets in Trees"* (PODC 2021, arXiv:2106.02440) as
//! executable, machine-checked artifacts on top of the
//! [`relim_core`] round elimination engine and the [`local_sim`] simulator:
//!
//! * [`family`] — the problem family `Π_Δ(a,x)` (§3.1) and its relaxation
//!   `Π⁺_Δ(a,x)` (§3.3), plus the canonical MIS encoding (§2.2).
//! * [`lemma6`] — the explicit computation of `R(Π_Δ(a,x))` (Lemma 6) and
//!   its node diagram (Figure 5), verified against the engine.
//! * [`lemma8`] — the full `R̄(R(Π_Δ(a,x)))` computation and its relaxation
//!   to `Π_rel ≅ Π⁺_Δ(a,x)` (Lemma 8, Definition 7).
//! * [`transforms`] — the 0/1-round conversions of Lemmas 5, 9 and 11 as
//!   executable functions on labeled trees.
//! * [`matchings`] — §1's related problems: maximal matchings and
//!   b-matchings encoded in the formalism, with line-graph bridges.
//! * [`sequence`] — the lower-bound chain of Lemma 13 and its length.
//! * [`bounds`] — the final bounds of Theorem 1 and Corollary 2.
//! * [`sinkless`] — the sinkless orientation fixed point (engine sanity
//!   anchor from the round elimination literature).
//! * [`zeroround_mc`] — Monte-Carlo experiments backing Lemma 15's
//!   randomized 0-round failure bound.
//! * [`convert`] — bridging [`relim_core::Problem`] to
//!   [`local_sim::lcl_solver::LclInstance`] and port labelings.
//!
//! ## Quickstart
//!
//! ```
//! use lb_family::family::{self, PiParams};
//! use lb_family::lemma6;
//!
//! let params = PiParams { delta: 6, a: 4, x: 1 };
//! let pi = family::pi(&params).unwrap();
//! assert_eq!(pi.alphabet().len(), 5);
//!
//! // Mechanically verify Lemma 6 at these parameters:
//! let report = lemma6::verify(&params).unwrap();
//! assert!(report.matches_paper());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod certificate;
pub mod convert;
pub mod family;
pub mod lemma6;
pub mod lemma8;
pub mod matchings;
pub mod sequence;
pub mod sinkless;
pub mod transforms;
pub mod zeroround_mc;

pub use family::PiParams;
