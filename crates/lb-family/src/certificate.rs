//! Machine-checkable lower-bound certificates.
//!
//! A [`ChainCertificate`] packages the complete Lemma 13 argument for a
//! concrete `(Δ, k)`: the problem sequence, the per-transition
//! justification (one Corollary 10 step followed by a Lemma 11
//! relaxation), and the Lemma 12 terminal condition — each recorded as a
//! separately re-checkable fact. [`ChainCertificate::verify`] re-derives
//! every fact from scratch; for small Δ it additionally re-verifies the
//! underlying round elimination Lemmas 6 and 8 with the engine.

use crate::family::{self, PiParams};
use crate::{lemma6, lemma8, sequence};
use relim_core::error::Result;
use relim_core::zeroround;
use relim_core::Engine;

/// One chain member with its transition evidence.
#[derive(Debug, Clone)]
pub struct CertStep {
    /// Position in the chain.
    pub index: usize,
    /// The member `Π_Δ(a_i, x_i)`.
    pub params: PiParams,
    /// Lemma 12 applies: the member is not 0-round solvable.
    pub not_zero_round_solvable: bool,
    /// For non-terminal steps: the parameters after one Corollary 10 step.
    pub corollary10_output: Option<PiParams>,
    /// For non-terminal steps: the Lemma 11 relaxation from the Corollary
    /// 10 output down to the next member is legal (`a` shrinks, `x` grows).
    pub relaxation_legal: Option<bool>,
}

/// A full lower-bound certificate for `(Δ, k)`.
#[derive(Debug, Clone)]
pub struct ChainCertificate {
    /// Degree.
    pub delta: u32,
    /// Outdegree budget (the `k` of k-ODS; `x₀ = k`).
    pub k: u32,
    /// Chain members with evidence.
    pub steps: Vec<CertStep>,
    /// Whether Lemmas 6 and 8 were additionally engine-verified per step
    /// (only attempted for `Δ ≤ 5`).
    pub engine_verified: bool,
}

impl ChainCertificate {
    /// Builds the certificate from the paper-schedule chain.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction errors.
    pub fn build(delta: u32, k: u32) -> Result<Self> {
        let chain = sequence::paper_chain(delta, k);
        let mut steps = Vec::with_capacity(chain.steps.len());
        for (index, params) in chain.steps.iter().enumerate() {
            let problem = family::pi(params)?;
            let not_zero = !zeroround::solvable_deterministically(&problem);
            let (c10, legal) = if index + 1 < chain.steps.len() {
                let out = params.corollary10_step();
                let next = chain.steps[index + 1];
                (Some(out), Some(out.a >= next.a && out.x <= next.x))
            } else {
                (None, None)
            };
            steps.push(CertStep {
                index,
                params: *params,
                not_zero_round_solvable: not_zero,
                corollary10_output: c10,
                relaxation_legal: legal,
            });
        }
        Ok(ChainCertificate { delta, k, steps, engine_verified: false })
    }

    /// The chain length `t` (number of transitions).
    pub fn length(&self) -> u32 {
        self.steps.len().saturating_sub(1) as u32
    }

    /// Re-checks every recorded fact; with an [`Engine`] session (and
    /// `Δ ≤ 5`), also re-verifies Lemmas 6 and 8 at every transition with
    /// the round elimination engine — all transitions share the session's
    /// cache and workers.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. parameters outside lemma hypotheses).
    pub fn verify(&mut self, engine: Option<&Engine>) -> Result<bool> {
        let mut ok = true;
        for (i, step) in self.steps.iter().enumerate() {
            // Lemma 12 side conditions + direct engine check.
            let p = family::pi(&step.params)?;
            ok &= step.params.a >= 1 && step.params.x < self.delta;
            ok &= !zeroround::solvable_deterministically(&p);
            ok &= step.not_zero_round_solvable;
            if i + 1 < self.steps.len() {
                // Corollary 10 applicability at this member.
                ok &= step.params.corollary10_applicable();
                ok &= step.relaxation_legal == Some(true);
            }
        }
        if let Some(engine) = engine {
            if self.delta <= 5 {
                for step in &self.steps {
                    if step.corollary10_output.is_some() && step.params.lemma6_applicable() {
                        ok &= lemma6::verify(&step.params)?.matches_paper();
                        let mach = lemma8::Lemma8Machinery::compute(&step.params, engine)?;
                        ok &= mach.verify().matches_paper();
                    }
                }
                self.engine_verified = true;
            }
        }
        Ok(ok)
    }

    /// Human-readable rendering of the certificate.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Lower-bound certificate for Δ = {}, k = {} (t = {} transitions)\n",
            self.delta,
            self.k,
            self.length()
        );
        for step in &self.steps {
            out.push_str(&format!(
                "  Π_{} = Π_Δ({}, {})   not-0-round: {}",
                step.index, step.params.a, step.params.x, step.not_zero_round_solvable
            ));
            if let (Some(c10), Some(legal)) = (step.corollary10_output, step.relaxation_legal) {
                out.push_str(&format!("   —C10→ ({}, {})  —L11 legal: {}", c10.a, c10.x, legal));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "conclusion: Π_Δ({}, {}) requires > {} rounds in the deterministic PN model;\n",
            self.delta,
            self.k,
            self.length()
        ));
        out.push_str("via Lemma 5, so does the k-outdegree dominating set problem (±1 round).");
        if self.engine_verified {
            out.push_str("\n(engine-verified: Lemmas 6 and 8 recomputed at every transition)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_small_delta_engine_verified() {
        let mut cert = ChainCertificate::build(4, 0).unwrap();
        assert!(cert.verify(Some(&Engine::sequential())).unwrap(), "{}", cert.render());
        assert!(cert.engine_verified);
        assert!(cert.render().contains("Lower-bound certificate"));
    }

    #[test]
    fn certificate_large_delta_arithmetic_only() {
        let mut cert = ChainCertificate::build(1 << 18, 0).unwrap();
        assert_eq!(cert.length(), 5);
        assert!(cert.verify(None).unwrap());
        assert!(!cert.engine_verified);
    }

    #[test]
    fn certificate_with_k() {
        let mut cert = ChainCertificate::build(1 << 15, 3).unwrap();
        assert!(cert.verify(None).unwrap());
        assert!(cert.length() >= 2);
        // x starts at k.
        assert_eq!(cert.steps[0].params.x, 3);
    }

    #[test]
    fn tampered_certificate_fails() {
        let mut cert = ChainCertificate::build(4096, 0).unwrap();
        cert.steps[0].not_zero_round_solvable = false;
        assert!(!cert.verify(None).unwrap());
    }
}
