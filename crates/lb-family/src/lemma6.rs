//! Mechanical verification of Lemma 6 and Figure 5.
//!
//! Lemma 6 states that (after renaming) `R(Π_Δ(a,x))` for `x + 2 ≤ a ≤ Δ`
//! is the 8-label problem with node constraint
//!
//! ```text
//! [MUBQ]^(Δ−x) [XMOUABPQ]^x
//! [PQ] [OUABPQ]^(Δ−1)
//! [ABPQ]^a [XMOUABPQ]^(Δ−a)
//! ```
//!
//! and edge constraint `{XQ, OB, AU, PM}`, where the renaming identifies
//! each new label with a right-closed set of old labels:
//!
//! ```text
//! X ↦ {X}        M ↦ {M,X}      O ↦ {O,X}      U ↦ {M,O,X}
//! A ↦ {A,O,X}    B ↦ {M,A,O,X}  P ↦ {P,A,O,X}  Q ↦ {M,P,A,O,X}
//! ```
//!
//! [`verify`] recomputes `R(Π_Δ(a,x))` with the engine and compares both
//! constraints **exactly** against the claim, then checks that the node
//! diagram equals Figure 5 (which coincides with set inclusion on the
//! provenance sets).

use crate::family::{self, PiParams};
use relim_core::diagram::StrengthOrder;
use relim_core::error::{RelimError, Result};
use relim_core::roundelim::r_step;
use relim_core::{Alphabet, Constraint, Label, LabelSet, Line, Problem};

/// Indices of the 8 labels of the claimed `R(Π)` in canonical order
/// (sorted by provenance-set cardinality, then bitmask) — this matches the
/// deterministic ordering produced by the engine.
pub mod rp_labels {
    /// `{X}`
    pub const X: u8 = 0;
    /// `{M,X}`
    pub const M: u8 = 1;
    /// `{O,X}`
    pub const O: u8 = 2;
    /// `{M,O,X}`
    pub const U: u8 = 3;
    /// `{A,O,X}`
    pub const A: u8 = 4;
    /// `{M,A,O,X}`
    pub const B: u8 = 5;
    /// `{P,A,O,X}`
    pub const P: u8 = 6;
    /// `{M,P,A,O,X}`
    pub const Q: u8 = 7;
}

/// The 8 provenance sets of Lemma 6's renaming, in canonical order
/// (as sets over the 5 labels of `Π_Δ(a,x)`).
pub fn claimed_provenance() -> Vec<LabelSet> {
    use family::{A, M, O, P, X};
    let s = |ls: &[u8]| -> LabelSet { ls.iter().map(|&l| Label::new(l)).collect() };
    vec![
        s(&[X]),
        s(&[M, X]),
        s(&[O, X]),
        s(&[M, O, X]),
        s(&[A, O, X]),
        s(&[M, A, O, X]),
        s(&[P, A, O, X]),
        s(&[M, P, A, O, X]),
    ]
}

/// The claimed problem `R(Π_Δ(a,x))` of Lemma 6, built verbatim from the
/// paper's statement over the canonical 8-label alphabet.
///
/// # Errors
///
/// Requires `x + 2 ≤ a ≤ Δ` (Lemma 6's hypothesis).
pub fn claimed_r_of_pi(params: &PiParams) -> Result<Problem> {
    params.validate()?;
    if !params.lemma6_applicable() {
        return Err(RelimError::InvalidParameter {
            message: format!(
                "Lemma 6 requires x+2 <= a <= delta; got a={}, x={}, delta={}",
                params.a, params.x, params.delta
            ),
        });
    }
    use rp_labels::{A, B, M, O, P, Q, U, X};
    let alphabet = Alphabet::new(&["X", "MX", "OX", "MOX", "AOX", "MAOX", "PAOX", "MPAOX"])?;
    let s = |ls: &[u8]| -> LabelSet { ls.iter().map(|&l| Label::new(l)).collect() };
    let all = s(&[X, M, O, U, A, B, P, Q]);
    let mubq = s(&[M, U, B, Q]);
    let pq = s(&[P, Q]);
    let ouabpq = s(&[O, U, A, B, P, Q]);
    let abpq = s(&[A, B, P, Q]);
    let d = params.delta;

    let mut node_lines = vec![Line::new(vec![(pq, 1), (ouabpq, d - 1)]).expect("valid")];
    // Guard zero multiplicities for the boundary parameter values.
    let push = |lines: &mut Vec<Line>, groups: Vec<(LabelSet, u32)>| {
        let groups: Vec<_> = groups.into_iter().filter(|&(_, m)| m > 0).collect();
        lines.push(Line::new(groups).expect("valid"));
    };
    push(&mut node_lines, vec![(mubq, d - params.x), (all, params.x)]);
    push(&mut node_lines, vec![(abpq, params.a), (all, d - params.a)]);
    let node = Constraint::from_lines(&node_lines)?;

    let pair = |a: u8, b: u8| -> Line {
        Line::new(vec![
            (LabelSet::singleton(Label::new(a)), 1),
            (LabelSet::singleton(Label::new(b)), 1),
        ])
        .expect("valid")
    };
    let edge = Constraint::from_lines(&[pair(X, Q), pair(O, B), pair(A, U), pair(P, M)])?;
    Problem::new(alphabet, node, edge)
}

/// The expected Hasse edges of Figure 5 (the node diagram of `R(Π)`),
/// which equal the covering relations of set inclusion on the provenance
/// sets: `X→M, X→O, M→U, O→U, O→A, U→B, A→B, A→P, B→Q, P→Q`.
pub fn figure5_expected_hasse() -> Vec<(u8, u8)> {
    use rp_labels::{A, B, M, O, P, Q, U, X};
    vec![(X, M), (X, O), (M, U), (O, U), (O, A), (U, B), (A, B), (A, P), (B, Q), (P, Q)]
}

/// The outcome of verifying Lemma 6 at one parameter point.
#[derive(Debug, Clone)]
pub struct Lemma6Report {
    /// Parameters checked.
    pub params: PiParams,
    /// Engine provenance sets equal the paper's 8 sets, in order.
    pub provenance_matches: bool,
    /// Node constraints agree exactly (after the canonical renaming).
    pub node_matches: bool,
    /// Edge constraints agree exactly.
    pub edge_matches: bool,
    /// The node diagram's Hasse edges equal Figure 5.
    pub figure5_matches: bool,
    /// Number of explicit node configurations in `R(Π)`.
    pub node_config_count: usize,
}

impl Lemma6Report {
    /// Whether every check passed.
    pub fn matches_paper(&self) -> bool {
        self.provenance_matches && self.node_matches && self.edge_matches && self.figure5_matches
    }
}

/// Runs `R(·)` on `Π_Δ(a,x)` and verifies Lemma 6 + Figure 5 exactly.
///
/// # Errors
///
/// Propagates parameter validation (`x + 2 ≤ a ≤ Δ` required).
pub fn verify(params: &PiParams) -> Result<Lemma6Report> {
    let p = family::pi(params)?;
    let claimed = claimed_r_of_pi(params)?;
    let step = r_step(&p)?;

    let provenance_matches = step.provenance == claimed_provenance();

    // With matching provenance the label indices coincide, so constraints
    // compare directly.
    let node_matches = provenance_matches && step.problem.node() == claimed.node();
    let edge_matches = provenance_matches && step.problem.edge() == claimed.edge();

    let order = StrengthOrder::of_constraint(claimed.node(), claimed.alphabet().len());
    let mut hasse: Vec<(u8, u8)> =
        order.hasse_edges().into_iter().map(|(a, b)| (a.raw(), b.raw())).collect();
    hasse.sort_unstable();
    let mut expected = figure5_expected_hasse();
    expected.sort_unstable();
    let figure5_matches = hasse == expected;

    Ok(Lemma6Report {
        params: *params,
        provenance_matches,
        node_matches,
        edge_matches,
        figure5_matches,
        node_config_count: step.problem.node().len(),
    })
}

/// Sweeps Lemma 6 verification over all valid `(a, x)` for one `Δ`, with
/// the parameter points sharded over the session's workers. Reports come
/// back in sweep order — byte-identical at any thread count.
///
/// # Errors
///
/// Propagates engine errors (from the earliest failing point).
pub fn verify_sweep(delta: u32, engine: &relim_core::Engine) -> Result<Vec<Lemma6Report>> {
    engine.try_map_owned(family::sweep_points(delta), verify)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma6_holds_at_small_params() {
        for (delta, a, x) in [(3, 2, 0), (4, 3, 0), (4, 3, 1), (5, 4, 2), (6, 4, 1), (6, 6, 0)] {
            let report = verify(&PiParams { delta, a, x }).unwrap();
            assert!(
                report.matches_paper(),
                "Lemma 6 failed at delta={delta}, a={a}, x={x}: {report:?}"
            );
        }
    }

    #[test]
    fn lemma6_sweep_delta5() {
        let reports = verify_sweep(5, &relim_core::Engine::sequential()).unwrap();
        assert!(!reports.is_empty());
        for r in reports {
            assert!(r.matches_paper(), "failed at {:?}", r.params);
        }
    }

    #[test]
    fn requires_hypothesis() {
        // a < x + 2 violates Lemma 6's hypothesis.
        assert!(verify(&PiParams { delta: 4, a: 2, x: 1 }).is_err());
    }

    #[test]
    fn figure5_is_inclusion_order() {
        // Independent characterization: the Hasse edges of Figure 5 must be
        // exactly the covering pairs of strict set inclusion on provenance.
        let prov = claimed_provenance();
        let mut expected = Vec::new();
        for (i, &si) in prov.iter().enumerate() {
            for (j, &sj) in prov.iter().enumerate() {
                if si.is_strict_subset_of(sj) {
                    let covered = prov
                        .iter()
                        .any(|&z| si.is_strict_subset_of(z) && z.is_strict_subset_of(sj));
                    if !covered {
                        expected.push((i as u8, j as u8));
                    }
                }
            }
        }
        expected.sort_unstable();
        let mut fig5 = figure5_expected_hasse();
        fig5.sort_unstable();
        assert_eq!(expected, fig5);
    }
}
