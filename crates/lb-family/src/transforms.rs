//! The paper's 0- and 1-round conversions as executable functions.
//!
//! * [`lemma5_transform`] — a k-outdegree dominating set yields a
//!   `Π_Δ(a,k)` solution in 1 round (Lemma 5).
//! * [`lemma9_transform`] — given a Δ-edge coloring, a `Π⁺_Δ(a,x)` solution
//!   yields a `Π_Δ(⌊(a−2x−1)/2⌋, x+1)` solution in 0 rounds (Lemma 9 — the
//!   paper's key novelty).
//! * [`lemma11_relax`] — `Π_Δ(a',x')` solutions convert to `Π_Δ(a,x)`
//!   solutions for `a ≤ a'`, `x ≥ x'` in 0 rounds (Lemma 11).
//!
//! Each function is a *local* map: a node's new labels depend only on its
//! own labels, its incident edge colors, and (for Lemma 5) one round of
//! neighborhood information — exactly the locality the paper claims.
//! Boundary nodes (tree leaves standing in for the infinite Δ-regular tree)
//! apply the same rules with counts capped instead of exact.

use crate::family::{self, PiParams};
use local_sim::{EdgeColoring, Graph, Orientation, PortLabeling};
use relim_core::error::{RelimError, Result};

/// Lemma 5: converts a k-outdegree dominating set into a `Π_Δ(a,k)`
/// solution (for every `a`) using one round of communication (each node
/// needs to know which neighbors are in the set).
///
/// Set nodes label their ≤ k outgoing set-edges `X` (padding with further
/// `X`s to exactly `min(k, deg)`), the rest `M`; other nodes point `P` at
/// one dominating neighbor and label the rest `O`.
///
/// # Errors
///
/// Fails if `in_set` is not dominating or a set node's outdegree exceeds
/// `k` (i.e. the input is not a valid k-outdegree dominating set).
pub fn lemma5_transform(
    graph: &Graph,
    in_set: &[bool],
    orientation: &Orientation,
    k: u32,
) -> Result<PortLabeling> {
    local_sim::checkers::check_k_outdegree_domset(graph, in_set, orientation, k as usize)
        .map_err(|v| RelimError::InvalidParameter { message: format!("invalid k-ODS: {v}") })?;
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(graph.n());
    for v in 0..graph.n() {
        let d = graph.degree(v);
        let mut row = vec![0u8; d];
        if in_set[v] {
            // Outgoing set-edges become X, the rest M.
            let mut x_count = 0usize;
            for (p, t) in graph.ports(v).iter().enumerate() {
                if in_set[t.node] && orientation.is_out_of(graph, t.edge, v) {
                    row[p] = family::X;
                    x_count += 1;
                } else {
                    row[p] = family::M;
                }
            }
            // Pad to exactly min(k, d) many X.
            let want = (k as usize).min(d);
            for slot in row.iter_mut() {
                if x_count >= want {
                    break;
                }
                if *slot == family::M {
                    *slot = family::X;
                    x_count += 1;
                }
            }
        } else {
            let pointer = graph
                .ports(v)
                .iter()
                .position(|t| in_set[t.node])
                .expect("dominated by checker precondition");
            for (p, slot) in row.iter_mut().enumerate() {
                *slot = if p == pointer { family::P } else { family::O };
            }
        }
        rows.push(row);
    }
    PortLabeling::from_vecs(graph, rows)
        .map_err(|e| RelimError::InvalidParameter { message: e.to_string() })
}

/// Lemma 9: the 0-round conversion from a `Π⁺_Δ(a,x)` solution to a
/// `Π_Δ(⌊(a−2x−1)/2⌋, x+1)` solution, exploiting a proper Δ-edge coloring.
///
/// The rules (paper proof of Lemma 9, colors 0-based):
/// let `threshold = ⌊(a−1)/2⌋` and `target = ⌊(a−2x−1)/2⌋`;
///
/// * nodes whose configuration contains `A`: replace `A` by `X` on all
///   edges of color `< threshold`, then trim surplus `A`s to `target`;
/// * nodes whose configuration contains `C`: on edges of color
///   `< threshold` currently labeled `C` write `A`, all other ports become
///   `X`, then trim surplus `A`s to `target`;
/// * all other nodes are unchanged.
///
/// Returns the new labeling and the parameters of the target problem.
///
/// # Errors
///
/// Requires `2x + 1 ≤ a ≤ Δ` (Lemma 9's hypothesis) and a proper edge
/// coloring.
pub fn lemma9_transform(
    params: &PiParams,
    graph: &Graph,
    coloring: &EdgeColoring,
    labeling: &PortLabeling,
) -> Result<(PortLabeling, PiParams)> {
    params.validate()?;
    if 2 * params.x + 1 > params.a {
        return Err(RelimError::InvalidParameter {
            message: format!("Lemma 9 requires 2x+1 <= a; got a={}, x={}", params.a, params.x),
        });
    }
    if !local_sim::edge_coloring::is_proper(graph, coloring) {
        return Err(RelimError::InvalidParameter {
            message: "Lemma 9 requires a proper edge coloring".into(),
        });
    }
    let threshold = ((params.a - 1) / 2) as usize;
    let target = ((params.a - 2 * params.x - 1) / 2) as usize;
    let next = PiParams { delta: params.delta, a: target as u32, x: params.x + 1 };

    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(graph.n());
    for v in 0..graph.n() {
        let d = graph.degree(v);
        let mut row: Vec<u8> = (0..d).map(|p| labeling.get(v, p)).collect();
        let has_c = row.contains(&family::C);
        let has_a = row.contains(&family::A);
        if has_c {
            // C-node: low-color C-ports become A, everything else X.
            for (p, slot) in row.iter_mut().enumerate() {
                let color = coloring.color_at(graph, v, p);
                *slot = if *slot == family::C && color < threshold { family::A } else { family::X };
            }
            trim_label(&mut row, family::A, family::X, target);
        } else if has_a {
            // A-node: low-color A-ports become X, then trim surplus As.
            for (p, slot) in row.iter_mut().enumerate() {
                let color = coloring.color_at(graph, v, p);
                if *slot == family::A && color < threshold {
                    *slot = family::X;
                }
            }
            trim_label(&mut row, family::A, family::X, target);
        }
        rows.push(row);
    }
    let out = PortLabeling::from_vecs(graph, rows)
        .map_err(|e| RelimError::InvalidParameter { message: e.to_string() })?;
    Ok((out, next))
}

/// Lemma 11: relaxes a `Π_Δ(a',x')` solution to a `Π_Δ(a,x)` solution in 0
/// rounds, for `a ≤ a'` and `x ≥ x'`: surplus `M`s and `A`s become `X`.
///
/// # Errors
///
/// Requires `to.a ≤ from.a`, `to.x ≥ from.x` and equal Δ.
pub fn lemma11_relax(
    from: &PiParams,
    to: &PiParams,
    graph: &Graph,
    labeling: &PortLabeling,
) -> Result<PortLabeling> {
    from.validate()?;
    to.validate()?;
    if to.delta != from.delta || to.a > from.a || to.x < from.x {
        return Err(RelimError::InvalidParameter {
            message: format!(
                "Lemma 11 requires a <= a', x >= x', same delta; got {from:?} -> {to:?}"
            ),
        });
    }
    let delta = from.delta as usize;
    let m_target = delta.saturating_sub(to.x as usize);
    let a_target = to.a as usize;
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(graph.n());
    for v in 0..graph.n() {
        let d = graph.degree(v);
        let mut row: Vec<u8> = (0..d).map(|p| labeling.get(v, p)).collect();
        if row.contains(&family::M) {
            trim_label(&mut row, family::M, family::X, m_target);
        } else if row.contains(&family::A) {
            trim_label(&mut row, family::A, family::X, a_target);
        }
        rows.push(row);
    }
    PortLabeling::from_vecs(graph, rows)
        .map_err(|e| RelimError::InvalidParameter { message: e.to_string() })
}

/// Replaces occurrences of `from` by `to` (from the highest port down)
/// until at most `keep` occurrences of `from` remain.
fn trim_label(row: &mut [u8], from: u8, to: u8, keep: usize) {
    let mut count = row.iter().filter(|&&l| l == from).count();
    for slot in row.iter_mut().rev() {
        if count <= keep {
            break;
        }
        if *slot == from {
            *slot = to;
            count -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{self, BoundaryPolicy};
    use local_sim::lcl_solver::LeafPolicy;
    use local_sim::{edge_coloring, trees};

    /// Builds the trivial 1-outdegree dominating set "all nodes, edges
    /// oriented toward the parent" on a tree.
    fn all_nodes_kods(graph: &Graph) -> (Vec<bool>, Orientation) {
        let (_, parent) = graph.tree_order(0).unwrap();
        let mut o = Orientation::unoriented(graph.m());
        for (v, &par) in parent.iter().enumerate() {
            if par != usize::MAX {
                let e = graph.ports(v).iter().find(|t| t.node == par).unwrap().edge;
                o.orient_out_of(graph, e, v);
            }
        }
        (vec![true; graph.n()], o)
    }

    #[test]
    fn lemma5_from_trivial_kods() {
        let tree = trees::complete_regular_tree(4, 3).unwrap();
        let (in_set, orientation) = all_nodes_kods(&tree);
        let labeling = lemma5_transform(&tree, &in_set, &orientation, 1).unwrap();
        // Result solves Π_Δ(a, 1) for any a; check with a = 3.
        let p = family::pi(&PiParams { delta: 4, a: 3, x: 1 }).unwrap();
        convert::check_labeling(&p, &tree, &labeling, BoundaryPolicy::InteriorOnly).unwrap();
    }

    #[test]
    fn lemma5_from_mis() {
        // An MIS is a 0-outdegree dominating set.
        let tree = trees::complete_regular_tree(3, 4).unwrap();
        let p_mis = family::mis(3).unwrap();
        let inst = convert::to_lcl(&p_mis, LeafPolicy::SubMultiset).unwrap();
        let sol = inst.solve(&tree, 3).unwrap().unwrap();
        let in_set: Vec<bool> =
            (0..tree.n()).map(|v| sol.node_labels(v).iter().all(|&l| l == 0)).collect();
        // Leaves may be undominated boundary nodes; patch by adding them.
        let mut in_set = in_set;
        for v in 0..tree.n() {
            if !in_set[v] && !tree.neighbors(v).any(|u| in_set[u]) {
                in_set[v] = true;
            }
        }
        let orientation = Orientation::unoriented(tree.m());
        // Adjacent set nodes would need orientation; the patch may create
        // adjacent pairs at leaves, so orient those edges out of the leaf.
        let mut orientation = orientation;
        for (e, &(u, v)) in tree.edges().iter().enumerate() {
            if in_set[u] && in_set[v] {
                let leaf = if tree.degree(u) == 1 { u } else { v };
                orientation.orient_out_of(&tree, e, leaf);
            }
        }
        let k = 1; // after patching, out-degree at most 1
        let labeling = lemma5_transform(&tree, &in_set, &orientation, k).unwrap();
        let p = family::pi(&PiParams { delta: 3, a: 2, x: k }).unwrap();
        convert::check_labeling(&p, &tree, &labeling, BoundaryPolicy::InteriorOnly).unwrap();
    }

    #[test]
    fn lemma5_rejects_invalid_input() {
        let tree = trees::path(4).unwrap();
        let orientation = Orientation::unoriented(tree.m());
        // Not dominating.
        let err = lemma5_transform(&tree, &[true, false, false, false], &orientation, 0);
        assert!(err.is_err());
    }

    #[test]
    fn lemma9_end_to_end() {
        // Solve Π⁺ with the tree solver, transform, check against the new Π.
        for (delta, a, x) in [(4u32, 3u32, 0u32), (5, 4, 0), (5, 5, 1), (6, 5, 1)] {
            let params = PiParams { delta, a, x };
            let plus = family::pi_plus(&params).unwrap();
            let inst = convert::to_lcl(&plus, LeafPolicy::SubMultiset).unwrap();
            let tree = trees::complete_regular_tree(delta as usize, 3).unwrap();
            let coloring = edge_coloring::tree_edge_coloring(&tree).unwrap();
            let sol = inst.solve(&tree, 17).unwrap().expect("Π⁺ solvable");
            convert::check_labeling(&plus, &tree, &sol, BoundaryPolicy::SubMultiset).unwrap();
            let (out, next) = lemma9_transform(&params, &tree, &coloring, &sol).unwrap();
            assert_eq!(next.a, (a - 2 * x - 1) / 2);
            assert_eq!(next.x, x + 1);
            let target = family::pi(&next).unwrap();
            convert::check_labeling(&target, &tree, &out, BoundaryPolicy::InteriorOnly)
                .unwrap_or_else(|v| panic!("delta={delta} a={a} x={x}: {v}"));
        }
    }

    #[test]
    fn lemma9_requires_hypothesis() {
        let params = PiParams { delta: 4, a: 2, x: 1 }; // 2x+1 = 3 > a = 2
        let tree = trees::complete_regular_tree(4, 2).unwrap();
        let coloring = edge_coloring::tree_edge_coloring(&tree).unwrap();
        let lab = PortLabeling::uniform(&tree, family::X);
        assert!(lemma9_transform(&params, &tree, &coloring, &lab).is_err());
    }

    #[test]
    fn lemma11_end_to_end() {
        let from = PiParams { delta: 4, a: 3, x: 0 };
        let to = PiParams { delta: 4, a: 1, x: 1 };
        let p_from = family::pi(&from).unwrap();
        let p_to = family::pi(&to).unwrap();
        let inst = convert::to_lcl(&p_from, LeafPolicy::SubMultiset).unwrap();
        let tree = trees::complete_regular_tree(4, 3).unwrap();
        for seed in 0..3 {
            let sol = inst.solve(&tree, seed).unwrap().unwrap();
            let out = lemma11_relax(&from, &to, &tree, &sol).unwrap();
            convert::check_labeling(&p_to, &tree, &out, BoundaryPolicy::InteriorOnly).unwrap();
        }
    }

    #[test]
    fn lemma11_validates_direction() {
        let from = PiParams { delta: 4, a: 2, x: 1 };
        let bad_to = PiParams { delta: 4, a: 3, x: 1 }; // a increased
        let tree = trees::path(3).unwrap();
        let lab = PortLabeling::uniform(&tree, family::X);
        assert!(lemma11_relax(&from, &bad_to, &tree, &lab).is_err());
    }
}
