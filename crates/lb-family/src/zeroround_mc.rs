//! Monte-Carlo experiments for Lemma 15 (randomized 0-round failure).
//!
//! Lemma 15's gadget: a Δ-edge-colored graph whose port numbering assigns
//! port `c` to every color-`c` edge at *both* endpoints. A randomized
//! 0-round algorithm is a distribution over port labelings with
//! configuration in `N`; an edge fails if the two endpoints' (independent)
//! draws put an incompatible pair on it. The paper proves every such
//! algorithm fails with probability `≥ 1/(3Δ)² ≥ 1/Δ⁸`; this module
//! *measures* failure rates of concrete strategies to illustrate the bound.
//!
//! ## Chunked determinism
//!
//! Trials are drawn in fixed-size chunks of [`CHUNK_TRIALS`], each chunk
//! from its own splitmix-derived RNG stream, and failure counts are summed
//! in chunk order. The chunk — not the thread — is the unit of randomness,
//! so sharding chunks over an [`Engine`] session is byte-identical to the
//! sequential run at any thread count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relim_core::zeroround;
use relim_core::{Config, Engine, Label, Problem};

/// Trials per RNG chunk (the unit of parallel sharding).
pub const CHUNK_TRIALS: u64 = 4096;

/// Outcome of a Monte-Carlo 0-round experiment.
#[derive(Debug, Clone)]
pub struct McOutcome {
    /// Number of simulated edges.
    pub trials: u64,
    /// Number of edges that received an incompatible label pair.
    pub failures: u64,
    /// Empirical failure rate.
    pub rate: f64,
    /// The analytic lower bound `(1/(mΔ))²` from the (generalized)
    /// Lemma 15 argument.
    pub analytic_lower_bound: f64,
}

/// Which per-edge failure event a simulation counts.
#[derive(Debug, Clone, Copy)]
enum FailureEvent {
    /// One uniformly random shared port receives an incompatible pair.
    SinglePort,
    /// Any of the Δ identified ports receives an incompatible pair.
    AnyPort,
}

/// Simulates the uniform strategy on the identified-ports gadget:
/// both endpoints of an edge independently pick a uniformly random node
/// configuration and a uniformly random assignment of it to their Δ ports;
/// the shared port `c` then carries the pair of labels at position `c`.
/// The trial chunks shard over the session's workers — byte-identical to
/// a sequential session at any thread count.
///
/// Each trial simulates one edge (ports are identified, so one edge
/// suffices and trials are independent).
pub fn simulate_uniform(problem: &Problem, trials: u64, seed: u64, engine: &Engine) -> McOutcome {
    simulate(problem, trials, seed, engine, FailureEvent::SinglePort)
}

/// Like [`simulate_uniform`] but counts an edge as failed if *any* of the Δ
/// identified ports receives an incompatible pair — the actual per-edge
/// failure event of the gadget (all Δ ports are shared between the two
/// endpoints of the respective edges of that color class).
pub fn simulate_uniform_any_port(
    problem: &Problem,
    trials: u64,
    seed: u64,
    engine: &Engine,
) -> McOutcome {
    simulate(problem, trials, seed, engine, FailureEvent::AnyPort)
}

fn simulate(
    problem: &Problem,
    trials: u64,
    seed: u64,
    engine: &Engine,
    event: FailureEvent,
) -> McOutcome {
    let delta = problem.delta() as usize;
    let configs: Vec<Vec<Label>> = problem.node().iter().map(|c| c.iter().collect()).collect();
    // The chunk tasks run on the persistent workers, so they own their
    // context: the expanded configurations move in, the edge constraint is
    // cloned once per simulation (trials dominate by orders of magnitude).
    let edge = problem.edge().clone();

    // (chunk index, trials in chunk) — the last chunk may be short.
    let chunks: Vec<(u64, u64)> = (0..trials.div_ceil(CHUNK_TRIALS))
        .map(|c| (c, CHUNK_TRIALS.min(trials - c * CHUNK_TRIALS)))
        .collect();
    let failures: u64 = engine
        .map_owned(chunks, move |&(chunk, chunk_trials)| {
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed, chunk));
            let draw = |rng: &mut StdRng| -> Vec<Label> {
                let mut cfg = configs[rng.gen_range(0..configs.len())].clone();
                cfg.shuffle(rng);
                cfg
            };
            let mut failures = 0u64;
            for _ in 0..chunk_trials {
                let f = draw(&mut rng);
                let g = draw(&mut rng);
                let bad = match event {
                    FailureEvent::SinglePort => {
                        let port = rng.gen_range(0..delta);
                        !edge.contains(&Config::new(vec![f[port], g[port]]))
                    }
                    FailureEvent::AnyPort => {
                        (0..delta).any(|port| !edge.contains(&Config::new(vec![f[port], g[port]])))
                    }
                };
                if bad {
                    failures += 1;
                }
            }
            failures
        })
        .iter()
        .sum();

    let report = zeroround::analyze(problem);
    McOutcome {
        trials,
        failures,
        rate: failures as f64 / trials as f64,
        analytic_lower_bound: report.randomized_failure_lower_bound,
    }
}

/// Splitmix64 of the base seed and the chunk index: decorrelated,
/// reproducible per-chunk streams.
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed.wrapping_add(chunk.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{self, PiParams};

    fn sequential() -> Engine {
        Engine::sequential()
    }

    #[test]
    fn uniform_strategy_fails_often_on_pi() {
        let p = family::pi(&PiParams { delta: 4, a: 3, x: 1 }).unwrap();
        let out = simulate_uniform(&p, 20_000, 7, &sequential());
        // The analytic bound holds for the *best* strategy; the uniform one
        // must fail at least that often.
        assert!(out.rate >= out.analytic_lower_bound);
        assert!(out.rate > 0.01, "rate = {}", out.rate);
    }

    #[test]
    fn any_port_failure_dominates_single_port() {
        let p = family::pi(&PiParams { delta: 4, a: 3, x: 1 }).unwrap();
        let single = simulate_uniform(&p, 20_000, 11, &sequential());
        let any = simulate_uniform_any_port(&p, 20_000, 11, &sequential());
        assert!(any.rate >= single.rate);
    }

    #[test]
    fn mis_uniform_strategy_fails() {
        let p = family::mis(3).unwrap();
        let out = simulate_uniform_any_port(&p, 20_000, 3, &sequential());
        assert!(out.rate > 0.1, "rate = {}", out.rate);
    }

    #[test]
    fn deterministic_reproducibility() {
        let p = family::mis(3).unwrap();
        let a = simulate_uniform(&p, 5_000, 42, &sequential());
        let b = simulate_uniform(&p, 5_000, 42, &sequential());
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn sharded_chunks_match_sequential_exactly() {
        let p = family::mis(3).unwrap();
        // Cover >1 chunk and a short tail chunk.
        let trials = 2 * CHUNK_TRIALS + 513;
        let seq = simulate_uniform(&p, trials, 42, &sequential());
        let seq_any = simulate_uniform_any_port(&p, trials, 42, &sequential());
        for threads in [2, 8] {
            let engine = Engine::builder().threads(threads).build();
            let par = simulate_uniform(&p, trials, 42, &engine);
            assert_eq!(par.failures, seq.failures, "threads = {threads}");
            let par_any = simulate_uniform_any_port(&p, trials, 42, &engine);
            assert_eq!(par_any.failures, seq_any.failures, "threads = {threads}");
        }
    }
}
