//! The problem family `Π_Δ(a,x)` (paper §3.1) and relatives.
//!
//! `Π_Δ(a,x)` relaxes MIS in two directions at once: nodes may *own* `a`
//! edges instead of being dominated (type-3 nodes), and independent-set
//! nodes may have up to `x` outgoing edges to other set nodes. The labels:
//!
//! | label | meaning |
//! |-------|---------|
//! | `M`   | "in the dominating set" |
//! | `P`   | pointer to a dominating neighbor |
//! | `O`   | other edge of a pointer node |
//! | `A`   | owned edge of a type-3 node |
//! | `X`   | everything else (outgoing set-edges, padding) |
//!
//! Node constraint: `M^(Δ−x) X^x`, `A^a X^(Δ−a)`, `P O^(Δ−1)`.
//! Edge constraint: `M` ↮ `M`, `A` ↮ `A`, `P` only with `M`/`X`.

use relim_core::error::{RelimError, Result};
use relim_core::{Alphabet, Constraint, Label, LabelSet, Line, Problem};

/// Index of label `M` in the family alphabets.
pub const M: u8 = 0;
/// Index of label `P`.
pub const P: u8 = 1;
/// Index of label `O`.
pub const O: u8 = 2;
/// Index of label `A`.
pub const A: u8 = 3;
/// Index of label `X`.
pub const X: u8 = 4;
/// Index of label `C` (only in `Π⁺_Δ(a,x)`).
pub const C: u8 = 5;

/// Parameters `(Δ, a, x)` of a family member.
///
/// Intuitively (paper §3): increasing `x` or decreasing `a` makes the
/// problem easier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PiParams {
    /// Degree of the regular tree.
    pub delta: u32,
    /// Number of edges a type-3 node must own.
    pub a: u32,
    /// Outdegree budget of set nodes.
    pub x: u32,
}

impl PiParams {
    /// Validates `0 ≤ a, x ≤ Δ` and `Δ ≥ 2`.
    ///
    /// # Errors
    ///
    /// Returns [`RelimError::InvalidParameter`] outside the range.
    pub fn validate(&self) -> Result<()> {
        if self.delta < 2 {
            return Err(RelimError::InvalidParameter {
                message: format!("delta must be >= 2, got {}", self.delta),
            });
        }
        if self.a > self.delta || self.x > self.delta {
            return Err(RelimError::InvalidParameter {
                message: format!(
                    "need 0 <= a, x <= delta; got a={}, x={}, delta={}",
                    self.a, self.x, self.delta
                ),
            });
        }
        Ok(())
    }

    /// Whether Lemma 6 applies: `x + 2 ≤ a ≤ Δ`.
    pub fn lemma6_applicable(&self) -> bool {
        self.x + 2 <= self.a && self.a <= self.delta
    }

    /// Whether Corollary 10 applies: `2x + 1 ≤ a` and `x + 2 ≤ a ≤ Δ`.
    pub fn corollary10_applicable(&self) -> bool {
        2 * self.x < self.a && self.lemma6_applicable()
    }

    /// The parameters after one Corollary 10 step:
    /// `(⌊(a − 2x − 1)/2⌋, x + 1)`.
    pub fn corollary10_step(&self) -> PiParams {
        PiParams {
            delta: self.delta,
            a: (self.a.saturating_sub(2 * self.x + 1)) / 2,
            x: self.x + 1,
        }
    }
}

fn singleton(l: u8) -> LabelSet {
    LabelSet::singleton(Label::new(l))
}

fn set(labels: &[u8]) -> LabelSet {
    labels.iter().map(|&l| Label::new(l)).collect()
}

/// Builds a [`Line`] from `(label, multiplicity)` pairs, skipping zero
/// multiplicities.
fn line(groups: &[(u8, u32)]) -> Line {
    Line::new(groups.iter().filter(|&&(_, m)| m > 0).map(|&(l, m)| (singleton(l), m)).collect())
        .expect("family line is non-empty")
}

/// All `(a, x)` parameter points with Lemma 6's hypothesis
/// `x + 2 ≤ a ≤ Δ` for one `Δ`, in sweep order (`a` ascending, then `x`) —
/// the grid the Lemma 6/8 verification sweeps and the bench drivers walk.
pub fn sweep_points(delta: u32) -> Vec<PiParams> {
    let mut out = Vec::new();
    for a in 2..=delta {
        for x in 0..=a.saturating_sub(2) {
            let params = PiParams { delta, a, x };
            if params.lemma6_applicable() {
                out.push(params);
            }
        }
    }
    out
}

/// The problem `Π_Δ(a,x)` (paper §3.1).
///
/// # Errors
///
/// Propagates parameter validation.
///
/// # Example
///
/// ```
/// use lb_family::family::{pi, PiParams};
///
/// let p = pi(&PiParams { delta: 4, a: 3, x: 1 }).unwrap();
/// assert_eq!(p.delta(), 4);
/// assert_eq!(p.node().len(), 3); // M³X, A³X, PO³
/// ```
pub fn pi(params: &PiParams) -> Result<Problem> {
    params.validate()?;
    let d = params.delta;
    let alphabet = Alphabet::new(&["M", "P", "O", "A", "X"])?;
    let node = Constraint::from_lines(&[
        line(&[(M, d - params.x), (X, params.x)]),
        line(&[(A, params.a), (X, d - params.a)]),
        line(&[(P, 1), (O, d - 1)]),
    ])?;
    let edge = edge_constraint_pi()?;
    Problem::new(alphabet, node, edge)
}

fn edge_constraint_pi() -> Result<Constraint> {
    Constraint::from_lines(&[
        Line::new(vec![(singleton(M), 1), (set(&[P, A, O, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(O), 1), (set(&[M, A, O, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(P), 1), (set(&[M, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(A), 1), (set(&[M, O, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(X), 1), (set(&[M, P, A, O, X]), 1)]).expect("valid"),
    ])
}

/// The relaxed problem `Π⁺_Δ(a,x)` (paper §3.3), with the extra label `C`.
///
/// Requires `x + 1 ≤ a` and `x ≤ Δ − 1` so all exponents are non-negative.
///
/// # Errors
///
/// Propagates parameter validation.
pub fn pi_plus(params: &PiParams) -> Result<Problem> {
    params.validate()?;
    if params.a < params.x + 1 || params.x + 1 > params.delta {
        return Err(RelimError::InvalidParameter {
            message: format!(
                "pi_plus requires x+1 <= a and x <= delta-1; got a={}, x={}, delta={}",
                params.a, params.x, params.delta
            ),
        });
    }
    let d = params.delta;
    let alphabet = Alphabet::new(&["M", "P", "O", "A", "X", "C"])?;
    let node = Constraint::from_lines(&[
        line(&[(M, d - params.x - 1), (X, params.x + 1)]),
        line(&[(P, 1), (O, d - 1)]),
        line(&[(A, params.a - params.x - 1), (X, d - params.a + params.x + 1)]),
        line(&[(C, d - params.x), (X, params.x)]),
    ])?;
    let edge = Constraint::from_lines(&[
        Line::new(vec![(singleton(M), 1), (set(&[P, A, C, O, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(O), 1), (set(&[M, A, C, O, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(P), 1), (set(&[M, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(A), 1), (set(&[M, C, O, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(X), 1), (set(&[M, P, A, C, O, X]), 1)]).expect("valid"),
        Line::new(vec![(singleton(C), 1), (set(&[M, A, O, X]), 1)]).expect("valid"),
    ])?;
    Problem::new(alphabet, node, edge)
}

/// The canonical MIS encoding (paper §2.2): `N = {M^Δ, P O^(Δ−1)}`,
/// `E = {M[PO], OO}`.
///
/// # Errors
///
/// Requires `Δ ≥ 2`.
pub fn mis(delta: u32) -> Result<Problem> {
    if delta < 2 {
        return Err(RelimError::InvalidParameter {
            message: format!("mis requires delta >= 2, got {delta}"),
        });
    }
    let alphabet = Alphabet::new(&["M", "P", "O"])?;
    // Indices within this 3-label alphabet: M=0, P=1, O=2.
    let m = LabelSet::singleton(Label::new(0));
    let p = LabelSet::singleton(Label::new(1));
    let o = LabelSet::singleton(Label::new(2));
    let node = Constraint::from_lines(&[
        Line::new(vec![(m, delta)]).expect("valid"),
        Line::new(vec![(p, 1), (o, delta - 1)]).expect("valid"),
    ])?;
    let edge = Constraint::from_lines(&[
        Line::new(vec![(m, 1), (p.union(o), 1)]).expect("valid"),
        Line::new(vec![(o, 2)]).expect("valid"),
    ])?;
    Problem::new(alphabet, node, edge)
}

/// The expected Hasse edges of the edge diagram of `Π_Δ(a,x)`
/// (paper Figure 4): `P → A → O → X` and `M → X`, as label-index pairs.
pub fn figure4_expected_hasse() -> Vec<(u8, u8)> {
    vec![(P, A), (A, O), (O, X), (M, X)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use relim_core::diagram::StrengthOrder;

    #[test]
    fn pi_shape() {
        let p = pi(&PiParams { delta: 5, a: 3, x: 1 }).unwrap();
        assert_eq!(p.delta(), 5);
        assert_eq!(p.alphabet().len(), 5);
        assert_eq!(p.node().len(), 3);
        // Edge pairs: M with 4, O with 4 (incl OO), P with 2, A with 3, X with 5;
        // as unordered distinct pairs: count them explicitly.
        // MP MA MO MX / OA OO OX OM / PX PM / AO AX AM / X* (XX XP ...)
        // Distinct unordered set: {MP, MA, MO, MX, OA, OO, OX, PX, AX, XX} = 10.
        assert_eq!(p.edge().len(), 10);
    }

    #[test]
    fn pi_rejects_bad_params() {
        assert!(pi(&PiParams { delta: 1, a: 0, x: 0 }).is_err());
        assert!(pi(&PiParams { delta: 4, a: 5, x: 0 }).is_err());
        assert!(pi(&PiParams { delta: 4, a: 0, x: 5 }).is_err());
    }

    #[test]
    fn pi_extreme_params() {
        // x = Δ collapses the M-configuration to X^Δ; a = 0 likewise.
        let p = pi(&PiParams { delta: 3, a: 0, x: 3 }).unwrap();
        // Both degenerate configurations coincide: X³ and PO².
        assert_eq!(p.node().len(), 2);
    }

    #[test]
    fn figure4_edge_diagram() {
        let p = pi(&PiParams { delta: 6, a: 4, x: 1 }).unwrap();
        let order = StrengthOrder::of_constraint(p.edge(), 5);
        let mut edges: Vec<(u8, u8)> =
            order.hasse_edges().into_iter().map(|(a, b)| (a.raw(), b.raw())).collect();
        edges.sort_unstable();
        let mut expected = figure4_expected_hasse();
        expected.sort_unstable();
        assert_eq!(edges, expected);
    }

    #[test]
    fn pi_plus_shape() {
        let p = pi_plus(&PiParams { delta: 5, a: 4, x: 1 }).unwrap();
        assert_eq!(p.alphabet().len(), 6);
        assert_eq!(p.node().len(), 4);
        assert!(pi_plus(&PiParams { delta: 5, a: 0, x: 1 }).is_err());
        assert!(pi_plus(&PiParams { delta: 5, a: 5, x: 5 }).is_err());
    }

    #[test]
    fn mis_matches_paper_example() {
        let p = mis(3).unwrap();
        assert_eq!(p.node().len(), 2);
        assert_eq!(p.edge().len(), 3);
        // MIS is not 0-round solvable (Lemma 12 applies to it as well).
        assert!(!relim_core::zeroround::solvable_deterministically(&p));
    }

    #[test]
    fn corollary10_step_matches_formula() {
        let p = PiParams { delta: 100, a: 50, x: 3 };
        assert!(p.corollary10_applicable());
        let next = p.corollary10_step();
        assert_eq!(next.a, (50 - 7) / 2);
        assert_eq!(next.x, 4);
    }

    #[test]
    fn pi_is_not_zero_round_solvable() {
        // Lemma 12: for x <= Δ-1, a >= 1, not 0-round solvable.
        for (delta, a, x) in [(3, 1, 0), (4, 3, 1), (6, 4, 2), (8, 8, 0)] {
            let p = pi(&PiParams { delta, a, x }).unwrap();
            assert!(
                !relim_core::zeroround::solvable_deterministically(&p),
                "delta={delta}, a={a}, x={x}"
            );
        }
        // Degenerate: x = Δ makes X^Δ a valid all-self-compatible config.
        let p = pi(&PiParams { delta: 3, a: 1, x: 3 }).unwrap();
        assert!(relim_core::zeroround::solvable_deterministically(&p));
    }
}
