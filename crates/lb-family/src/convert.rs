//! Bridging [`relim_core::Problem`] to the simulator's LCL machinery.
//!
//! A [`Problem`] is an abstract constraint system; to *run* or *check* it on
//! concrete trees we convert it to a [`LclInstance`] (explicit
//! configurations + edge predicate) and check [`PortLabeling`]s against it.

use local_sim::lcl_solver::{LclInstance, LclViolation, LeafPolicy};
use local_sim::{Graph, PortLabeling};
use relim_core::error::{RelimError, Result};
use relim_core::{Config, Label, Problem};

/// Converts a problem into an explicit LCL instance for the tree solver.
///
/// # Errors
///
/// Fails if the alphabet exceeds 32 labels (solver bitmask width) — never
/// the case for the paper's ≤ 8-label problems.
///
/// # Example
///
/// ```
/// use lb_family::{convert, family::{self, PiParams}};
/// use local_sim::lcl_solver::LeafPolicy;
/// use local_sim::trees;
///
/// let p = family::pi(&PiParams { delta: 3, a: 2, x: 0 }).unwrap();
/// let inst = convert::to_lcl(&p, LeafPolicy::SubMultiset).unwrap();
/// let tree = trees::complete_regular_tree(3, 3).unwrap();
/// let sol = inst.solve(&tree, 11).unwrap();
/// assert!(sol.is_some());
/// ```
pub fn to_lcl(problem: &Problem, leaf_policy: LeafPolicy) -> Result<LclInstance> {
    let n = problem.alphabet().len();
    if n > 32 {
        return Err(RelimError::TooManyLabels { requested: n });
    }
    let configs: Vec<Vec<u8>> =
        problem.node().iter().map(|c| c.iter().map(|l| l.raw()).collect()).collect();
    let edge = problem.edge().clone();
    LclInstance::new(
        n as u8,
        problem.delta() as usize,
        configs,
        move |a, b| edge.contains(&Config::new(vec![Label::new(a), Label::new(b)])),
        leaf_policy,
    )
    .map_err(|e| RelimError::InvalidParameter { message: e.to_string() })
}

/// How to treat nodes of degree `< Δ` when checking a labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryPolicy {
    /// Boundary nodes must carry a sub-multiset of a full configuration.
    SubMultiset,
    /// Boundary nodes are unconstrained (only edges are checked there) —
    /// this matches the paper's Δ-regular-tree setting, where our tree
    /// leaves stand in for the unbounded continuation of the tree.
    InteriorOnly,
}

/// Checks a labeling of `graph` against `problem`.
///
/// Node configurations are enforced at all nodes
/// ([`BoundaryPolicy::SubMultiset`]) or only at degree-Δ nodes
/// ([`BoundaryPolicy::InteriorOnly`]); the edge constraint is always
/// enforced on every edge.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_labeling(
    problem: &Problem,
    graph: &Graph,
    labeling: &PortLabeling,
    policy: BoundaryPolicy,
) -> std::result::Result<(), LclViolation> {
    let delta = problem.delta() as usize;
    let sub_index = problem.node().sub_multiset_index();
    for v in 0..graph.n() {
        let d = graph.degree(v);
        if d != delta && policy == BoundaryPolicy::InteriorOnly {
            continue;
        }
        let cfg = Config::new(labeling.node_config(v).iter().map(|&l| Label::new(l)).collect());
        let ok = if d == delta { problem.node().contains(&cfg) } else { sub_index.contains(&cfg) };
        if !ok {
            return Err(LclViolation::NodeConfig { node: v, config: labeling.node_config(v) });
        }
    }
    for e in 0..graph.m() {
        let (a, b) = labeling.edge_labels(graph, e);
        let cfg = Config::new(vec![Label::new(a), Label::new(b)]);
        if !problem.edge().contains(&cfg) {
            return Err(LclViolation::EdgePair { edge: e, a, b });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{self, PiParams};
    use local_sim::trees;

    #[test]
    fn solve_and_check_pi() {
        let params = PiParams { delta: 3, a: 2, x: 0 };
        let p = family::pi(&params).unwrap();
        let inst = to_lcl(&p, LeafPolicy::SubMultiset).unwrap();
        let tree = trees::complete_regular_tree(3, 3).unwrap();
        let sol = inst.solve(&tree, 5).unwrap().expect("solvable");
        check_labeling(&p, &tree, &sol, BoundaryPolicy::SubMultiset).unwrap();
        check_labeling(&p, &tree, &sol, BoundaryPolicy::InteriorOnly).unwrap();
    }

    #[test]
    fn check_rejects_corruption() {
        let params = PiParams { delta: 3, a: 2, x: 0 };
        let p = family::pi(&params).unwrap();
        let inst = to_lcl(&p, LeafPolicy::SubMultiset).unwrap();
        let tree = trees::complete_regular_tree(3, 2).unwrap();
        let mut sol = inst.solve(&tree, 5).unwrap().expect("solvable");
        // Force an M-M edge: root port 0 and its counterpart both M.
        sol.set(0, 0, family::M);
        let t = tree.port_target(0, 0);
        sol.set(t.node, t.port, family::M);
        assert!(check_labeling(&p, &tree, &sol, BoundaryPolicy::InteriorOnly).is_err());
    }

    #[test]
    fn mis_labeling_corresponds_to_mis_set() {
        // Solve the MIS LCL, extract the set of M-nodes, and check it is a
        // valid MIS on the interior of the tree.
        let p = family::mis(3).unwrap();
        let inst = to_lcl(&p, LeafPolicy::SubMultiset).unwrap();
        let tree = trees::complete_regular_tree(3, 4).unwrap();
        let sol = inst.solve(&tree, 9).unwrap().expect("solvable");
        check_labeling(&p, &tree, &sol, BoundaryPolicy::SubMultiset).unwrap();
        let in_set: Vec<bool> =
            (0..tree.n()).map(|v| sol.node_labels(v).iter().all(|&l| l == 0)).collect();
        // Independence holds everywhere; domination holds at least at
        // interior nodes (leaves may be undominated boundary).
        local_sim::checkers::check_independent_set(&tree, &in_set).unwrap();
        for v in 0..tree.n() {
            if tree.degree(v) == 3 && !in_set[v] {
                assert!(tree.neighbors(v).any(|u| in_set[u]), "interior node {v} undominated");
            }
        }
    }
}
