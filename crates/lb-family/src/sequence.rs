//! The lower-bound chains of Lemma 13.
//!
//! Lemma 13: for `t = ε log Δ` and `x ≤ Δ^ε` there is a sequence
//! `Π_0 → Π_1 → … → Π_t` with `Π_0 = Π_Δ(Δ, x)`, each `Π_{i+1}` solvable in
//! 0 rounds given `R̄(R(Π_i))`, and `Π_t` not 0-round solvable — hence a
//! `Ω(log Δ)` lower bound in the deterministic port numbering model.
//!
//! The paper uses the schedule `Π_i = Π_Δ(⌊Δ/2^{3i}⌋, x+i)`; this module
//! also provides the *exact* per-step recurrence
//! `a_{i+1} = ⌊(a_i − 2x_i − 1)/2⌋` (Corollary 10 without the Lemma 11
//! relaxation), which yields slightly longer chains.

use crate::family::PiParams;

/// A lower-bound chain of family problems.
#[derive(Debug, Clone)]
pub struct Chain {
    /// The degree Δ.
    pub delta: u32,
    /// The starting outdegree budget `x₀` (= the `k` of k-ODS).
    pub x0: u32,
    /// The chain members `Π_Δ(a_i, x_i)`, starting at `i = 0`.
    pub steps: Vec<PiParams>,
}

impl Chain {
    /// Number of *transitions* `Π_i → Π_{i+1}` in the chain: the paper's
    /// `t`, a lower bound (in rounds, up to the +1 for the last non-0-round
    /// problem) for `Π_0` in the deterministic PN model.
    pub fn length(&self) -> u32 {
        self.steps.len().saturating_sub(1) as u32
    }

    /// Lower bound on the deterministic PN-model complexity of `Π_0`
    /// (= k-outdegree dominating set via Lemma 5, up to one round):
    /// `t + 1` because the final problem is not 0-round solvable
    /// (Lemma 12).
    pub fn pn_round_lower_bound(&self) -> u32 {
        self.length() + 1
    }

    /// `t / log₂ Δ` — the measured constant of the `Ω(log Δ)` bound.
    pub fn slope(&self) -> f64 {
        if self.delta <= 1 {
            return 0.0;
        }
        f64::from(self.length()) / f64::from(self.delta).log2()
    }
}

/// Whether the Lemma 13 step conditions hold at `params`: `x̄ < ā/8` and
/// `ā ≥ 4` (the proof's conditions guaranteeing both Corollary 10 and the
/// Lemma 11 relaxation apply).
pub fn lemma13_step_condition(params: &PiParams) -> bool {
    8 * params.x < params.a && params.a >= 4 && params.a <= params.delta
}

/// The paper's chain `Π_i = Π_Δ(⌊Δ/8^i⌋, x₀+i)`, extended while the step
/// condition holds. Every member is valid and (by Lemma 12) not 0-round
/// solvable, since `x_i ≤ Δ−1` and `a_i ≥ 1` throughout.
pub fn paper_chain(delta: u32, x0: u32) -> Chain {
    let mut steps = Vec::new();
    let mut i = 0u32;
    loop {
        let a = delta >> (3 * i).min(31);
        let params = PiParams { delta, a, x: x0 + i };
        // Lemma 12 requires a ≥ 1 and x ≤ Δ−1 for non-0-round solvability;
        // the chain only contains such members.
        if params.validate().is_err() || params.a == 0 || params.x + 1 > delta {
            break;
        }
        steps.push(params);
        if !lemma13_step_condition(&params) {
            break;
        }
        i += 1;
    }
    Chain { delta, x0, steps }
}

/// The exact chain: apply Corollary 10 (`a ↦ ⌊(a−2x−1)/2⌋`, `x ↦ x+1`)
/// directly while it is applicable; no power-of-8 relaxation.
pub fn exact_chain(delta: u32, x0: u32) -> Chain {
    let mut steps = Vec::new();
    let mut params = PiParams { delta, a: delta, x: x0 };
    if params.validate().is_err() {
        return Chain { delta, x0, steps };
    }
    steps.push(params);
    while params.corollary10_applicable() {
        params = params.corollary10_step();
        if params.validate().is_err() || params.a == 0 {
            break;
        }
        steps.push(params);
    }
    Chain { delta, x0, steps }
}

/// Checks that consecutive chain members are connected by
/// Corollary 10 + Lemma 11: one Corollary 10 step from `Π_i` must land at
/// parameters at least as hard as `Π_{i+1}` (larger-or-equal `a`,
/// smaller-or-equal `x`), so `Π_{i+1}` is 0-round solvable from it.
pub fn chain_transitions_sound(chain: &Chain) -> bool {
    chain.steps.windows(2).all(|w| {
        let (cur, next) = (&w[0], &w[1]);
        if !cur.corollary10_applicable() {
            return false;
        }
        let stepped = cur.corollary10_step();
        stepped.a >= next.a && stepped.x <= next.x
    })
}

/// One row of the Lemma 13 chain-length table (experiment E9).
#[derive(Debug, Clone)]
pub struct ChainLengthRow {
    /// The degree Δ.
    pub delta: u32,
    /// Starting `x₀` (= k).
    pub x0: u32,
    /// Paper-schedule chain length `t`.
    pub paper_t: u32,
    /// Exact-recurrence chain length.
    pub exact_t: u32,
    /// `paper_t / log₂ Δ`.
    pub paper_slope: f64,
    /// `exact_t / log₂ Δ`.
    pub exact_slope: f64,
}

/// Produces the chain-length table for a sweep of Δ (experiment E9).
pub fn chain_length_table(deltas: &[u32], x0: u32) -> Vec<ChainLengthRow> {
    deltas
        .iter()
        .map(|&delta| {
            let paper = paper_chain(delta, x0);
            let exact = exact_chain(delta, x0);
            ChainLengthRow {
                delta,
                x0,
                paper_t: paper.length(),
                exact_t: exact.length(),
                paper_slope: paper.slope(),
                exact_slope: exact.slope(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chain_grows_logarithmically() {
        // t(Δ) should grow by ~1 per 8x increase of Δ (slope ~1/3).
        let t64 = paper_chain(64, 0).length();
        let t512 = paper_chain(512, 0).length();
        let t4096 = paper_chain(4096, 0).length();
        assert!(t512 > t64, "t(512)={t512} vs t(64)={t64}");
        assert!(t4096 > t512);
        let slope = paper_chain(1 << 20, 0).slope();
        assert!((0.2..0.40).contains(&slope), "slope = {slope}");
        // Asymptotically the schedule gives t ≈ log₂(Δ)/3.
        let slope_big = paper_chain(u32::MAX, 0).slope();
        assert!((0.25..0.37).contains(&slope_big), "slope = {slope_big}");
    }

    #[test]
    fn chains_start_at_delta_and_are_valid() {
        let chain = paper_chain(100, 2);
        assert_eq!(chain.steps[0], PiParams { delta: 100, a: 100, x: 2 });
        for s in &chain.steps {
            s.validate().unwrap();
            // Lemma 12 applies throughout: a >= 1, x <= delta-1.
            assert!(s.a >= 1 && s.x < s.delta);
        }
    }

    #[test]
    fn transitions_are_sound() {
        for delta in [16u32, 64, 100, 1000, 1 << 15] {
            for x0 in [0u32, 1, 2] {
                let chain = paper_chain(delta, x0);
                if chain.steps.len() >= 2 {
                    assert!(chain_transitions_sound(&chain), "delta={delta}, x0={x0}");
                }
            }
        }
    }

    #[test]
    fn exact_chain_at_least_as_long() {
        for delta in [16u32, 64, 256, 1024, 1 << 14] {
            let p = paper_chain(delta, 0).length();
            let e = exact_chain(delta, 0).length();
            assert!(e >= p, "delta={delta}: exact {e} < paper {p}");
        }
    }

    #[test]
    fn exact_chain_transition_matches_corollary10() {
        let chain = exact_chain(1000, 0);
        for w in chain.steps.windows(2) {
            assert_eq!(w[0].corollary10_step().a, w[1].a);
            assert_eq!(w[0].x + 1, w[1].x);
        }
    }

    #[test]
    fn larger_x0_shortens_chain() {
        let t0 = paper_chain(4096, 0).length();
        let t3 = paper_chain(4096, 3).length();
        assert!(t3 <= t0);
    }

    #[test]
    fn tiny_delta_chain() {
        // Too small for any transition: single-element chain, still a valid
        // (1-round) lower bound statement.
        let chain = paper_chain(4, 0);
        assert!(chain.length() <= 1);
        assert!(chain.pn_round_lower_bound() >= 1);
    }

    #[test]
    fn table_is_monotone_in_delta() {
        let rows = chain_length_table(&[8, 64, 512, 4096, 1 << 15, 1 << 18], 0);
        for w in rows.windows(2) {
            assert!(w[1].paper_t >= w[0].paper_t);
            assert!(w[1].exact_t >= w[0].exact_t);
        }
    }
}
